"""Tests for the integer-picosecond time base."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.time import (
    GIGABIT,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    SECONDS,
    bytes_in_interval,
    format_time,
    parse_time,
    ps_to_seconds,
    rate_to_ps_per_byte,
    seconds_to_ps,
    transmission_time_ps,
)


class TestUnits:
    def test_unit_ladder(self):
        assert NANOSECONDS == 1_000
        assert MICROSECONDS == 1_000 * NANOSECONDS
        assert MILLISECONDS == 1_000 * MICROSECONDS
        assert SECONDS == 1_000 * MILLISECONDS

    def test_units_are_ints(self):
        for unit in (NANOSECONDS, MICROSECONDS, MILLISECONDS, SECONDS):
            assert isinstance(unit, int)


class TestParseTime:
    @pytest.mark.parametrize("text,expected", [
        ("100ns", 100_000),
        ("1.5us", 1_500_000),
        ("1.5µs", 1_500_000),
        ("2ms", 2 * MILLISECONDS),
        ("1s", SECONDS),
        ("7ps", 7),
        ("  3 ns ", 3_000),
    ])
    def test_examples(self, text, expected):
        assert parse_time(text) == expected

    @pytest.mark.parametrize("bad", ["", "10", "ns", "10 sec", "-5ns",
                                     "1.2.3us"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_time(bad)


class TestFormatTime:
    def test_zero(self):
        assert format_time(0) == "0ps"

    @pytest.mark.parametrize("ps,expected", [
        (1, "1ps"),
        (999, "999ps"),
        (1_000, "1ns"),
        (1_500_000, "1.5us"),
        (2 * MILLISECONDS, "2ms"),
        (3 * SECONDS, "3s"),
    ])
    def test_examples(self, ps, expected):
        assert format_time(ps) == expected

    @given(st.integers(min_value=1, max_value=10 * SECONDS))
    def test_parse_format_roundtrip_within_precision(self, ps):
        # format uses 6 significant digits, so the roundtrip is exact to
        # one part in 10^5.
        recovered = parse_time(format_time(ps))
        assert abs(recovered - ps) <= max(1, ps // 100_000)


class TestConversions:
    def test_seconds_roundtrip(self):
        assert seconds_to_ps(1.0) == SECONDS
        assert ps_to_seconds(SECONDS) == 1.0

    def test_rate_to_ps_per_byte_10g(self):
        assert rate_to_ps_per_byte(10 * GIGABIT) == 800.0

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            rate_to_ps_per_byte(0)

    def test_transmission_time_1500B_at_10g(self):
        assert transmission_time_ps(1500, 10 * GIGABIT) == 1_200_000

    def test_transmission_time_zero_bytes(self):
        assert transmission_time_ps(0, 10 * GIGABIT) == 0

    def test_transmission_time_negative_rejected(self):
        with pytest.raises(ValueError):
            transmission_time_ps(-1, 10 * GIGABIT)

    def test_bytes_in_interval_paper_example(self):
        # 10 Gbps for 1 ms = 1.25 MB — the per-blackout burst.
        assert bytes_in_interval(10 * GIGABIT, MILLISECONDS) == 1_250_000

    def test_bytes_in_interval_zero(self):
        assert bytes_in_interval(10 * GIGABIT, 0) == 0

    def test_bytes_in_interval_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_in_interval(10 * GIGABIT, -1)

    @given(st.integers(min_value=1, max_value=10_000),
           st.sampled_from([1e9, 10e9, 25e9, 40e9, 100e9]))
    def test_transmission_time_scales_linearly(self, nbytes, rate):
        one = transmission_time_ps(1000, rate)
        many = transmission_time_ps(1000 * nbytes, rate)
        assert abs(many - one * nbytes) <= nbytes  # rounding slack
