"""Scalar reference implementations of the vectorised schedulers.

The hot schedulers (iSLIP, greedy-MWM, Solstice — and since the sweep
overhaul also PIM, WFA, BvN and Eclipse) run numpy-vectorised inner
loops on the production path.  This module preserves the original
per-port Python loops — the seed implementations the vector code was
derived from — as executable specifications:

* the equivalence tests in ``tests/test_schedulers_vectorized.py``
  fuzz vector vs scalar and require **identical** matchings, pointer
  state and stats on every demand matrix;
* the ``repro perf`` fabric benchmarks run the reference stack
  (scalar fabric engine + scalar scheduler) against the vector stack,
  so the recorded speedup measures the whole hot-path overhaul rather
  than one layer;
* anyone modifying a vectorised algorithm can diff against code that
  reads like the pseudocode in the original papers.

These classes are deliberately **not** in the scheduler registry:
experiments and scenarios should never run them by accident.  They
subclass the production classes, so constructor validation and
:attr:`last_stats` semantics stay shared, and they override
``compute_trusted`` back to the checked scalar path — a reference
scheduler must never silently fall through to vector code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.schedulers.base import ScheduleResult
from repro.schedulers.bipartite import perfect_matching_on_support
from repro.schedulers.bvn import BvnScheduler, stuff_matrix
from repro.schedulers.eclipse import EclipseScheduler
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.matching import Matching
from repro.schedulers.mwm import GreedyMwmScheduler
from repro.schedulers.pim import PimScheduler
from repro.schedulers.solstice import SolsticeScheduler
from repro.schedulers.wfa import WfaScheduler


class ReferenceIslipScheduler(IslipScheduler):
    """iSLIP with the original per-output/per-input scalar loops."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        matched_out: Dict[int, int] = {}
        matched_in: Dict[int, int] = {}
        rounds_used = 0
        for iteration in range(self.iterations):
            rounds_used += 1
            progress = False
            # Grant phase: each unmatched output picks the requesting
            # input nearest its pointer.
            grants: Dict[int, List[int]] = {}
            for out in range(n):
                if out in matched_in:
                    continue
                requesters = [
                    inp for inp in range(n)
                    if inp not in matched_out and demand[inp, out] > 0
                ]
                if not requesters:
                    continue
                chosen = self._round_robin_pick(
                    requesters, self.grant_ptr[out], n)
                grants.setdefault(chosen, []).append(out)
            # Accept phase: each input picks the granting output nearest
            # its pointer.
            for inp, granting in grants.items():
                accepted = self._round_robin_pick(
                    granting, self.accept_ptr[inp], n)
                matched_out[inp] = accepted
                matched_in[accepted] = inp
                progress = True
                if iteration == 0:
                    # Pointer update rule: one past the matched partner,
                    # only for first-iteration matches.
                    self.grant_ptr[accepted] = (inp + 1) % n
                    self.accept_ptr[inp] = (accepted + 1) % n
            if not progress:
                break
        out_of: List[Optional[int]] = [matched_out.get(i) for i in range(n)]
        self.last_stats = {"iterations": rounds_used, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


class ReferenceGreedyMwmScheduler(GreedyMwmScheduler):
    """Greedy MWM visiting edges one at a time in sorted order."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        src_idx, dst_idx = np.nonzero(demand > 0)
        weights = demand[src_idx, dst_idx]
        # Sort by weight descending, then (src, dst) ascending.
        order = np.lexsort((dst_idx, src_idx, -weights))
        out_of: List[Optional[int]] = [None] * n
        used_out = [False] * n
        added = 0
        for k in order.tolist():
            inp = int(src_idx[k])
            out = int(dst_idx[k])
            if out_of[inp] is None and not used_out[out]:
                out_of[inp] = out
                used_out[out] = True
                added += 1
                if added == n:
                    break
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


class ReferenceSolsticeScheduler(SolsticeScheduler):
    """Solstice with per-port Python loops in the peeling step."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        work = stuff_matrix(demand)
        plan: List[Tuple[Matching, int]] = []
        served = np.zeros_like(demand)
        min_slice = max(self._min_slice_bytes(), 1.0)
        iterations = 0
        max_entry = float(work.max())
        if max_entry > 0:
            threshold = 2.0 ** np.floor(np.log2(max_entry))
        else:
            threshold = 0.0
        while threshold >= min_slice:
            if (self.max_matchings is not None
                    and len(plan) >= self.max_matchings):
                break
            iterations += 1
            support = work >= threshold
            match = perfect_matching_on_support(support.tolist())
            if match is None:
                threshold /= 2.0
                continue
            slice_bytes = threshold
            real_pairs = [(i, match[i]) for i in range(n)
                          if demand[i, match[i]] - served[i, match[i]] > 0]
            for i in range(n):
                work[i, match[i]] -= slice_bytes
            if real_pairs:
                hold_ps = self._bytes_to_hold_ps(slice_bytes)
                plan.append(
                    (Matching.from_pairs(n, real_pairs), hold_ps))
                for i, j in real_pairs:
                    served[i, j] += slice_bytes
        residue = np.maximum(demand - served, 0.0)
        if not plan:
            plan = [(Matching.empty(n), 0)]
        self.last_stats = {"iterations": iterations, "matchings": len(plan)}
        return ScheduleResult(matchings=plan, eps_residue=residue)

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


class ReferencePimScheduler(PimScheduler):
    """PIM with the original per-output/per-input scalar loops."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        matched_out: Dict[int, int] = {}   # input -> output
        matched_in: Dict[int, int] = {}    # output -> input
        rounds_used = 0
        for _round in range(self.iterations):
            rounds_used += 1
            progress = False
            # Phase 1: requests from unmatched inputs to unmatched
            # outputs.
            requests: Dict[int, List[int]] = {}
            for out in range(n):
                if out in matched_in:
                    continue
                requesters = [
                    inp for inp in range(n)
                    if inp not in matched_out and demand[inp, out] > 0
                ]
                if requesters:
                    requests[out] = requesters
            # Phase 2: each output grants one requester at random.
            grants: Dict[int, List[int]] = {}
            for out, requesters in requests.items():
                chosen = self.rng.choice(requesters)
                grants.setdefault(chosen, []).append(out)
            # Phase 3: each input accepts one grant at random.
            for inp, granted_outputs in grants.items():
                accepted = self.rng.choice(granted_outputs)
                matched_out[inp] = accepted
                matched_in[accepted] = inp
                progress = True
            if not progress:
                break
        out_of: List[Optional[int]] = [matched_out.get(i)
                                       for i in range(n)]
        self.last_stats = {"iterations": rounds_used, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


class ReferenceWfaScheduler(WfaScheduler):
    """WFA visiting wavefront cells one at a time in Python."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        requests = demand > 0
        row_free = [True] * n
        col_free = [True] * n
        out_of: List[Optional[int]] = [None] * n
        for wave in range(n):
            diagonal = (self._priority + wave) % n
            for i in range(n):
                j = (diagonal - i) % n
                if requests[i, j] and row_free[i] and col_free[j]:
                    out_of[i] = j
                    row_free[i] = False
                    col_free[j] = False
        self._priority = (self._priority + 1) % n
        self.last_stats = {"iterations": n, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


def reference_birkhoff_von_neumann(
        matrix: np.ndarray,
        tolerance: float = 1e-9,
        max_terms: Optional[int] = None) -> List[Tuple[Matching, float]]:
    """The original scalar peel of ``bvn.birkhoff_von_neumann``."""
    work = np.asarray(matrix, dtype=np.float64).copy()
    n = work.shape[0]
    terms: List[Tuple[Matching, float]] = []
    while work.max() > tolerance:
        if max_terms is not None and len(terms) >= max_terms:
            break
        support = work > tolerance
        match = perfect_matching_on_support(support)
        if match is None:
            break
        weight = float(min(work[i, match[i]] for i in range(n)))
        if weight <= tolerance:
            break
        terms.append((Matching(list(match)), weight))
        for i in range(n):
            work[i, match[i]] -= weight
    return terms


class ReferenceBvnScheduler(BvnScheduler):
    """BvN with per-port Python loops in peel and residue updates."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        stuffed = stuff_matrix(demand)
        terms = reference_birkhoff_von_neumann(
            stuffed, max_terms=self.max_matchings)
        plan: List[Tuple[Matching, int]] = []
        residue = demand.copy()
        for matching, weight in terms:
            hold_ps = self._bytes_to_hold_ps(weight)
            if hold_ps < self.min_hold_ps:
                continue
            real_pairs = [(i, j) for i, j in matching.pairs()
                          if demand[i, j] > 0]
            if not real_pairs:
                continue
            plan.append((Matching.from_pairs(self.n_ports, real_pairs),
                         hold_ps))
            for i, j in real_pairs:
                residue[i, j] = max(0.0, residue[i, j] - weight)
        if not plan:
            plan = [(Matching.empty(self.n_ports), 0)]
        self.last_stats = {
            "iterations": len(terms),
            "matchings": len(plan),
        }
        return ScheduleResult(matchings=plan, eps_residue=residue)

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


class ReferenceEclipseScheduler(EclipseScheduler):
    """Eclipse with per-pair Python loops in the greedy step."""

    def _best_step(self, remaining: np.ndarray
                   ) -> Optional[Tuple[Matching, int, float]]:
        positive = remaining[remaining > 0]
        if positive.size == 0:
            return None
        service_ps = np.unique(
            np.ceil(self._bytes_to_ps(positive)).astype(np.int64))
        candidates = service_ps[-self.max_candidate_durations:]
        best: Optional[Tuple[Matching, int, float]] = None
        for tau in candidates.tolist():
            tau = max(1, int(tau))
            capped = np.minimum(remaining, self._ps_to_bytes(tau))
            rows, cols = linear_sum_assignment(-capped)
            pairs = [(int(i), int(j)) for i, j in zip(rows, cols)
                     if remaining[i, j] > 0]
            if not pairs:
                continue
            served = sum(float(capped[i, j]) for i, j in pairs)
            value = served / (tau + self.reconfig_ps)
            if best is None or value > best[2]:
                matching = Matching.from_pairs(self.n_ports, pairs)
                best = (matching, tau, value)
        return best

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        remaining = demand.copy()
        plan: List[Tuple[Matching, int]] = []
        first_value: Optional[float] = None
        steps = 0
        while len(plan) < self.max_matchings:
            step = self._best_step(remaining)
            if step is None:
                break
            matching, tau, value = step
            if first_value is None:
                first_value = value
            elif value < self.min_value_fraction * first_value:
                break
            steps += 1
            plan.append((matching, tau))
            cap = self._ps_to_bytes(tau)
            for i, j in matching.pairs():
                remaining[i, j] = max(0.0, remaining[i, j]
                                      - min(remaining[i, j], cap))
        if not plan:
            plan = [(Matching.empty(self.n_ports), 0)]
        self.last_stats = {
            "iterations": steps * self.max_candidate_durations,
            "matchings": len(plan),
        }
        return ScheduleResult(matchings=plan, eps_residue=remaining)

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


__all__ = [
    "ReferenceIslipScheduler",
    "ReferenceGreedyMwmScheduler",
    "ReferenceSolsticeScheduler",
    "ReferencePimScheduler",
    "ReferenceWfaScheduler",
    "ReferenceBvnScheduler",
    "ReferenceEclipseScheduler",
    "reference_birkhoff_von_neumann",
]
