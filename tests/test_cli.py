"""Tests for the ``repro`` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_quick(self):
        args = build_parser().parse_args(["run", "e2", "--quick"])
        assert args.experiment == ["e2"]
        assert args.quick
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_run_accepts_multiple_experiments(self):
        args = build_parser().parse_args(
            ["run", "e1", "e3", "--jobs", "4"])
        assert args.experiment == ["e1", "e3"]
        assert args.jobs == 4

    def test_sweep_command(self):
        args = build_parser().parse_args(
            ["sweep", "e5", "--replicas", "3", "--base-seed", "7",
             "--set", "n_ports=8,16"])
        assert args.experiment == ["e5"]
        assert args.replicas == 3
        assert args.base_seed == 7
        assert args.set == ["n_ports=8,16"]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "islip" in out
        assert "netfpga_sume" in out

    def test_run_e2_quick(self, capsys):
        assert main(["run", "e2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "cpu_helios" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
