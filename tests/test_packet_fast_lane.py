"""The packet-path fast lane vs the per-packet reference path.

The columnar lane (chunked sources, PacketLog telemetry, eager egress)
must be *observably identical* to the reference path: same packets with
the same timestamps in the same delivery order, same counters that
reach reports, same derived metrics.  These tests run the same scenario
down both lanes and compare, plus unit coverage for the new pieces.
"""

import pytest

from repro.analysis.record import UNSET, PacketLog
from repro.net.link import Link
from repro.net.packet import Packet
from repro.scenario import Scenario, TrafficPhase
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.time import MICROSECONDS, MILLISECONDS, NANOSECONDS
from repro.sim.trace import Counter, TimeSeries, untraced


def _fields(packet):
    return (packet.src, packet.dst, packet.size, packet.created_ps,
            packet.flow_id, packet.priority, packet.enqueued_ps,
            packet.dequeued_ps, packet.delivered_ps, packet.via)


def _scenario(**overrides):
    base = dict(
        name="fastlane-test",
        n_ports=8,
        switching_time_ps=100 * NANOSECONDS,
        scheduler="islip",
        scheduler_kwargs={"iterations": 2},
        timing_preset="netfpga_sume",
        default_slot_ps=5 * MICROSECONDS,
        buffer_mode="switch",
        duration_ps=2 * MILLISECONDS,
        seed=7,
        traffic=(TrafficPhase(pattern="uniform", source="poisson",
                              load=0.45),),
    )
    base.update(overrides)
    return Scenario(**base)


def _both_lanes(scenario):
    columnar = scenario.build(packet_lane="columnar").run()
    reference = scenario.build(packet_lane="reference").run()
    return columnar, reference


class TestLaneEquivalence:
    def _assert_equivalent(self, columnar, reference):
        assert columnar.log is not None and reference.log is None
        assert columnar.offered_packets == reference.offered_packets
        assert columnar.offered_bytes == reference.offered_bytes
        assert columnar.delivered_bytes == reference.delivered_bytes
        assert columnar.ocs_bytes == reference.ocs_bytes
        assert columnar.eps_bytes == reference.eps_bytes
        assert columnar.drops == reference.drops
        assert (columnar.switch_peak_buffer_bytes
                == reference.switch_peak_buffer_bytes)
        assert (columnar.host_peak_buffer_bytes
                == reference.host_peak_buffer_bytes)
        assert columnar.latency() == reference.latency()
        # Same packets, same stamps, same per-host delivery order —
        # packet_id is excluded: construction order differs by design.
        assert ([_fields(p) for p in columnar.delivered]
                == [_fields(p) for p in reference.delivered])

    def test_poisson_uniform(self):
        self._assert_equivalent(*_both_lanes(_scenario()))

    def test_onoff_and_cbr_mix(self):
        scenario = _scenario(traffic=(
            TrafficPhase(pattern="fixed", source="cbr", load=1.0,
                         hosts=(0,), pattern_kwargs={"dst": 1},
                         source_kwargs={"packet_bytes": 200,
                                        "period_ps": 50 * MICROSECONDS}),
            TrafficPhase(pattern="uniform", source="onoff", load=0.4,
                         hosts=(2, 3, 4, 5, 6, 7),
                         source_kwargs={
                             "burst_fraction": 0.5,
                             "mean_on_ps": 100 * MICROSECONDS,
                             "mean_off_ps": 150 * MICROSECONDS}),
        ))
        columnar, reference = _both_lanes(scenario)
        self._assert_equivalent(columnar, reference)
        flow = columnar.flow_packets(1)
        assert flow  # CBR flow took flow id 1 in both lanes
        assert (columnar.flow_jitter_ps(1, 50 * MICROSECONDS)
                == reference.flow_jitter_ps(1, 50 * MICROSECONDS))
        assert (columnar.flow_latencies_ps(1).tolist()
                == reference.flow_latencies_ps(1).tolist())

    def test_shared_host_falls_back_per_packet(self):
        # Two sources on host 0: the chunk lane must self-disable there
        # (and only there) with results still identical.
        scenario = _scenario(traffic=(
            TrafficPhase(pattern="fixed", source="cbr", load=1.0,
                         hosts=(0,), pattern_kwargs={"dst": 1},
                         source_kwargs={"period_ps": 40 * MICROSECONDS}),
            TrafficPhase(pattern="uniform", source="poisson", load=0.3),
        ))
        self._assert_equivalent(*_both_lanes(scenario))

    def test_mixed_frame_sizes_near_window_edge(self):
        # Regression: two different-size flows per host pack drain
        # runs whose last injection lands within the OCS transit of
        # the window edge; the next slot's reconfiguration must stay
        # legal (the commitment ends at the last *injection*, transit
        # survives reconfiguration on both lanes).
        scenario = _scenario(traffic=(
            TrafficPhase(pattern="uniform", source="poisson", load=0.55,
                         source_kwargs={"packet_bytes": 1500}),
            TrafficPhase(pattern="uniform", source="poisson", load=0.3,
                         source_kwargs={"packet_bytes": 137}),
        ))
        self._assert_equivalent(*_both_lanes(scenario))

    def test_host_buffered_mode(self):
        scenario = _scenario(
            buffer_mode="host",
            scheduler="hotspot",
            scheduler_kwargs={},
            timing_preset="cpu_cthrough",
            epoch_ps=500 * MICROSECONDS,
            default_slot_ps=250 * MICROSECONDS,
            switching_time_ps=50 * MICROSECONDS)
        self._assert_equivalent(*_both_lanes(scenario))

    def test_faulted_links_fall_back(self):
        from repro.scenario.spec import FaultEvent

        scenario = _scenario(faults=(
            FaultEvent(kind="link-flap", target=2, at_ps=300_000_000,
                       duration_ps=200 * MICROSECONDS),
        ))
        self._assert_equivalent(*_both_lanes(scenario))

    def test_optimistic_grant_disables_drain_batching(self):
        from repro.core.framework import HybridSwitchFramework

        config = _scenario().framework_config()
        columnar = HybridSwitchFramework(config)
        assert columnar.processing._batch_inject is not None
        ablated = HybridSwitchFramework(config, optimistic_grant=True)
        # The batched drain assumes windows open at OCS-ready time;
        # the ablation ordering exposes traffic to the blackout, so it
        # must stay on the per-packet path.
        assert ablated.processing._batch_inject is None


class TestPacketLog:
    def test_append_and_lazy_view_roundtrip(self):
        log = PacketLog(capacity=2)
        packets = []
        for i in range(5):
            packet = Packet(src=i % 3, dst=(i % 3) + 1, size=100 + i,
                            created_ps=10 * i, flow_id=i, priority=i % 2)
            packet.enqueued_ps = 10 * i + 1 if i % 2 else None
            packet.dequeued_ps = 10 * i + 2 if i % 2 else None
            packet.via = "ocs" if i % 2 else "eps"
            log.append_packet(packet, delivered_ps=10 * i + 5)
            packet.delivered_ps = 10 * i + 5
            packets.append(packet)
        assert len(log) == 5
        assert [_fields(p) for p in log.packets()] == \
            [_fields(p) for p in packets]
        assert [p.packet_id for p in log.packets()] == \
            [p.packet_id for p in packets]

    def test_unset_sentinel_for_none_stamps(self):
        log = PacketLog()
        packet = Packet(src=0, dst=1, size=64, created_ps=5)
        packet.via = None
        log.append_packet(packet, delivered_ps=9)
        assert log.column("enqueued_ps")[0] == UNSET
        view = log.packet(0)
        assert view.enqueued_ps is None
        assert view.via is None

    def test_concatenate_preserves_order(self):
        logs = []
        for base in (0, 100):
            log = PacketLog(capacity=1)
            for i in range(3):
                log.append(src=0, dst=1, size=64, created_ps=base + i,
                           flow_id=1, priority=0, packet_id=base + i,
                           enqueued_ps=None, dequeued_ps=None,
                           delivered_ps=base + i + 1, via_code=1)
            logs.append(log)
        merged = PacketLog.concatenate(logs)
        assert merged.created_ps.tolist() == [0, 1, 2, 100, 101, 102]
        assert merged.total_bytes() == 6 * 64
        assert merged.via_bytes("ocs") == 6 * 64
        assert merged.via_bytes("eps") == 0

    def test_columns_are_views_not_copies(self):
        log = PacketLog()
        log.append(src=1, dst=2, size=64, created_ps=3, flow_id=4,
                   priority=0, packet_id=5, enqueued_ps=None,
                   dequeued_ps=None, delivered_ps=6, via_code=0)
        column = log.size
        assert column.base is log._cols["size"]

    def test_out_of_range_view(self):
        with pytest.raises(IndexError):
            PacketLog().packet(0)


class TestFlowIdIsolation:
    def test_equal_seed_runs_allocate_identical_ids(self):
        first = _scenario().build().run()
        second = _scenario().build().run()
        assert (first.log.flow_id.tolist()
                == second.log.flow_id.tolist())

    def test_per_simulator_counter(self):
        a, b = Simulator(), Simulator()
        assert a.next_flow_id() == 1
        assert a.next_flow_id() == 2
        assert b.next_flow_id() == 1

    def test_deprecated_global_shim_still_counts(self):
        from repro.traffic.sources import next_flow_id

        first = next_flow_id()
        assert next_flow_id() == first + 1


class TestTraceFastPaths:
    def test_counter_disable_enable(self):
        counter = Counter("c")
        counter.add(2, 10)
        counter.disable()
        assert not counter.enabled
        counter.add(5, 50)
        assert (counter.count, counter.bytes) == (2, 10)
        counter.enable()
        counter.add(1, 1)
        assert (counter.count, counter.bytes) == (3, 11)

    def test_timeseries_disabled_mode(self):
        series = TimeSeries("s", enabled=False)
        series.record(1, 2.0)
        assert series.values == []
        series.enable()
        series.record(3, 4.0)
        assert series.values == [4.0]

    def test_untraced_context(self):
        counter = Counter("c")
        series = TimeSeries("s")
        with untraced(counter, series):
            counter.add()
            series.record(0, 1.0)
        assert counter.count == 0 and series.values == []
        counter.add()
        assert counter.count == 1

    def test_columnar_framework_runs_untraced(self):
        run = _scenario().build(packet_lane="columnar")
        fw = run.framework
        assert not fw.processing.requests_generated.enabled
        assert not fw.topology.uplinks[0].accepted.enabled
        # Lazily materialised VOQ queues come up untraced too.
        voq = fw.processing.voqs.queue(0, 1)
        assert not voq.enqueues.enabled
        fw.enable_observability()
        assert fw.processing.requests_generated.enabled
        assert voq.enqueues.enabled
        assert fw.processing.voqs.queue(0, 2).enqueues.enabled
        assert fw.processing._batch_inject is None

    def test_reference_framework_stays_traced(self):
        run = _scenario().build(packet_lane="reference")
        assert run.framework.processing.requests_generated.enabled


class TestPresendGuards:
    def test_fail_until_refuses_after_future_commit(self):
        sim = Simulator()
        hits = []
        link = Link(sim, "l", rate_bps=10e9, sink=hits.append)
        packets = [Packet(src=0, dst=1, size=64, created_ps=t)
                   for t in (0, 10_000)]
        sim.run_until = 10 * MICROSECONDS
        link.send_presend(packets, [0, 10_000])
        with pytest.raises(SimulationError):
            link.fail_until(5_000)

    def test_marked_unreliable_link_refuses_presend(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=10e9, sink=lambda p: None)
        link.mark_unreliable()
        assert not link.can_presend()
        with pytest.raises(SimulationError):
            link.send_presend(
                [Packet(src=0, dst=1, size=64, created_ps=0)], [0])

    def test_presend_matches_per_packet_serialisation(self):
        def arrivals(batch):
            sim = Simulator()
            seen = []
            link = Link(sim, "l", rate_bps=10e9, propagation_ps=500,
                        sink=lambda p: seen.append(
                            (p.packet_id, sim.now)))
            packets = [Packet(src=0, dst=1, size=1500,
                              created_ps=200 * i, packet_id=i)
                       for i in range(20)]
            times = [200 * i for i in range(20)]
            if batch:
                def send_all():
                    link.send_presend(packets, times)
                sim.at(0, send_all)
            else:
                for packet, t in zip(packets, times):
                    sim.at(t, (lambda p=packet: link.send(p)))
            sim.run(until=1 * MILLISECONDS)
            return seen, link.busy_ps, link.free_at

        assert arrivals(batch=True) == arrivals(batch=False)


class TestHostPresendConditions:
    def test_sole_emitter_required(self):
        run = _scenario(traffic=(
            TrafficPhase(pattern="uniform", source="poisson", load=0.2),
            TrafficPhase(pattern="uniform", source="poisson", load=0.2),
        )).build()
        host = run.framework.hosts[0]
        assert host.emitter_count == 2
        assert not host.can_presend()

    def test_switch_buffered_sole_emitter_ok(self):
        run = _scenario().build()
        assert all(host.can_presend()
                   for host in run.framework.hosts)
