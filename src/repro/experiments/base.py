"""Shared experiment-report type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class ExperimentReport:
    """One experiment's output: printable tables plus raw data.

    Attributes
    ----------
    experiment_id:
        "e1".."e8".
    title:
        Which paper artifact this reproduces.
    tables:
        Rendered ASCII tables (what the bench prints).
    data:
        Raw series keyed by name, for tests and EXPERIMENTS.md
        assertions (each value is whatever the experiment found
        natural: lists, dicts, floats).
    expectations:
        Human-readable statements of the paper-shape checks this run
        satisfied (filled by the experiment itself after verifying).
    """

    experiment_id: str
    title: str
    tables: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)
    expectations: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Full printable report."""
        parts = [f"== {self.experiment_id.upper()}: {self.title} =="]
        parts.extend(self.tables)
        if self.expectations:
            parts.append("Checks:")
            parts.extend(f"  [ok] {line}" for line in self.expectations)
        return "\n\n".join(parts)


__all__ = ["ExperimentReport"]
