"""Tests for the look-up-rule classifier."""

import pytest

from repro.net.classifier import ClassifierRule, FlowClassifier
from repro.net.packet import Packet


def _packet(src=0, dst=1, size=1500, flow_id=0, priority=0):
    return Packet(src=src, dst=dst, size=size, created_ps=0,
                  flow_id=flow_id, priority=priority)


class TestRuleValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown classifier action"):
            ClassifierRule(action="teleport")

    @pytest.mark.parametrize("action", ["voq", "eps", "drop"])
    def test_known_actions(self, action):
        assert ClassifierRule(action=action).action == action


class TestRuleMatching:
    def test_wildcard_rule_matches_everything(self):
        rule = ClassifierRule(action="eps")
        assert rule.matches(_packet())
        assert rule.matches(_packet(src=5, dst=2, size=64))

    def test_src_filter(self):
        rule = ClassifierRule(action="eps", src=3)
        assert rule.matches(_packet(src=3))
        assert not rule.matches(_packet(src=4))

    def test_dst_filter(self):
        rule = ClassifierRule(action="eps", dst=2)
        assert rule.matches(_packet(dst=2))
        assert not rule.matches(_packet(dst=1))

    def test_flow_filter(self):
        rule = ClassifierRule(action="drop", flow_id=9)
        assert rule.matches(_packet(flow_id=9))
        assert not rule.matches(_packet(flow_id=8))

    def test_priority_filter(self):
        rule = ClassifierRule(action="eps", priority_class=1)
        assert rule.matches(_packet(priority=1))
        assert not rule.matches(_packet(priority=0))

    def test_min_size_filter(self):
        rule = ClassifierRule(action="voq", min_size=1000)
        assert rule.matches(_packet(size=1500))
        assert not rule.matches(_packet(size=64))

    def test_conjunction_of_fields(self):
        rule = ClassifierRule(action="eps", src=1, dst=2, min_size=100)
        assert rule.matches(_packet(src=1, dst=2, size=200))
        assert not rule.matches(_packet(src=1, dst=3, size=200))


class TestClassifier:
    def test_default_is_voq_to_packet_dst(self):
        decision = FlowClassifier().classify(_packet(dst=4))
        assert decision.action == "voq"
        assert decision.dst == 4

    def test_first_match_wins(self):
        classifier = FlowClassifier([
            ClassifierRule(action="drop", src=0),
            ClassifierRule(action="eps", src=0),
        ])
        assert classifier.classify(_packet(src=0)).action == "drop"

    def test_insert_rule_priority(self):
        classifier = FlowClassifier([ClassifierRule(action="drop", src=0)])
        classifier.insert_rule(0, ClassifierRule(action="eps", src=0))
        assert classifier.classify(_packet(src=0)).action == "eps"

    def test_add_rule_appends(self):
        classifier = FlowClassifier()
        classifier.add_rule(ClassifierRule(action="eps", priority_class=1))
        assert classifier.classify(_packet(priority=1)).action == "eps"
        assert classifier.classify(_packet(priority=0)).action == "voq"

    def test_redirect_dst(self):
        classifier = FlowClassifier([
            ClassifierRule(action="voq", src=0, redirect_dst=7)])
        decision = classifier.classify(_packet(src=0, dst=1))
        assert decision.dst == 7

    def test_clear_restores_default(self):
        classifier = FlowClassifier([ClassifierRule(action="drop")])
        classifier.clear()
        assert classifier.classify(_packet()).action == "voq"
        assert len(classifier) == 0

    def test_non_matching_rules_fall_through(self):
        classifier = FlowClassifier([
            ClassifierRule(action="drop", src=9)])
        assert classifier.classify(_packet(src=0)).action == "voq"
