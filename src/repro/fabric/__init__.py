"""Slotted cell-mode input-queued switch fabric.

Scheduler-algorithm studies (throughput vs load, delay vs load — E5)
need long simulations at high arrival counts.  The full packet-level
framework is exact but slow for 10⁴–10⁵ scheduling decisions, so this
package provides the standard abstraction from the crossbar-scheduling
literature: time is divided into fixed *cell slots*; per slot each input
receives at most a few fixed-size cells, the scheduler computes a
matching on VOQ occupancy, and one cell crosses per matched pair.

This is exactly the setting in which the classic iSLIP/PIM/MWM results
were derived, so the textbook curves are directly comparable.
"""

from repro.fabric.cellsim import CellFabricSim, FabricStats
from repro.fabric.replicas import run_replicas, run_replicas_sequential
from repro.fabric.workloads import (
    diagonal_rates,
    hotspot_rates,
    incast_rates,
    log_diagonal_rates,
    permutation_rates,
    uniform_rates,
)

__all__ = [
    "CellFabricSim",
    "FabricStats",
    "run_replicas",
    "run_replicas_sequential",
    "uniform_rates",
    "diagonal_rates",
    "log_diagonal_rates",
    "hotspot_rates",
    "incast_rates",
    "permutation_rates",
]
