"""Per-connection accounting and backpressure for the sweep daemon.

Each connected client gets one :class:`Session`.  The session tracks
what the client has submitted and what has been streamed back, and
implements the daemon's backpressure policy: a client may have at most
``high_watermark`` jobs outstanding (accepted but not yet streamed
back).  Above the high watermark the daemon simply *stops reading*
that client's socket — kernel buffers fill, the client's writes block,
and the pressure propagates to the submitter without any protocol
chatter — and resumes once results drain the session below the low
watermark.  Well-behaved clients never notice; firehose clients are
throttled instead of ballooning daemon memory.

A hard per-submit cap (``max_submit``) complements the watermarks: a
single SUBMIT frame bigger than the cap is refused outright with an
``error`` frame, because accepting half a submission has no sane
semantics.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_session_ids = itertools.count(1)


@dataclass
class Submission:
    """One SUBMIT frame's lifecycle on the daemon side."""

    session: "Session"
    submit_id: str
    total: int
    #: results not yet streamed back (drops to 0 => DONE frame).
    pending: int
    executed: int = 0
    cached: int = 0
    failed: int = 0
    cancelled: bool = False


@dataclass
class Session:
    """One client connection's state (see module docstring)."""

    writer: Any  # asyncio.StreamWriter
    peer: str
    high_watermark: int
    low_watermark: int
    id: int = field(default_factory=lambda: next(_session_ids))
    #: jobs accepted from this client and not yet answered.
    outstanding: int = 0
    submitted_total: int = 0
    streamed_total: int = 0
    #: live SUBMITs by submit_id.
    submissions: Dict[str, Submission] = field(default_factory=dict)
    closed: bool = False
    _drained: Optional[asyncio.Event] = None

    def __post_init__(self) -> None:
        self._drained = asyncio.Event()
        self._drained.set()

    def accept(self, submit_id: str, total: int) -> Submission:
        """Account for a new SUBMIT; returns its tracking record."""
        submission = Submission(session=self, submit_id=submit_id,
                                total=total, pending=total)
        self.submissions[submit_id] = submission
        self.submitted_total += total
        self.outstanding += total
        if self.outstanding > self.high_watermark:
            self._drained.clear()
        return submission

    def settle_one(self, submission: Submission, *, executed: bool,
                   cached: bool, failed: bool) -> None:
        """One result streamed back to this client."""
        submission.pending -= 1
        submission.executed += int(executed)
        submission.cached += int(cached)
        submission.failed += int(failed)
        self.streamed_total += 1
        self.outstanding -= 1
        if self.outstanding <= self.low_watermark:
            self._drained.set()
        if submission.pending <= 0:
            self.submissions.pop(submission.submit_id, None)

    def detach(self, submission: Submission, count: int) -> None:
        """Drop ``count`` of a submission's jobs without results
        (cancellation): the client stops waiting for them."""
        submission.pending -= count
        self.outstanding -= count
        if self.outstanding <= self.low_watermark:
            self._drained.set()
        if submission.pending <= 0:
            self.submissions.pop(submission.submit_id, None)

    async def throttle(self) -> None:
        """Block the reader while this session is over the high
        watermark (resumes below the low watermark)."""
        await self._drained.wait()

    @property
    def throttled(self) -> bool:
        return not self._drained.is_set()


__all__ = ["Session", "Submission"]
