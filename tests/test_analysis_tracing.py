"""Tests for per-packet path tracing."""

from repro.analysis.tracing import PathTracer
from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.net.classifier import ClassifierRule, FlowClassifier
from repro.sim.time import MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import PermutationDestination
from repro.traffic.sources import CbrSource, PoissonSource


def _framework(classifier=None):
    fw = HybridSwitchFramework(
        FrameworkConfig(n_ports=4, switching_time_ps=1 * MICROSECONDS,
                        scheduler="islip", timing_preset="ideal",
                        default_slot_ps=10 * MICROSECONDS, seed=2),
        classifier=classifier)
    return fw


class TestPathTracer:
    def test_full_path_recorded(self):
        fw = _framework()
        tracer = PathTracer(fw)
        cbr = CbrSource(fw.sim, fw.hosts[0], dst=1,
                        period_ps=100 * MICROSECONDS)
        result = fw.run(1 * MILLISECONDS)
        packet = result.flow_packets(cbr.flow_id)[0]
        stages = [hop.stage for hop in tracer.path(packet.packet_id)]
        assert stages == ["emitted", "switch_ingress", "ocs_in",
                          "delivered"]

    def test_hop_times_monotone(self):
        fw = _framework()
        tracer = PathTracer(fw)
        CbrSource(fw.sim, fw.hosts[0], dst=1,
                  period_ps=100 * MICROSECONDS)
        fw.run(1 * MILLISECONDS)
        for packet_id in range(tracer.traced_packets()):
            hops = tracer.path(packet_id)
            times = [hop.time_ps for hop in hops]
            assert times == sorted(times)

    def test_eps_path_identified(self):
        classifier = FlowClassifier([ClassifierRule(action="eps")])
        fw = _framework(classifier=classifier)
        tracer = PathTracer(fw)
        cbr = CbrSource(fw.sim, fw.hosts[0], dst=1,
                        period_ps=100 * MICROSECONDS)
        result = fw.run(1 * MILLISECONDS)
        packet = result.flow_packets(cbr.flow_id)[0]
        assert tracer.fabric_of(packet.packet_id) == "eps"

    def test_stage_latency(self):
        fw = _framework()
        tracer = PathTracer(fw)
        cbr = CbrSource(fw.sim, fw.hosts[0], dst=1,
                        period_ps=100 * MICROSECONDS)
        result = fw.run(1 * MILLISECONDS)
        packet = result.flow_packets(cbr.flow_id)[0]
        total = tracer.stage_latency_ps(packet.packet_id,
                                        "emitted", "delivered")
        assert total == packet.latency_ps
        assert tracer.stage_latency_ps(packet.packet_id,
                                       "emitted", "no-such") is None

    def test_stage_breakdown_covers_all_packets(self):
        fw = _framework()
        tracer = PathTracer(fw)
        for host in fw.hosts:
            PoissonSource(
                fw.sim, host, rate_bps=1e9,
                chooser=PermutationDestination(4, host.host_id),
                rng=fw.sim.streams.stream(f"s{host.host_id}"))
        fw.run(1 * MILLISECONDS)
        breakdown = tracer.stage_breakdown()
        assert ("emitted", "switch_ingress") in breakdown
        samples = breakdown[("emitted", "switch_ingress")]
        assert all(s >= 0 for s in samples)

    def test_render_path(self):
        fw = _framework()
        tracer = PathTracer(fw)
        cbr = CbrSource(fw.sim, fw.hosts[0], dst=1,
                        period_ps=100 * MICROSECONDS)
        result = fw.run(1 * MILLISECONDS)
        packet = result.flow_packets(cbr.flow_id)[0]
        text = tracer.render_path(packet.packet_id)
        assert "emitted" in text and "delivered" in text

    def test_render_unknown_packet(self):
        fw = _framework()
        tracer = PathTracer(fw)
        assert "no trace" in tracer.render_path(99_999)


class TestTracerOnFastLane:
    def test_batched_drain_and_chunked_sources_fully_traced(self):
        # Regression: the default columnar lane's batched fabric entry
        # and chunked emission must not hide hops — the tracer drops
        # the framework back to the per-packet observable path and
        # wraps the chunk pre-send.
        from repro.scenario.library import get_scenario

        run = get_scenario("uniform").quicken().build()
        tracer = PathTracer(run.framework)
        result = run.run()
        assert result.delivered_count > 0
        for packet in result.delivered[:200]:
            stages = [hop.stage for hop in tracer.path(packet.packet_id)]
            assert stages[0] == "emitted"
            assert "switch_ingress" in stages
            assert tracer.fabric_of(packet.packet_id) is not None
            assert stages[-1] == "delivered"
