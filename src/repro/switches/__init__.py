"""Switch device models: buffers, VOQ banks, the EPS and the OCS.

These are the "switching logic" half of Figure 2 plus the queueing
infrastructure the "processing logic" is built on.
"""

from repro.switches.buffers import DropPolicy, PacketQueue
from repro.switches.eps import ElectricalPacketSwitch
from repro.switches.memory import BufferMemoryMeter
from repro.switches.ocs import OpticalCircuitSwitch
from repro.switches.voq import VoqBank

__all__ = [
    "PacketQueue",
    "DropPolicy",
    "VoqBank",
    "ElectricalPacketSwitch",
    "OpticalCircuitSwitch",
    "BufferMemoryMeter",
]
