"""The discrete-event simulation engine.

:class:`Simulator` owns the clock and the event queue.  Model components
hold a reference to the simulator and schedule callbacks on it.  The
engine is deliberately minimal — the sophistication lives in the models.

Typical use::

    sim = Simulator(seed=7)
    sim.schedule(100 * NANOSECONDS, lambda: print("fired"))
    sim.run(until=1 * MICROSECONDS)
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.random import RandomStreams


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the per-component random streams available via
        :attr:`streams`.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        #: Count of events dispatched so far (for progress/diagnostics).
        self.events_dispatched = 0
        #: The ``until`` bound of the in-progress :meth:`run`, or ``None``
        #: outside a bounded run.  Fast-lane components (chunked traffic
        #: sources, eager link delivery) consult this horizon to decide
        #: how much future work may be committed without changing what a
        #: purely event-driven execution would have observed.
        self.run_until: Optional[int] = None
        self._flow_ids = itertools.count(1)

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    # -- identifiers ----------------------------------------------------------

    def next_flow_id(self) -> int:
        """Next flow id, unique within *this* simulator instance.

        Flow ids used to come from a process-global counter, which made
        back-to-back in-process runs of the same scenario disagree on
        ids.  Scoping the counter to the simulator keeps equal-seed runs
        id-identical no matter how many ran before them.
        """
        return next(self._flow_ids)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule ``callback`` to fire ``delay`` picoseconds from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        A zero delay is allowed and fires after all events already
        scheduled for the current instant (FIFO within a timestamp).
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay}ps in the past (label={label!r})")
        event = Event(self._now + delay, callback, label)
        self._queue.push(event)
        return event

    def at(self, time: int, callback: Callable[[], None],
           label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}ps, now is {self._now}ps"
                f" (label={label!r})")
        event = Event(time, callback, label)
        self._queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (idempotent)."""
        self._queue.cancel(event)

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Dispatch events until the queue drains or a limit is reached.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this
            time; the clock is then advanced *to* ``until`` so that a
            subsequent ``run`` continues from a well-defined instant.
        max_events:
            Safety valve for runaway models; raises
            :class:`SimulationError` when exceeded.

        Returns the number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        self._stopped = False
        self.run_until = until
        dispatched = 0
        # Hot loop: bind the queue methods once — at millions of events
        # per run the repeated attribute lookups are measurable.
        peek_time = self._queue.peek_time
        pop_ready = self._queue.pop_ready
        requeue = self._queue.requeue
        bounded = until is not None
        try:
            while not self._stopped:
                next_time = peek_time()
                if next_time is None:
                    if bounded:
                        self._now = max(self._now, until)
                    break
                if bounded and next_time > until:
                    self._now = until
                    break
                # Batch-pop the whole same-timestamp burst: the heap
                # walk and cancellation compaction are paid once per
                # batch.  Events a callback schedules *at* this instant
                # get higher sequence numbers and form the next batch,
                # so FIFO-within-timestamp is preserved.
                batch = pop_ready(next_time)
                self._now = next_time
                position = 0
                n_batch = len(batch)
                try:
                    while position < n_batch:
                        event = batch[position]
                        position += 1
                        if event.cancelled:
                            # Cancelled by an earlier callback in this
                            # very batch; already accounted.
                            continue
                        event.callback()
                        dispatched += 1
                        self.events_dispatched += 1
                        if max_events is not None \
                                and dispatched >= max_events:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; "
                                "model is likely in an event loop")
                        if self._stopped:
                            break
                finally:
                    if position < n_batch:
                        # Stop request, event budget or a raising
                        # callback: the unconsumed tail goes back at
                        # its original heap position.
                        requeue(batch[position:])
        finally:
            self._running = False
            self.run_until = None
        return dispatched

    def stop(self) -> None:
        """Request the current ``run`` to return after this event."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of live events currently queued."""
        return len(self._queue)


__all__ = ["Simulator"]
