"""Tests for the iterative matchers: PIM and iSLIP."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.islip import IslipScheduler
from repro.schedulers.pim import PimScheduler


def _demand_matrix(n, entries):
    demand = np.zeros((n, n))
    for src, dst, value in entries:
        demand[src, dst] = value
    return demand


def _full_backlog(n):
    demand = np.ones((n, n)) * 10
    np.fill_diagonal(demand, 0.0)
    return demand


@st.composite
def demand_matrices(draw, max_n=8):
    n = draw(st.integers(min_value=2, max_value=max_n))
    cells = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                  st.integers(1, 100)),
        max_size=n * n))
    demand = np.zeros((n, n))
    for src, dst, value in cells:
        if src != dst:
            demand[src, dst] = value
    return demand


class TestPim:
    def test_never_matches_zero_demand_pairs(self):
        pim = PimScheduler(4, rng=random.Random(1))
        demand = _demand_matrix(4, [(0, 1, 5), (2, 3, 5)])
        matching = pim.compute(demand).first
        for inp, out in matching.pairs():
            assert demand[inp, out] > 0

    def test_finds_the_only_matching(self):
        pim = PimScheduler(3, rng=random.Random(0))
        demand = _demand_matrix(3, [(0, 1, 5)])
        matching = pim.compute(demand).first
        assert matching.output_for(0) == 1
        assert matching.size == 1

    def test_deterministic_given_seed(self):
        demand = _full_backlog(6)
        results_a = [PimScheduler(6, iterations=2,
                                  rng=random.Random(9)).compute(demand).first
                     for __ in range(1)]
        results_b = [PimScheduler(6, iterations=2,
                                  rng=random.Random(9)).compute(demand).first
                     for __ in range(1)]
        assert results_a == results_b

    def test_more_iterations_match_at_least_as_much(self):
        demand = _full_backlog(8)
        one = PimScheduler(8, iterations=1, rng=random.Random(5))
        many = PimScheduler(8, iterations=4, rng=random.Random(5))
        assert many.compute(demand).first.size >= \
            one.compute(demand).first.size

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            PimScheduler(4, iterations=0)

    def test_stats_recorded(self):
        pim = PimScheduler(4, rng=random.Random(0))
        pim.compute(_full_backlog(4))
        assert pim.last_stats["iterations"] >= 1
        assert pim.last_stats["matchings"] == 1

    @given(demand_matrices())
    @settings(max_examples=40, deadline=None)
    def test_valid_partial_permutation_on_any_demand(self, demand):
        pim = PimScheduler(demand.shape[0], iterations=2,
                           rng=random.Random(2))
        matching = pim.compute(demand).first
        outs = [o for __, o in matching.pairs()]
        assert len(outs) == len(set(outs))
        for inp, out in matching.pairs():
            assert demand[inp, out] > 0


class TestIslip:
    def test_never_matches_zero_demand_pairs(self):
        islip = IslipScheduler(4)
        demand = _demand_matrix(4, [(0, 2, 5), (1, 3, 1)])
        matching = islip.compute(demand).first
        for inp, out in matching.pairs():
            assert demand[inp, out] > 0

    def test_classic_desynchronisation_with_all_voqs_backlogged(self):
        # McKeown's result: with all N^2 VOQs (diagonal included)
        # persistently backlogged, iSLIP-1 pointers desynchronise and
        # every slot is a full permutation after a short transient.
        islip = IslipScheduler(4, iterations=1)
        demand = np.ones((4, 4)) * 10
        sizes = [islip.compute(demand).first.size for __ in range(30)]
        assert sizes[-8:] == [4] * 8

    def test_off_diagonal_backlog_steady_state_near_full(self):
        # Rack traffic has no diagonal; the steady state is a short
        # cycle whose mean matching size is >= n - 1.
        islip = IslipScheduler(4, iterations=1)
        demand = _full_backlog(4)
        sizes = [islip.compute(demand).first.size for __ in range(100)]
        steady = sizes[-40:]
        assert sum(steady) / len(steady) >= 3.0

    def test_desynchronisation_serves_all_pairs_fairly(self):
        islip = IslipScheduler(3, iterations=1)
        demand = _full_backlog(3)
        served = np.zeros((3, 3))
        for __ in range(12):
            for inp, out in islip.compute(demand).first.pairs():
                served[inp, out] += 1
        # Every off-diagonal pair gets service within 12 slots.
        off_diag = ~np.eye(3, dtype=bool)
        assert (served[off_diag] > 0).all()

    def test_deterministic(self):
        a = IslipScheduler(5, iterations=2)
        b = IslipScheduler(5, iterations=2)
        demand = _full_backlog(5)
        for __ in range(5):
            assert a.compute(demand).first == b.compute(demand).first

    def test_reset_pointers(self):
        islip = IslipScheduler(4)
        islip.compute(_full_backlog(4))
        islip.reset_pointers()
        assert islip.grant_ptr == [0, 0, 0, 0]
        assert islip.accept_ptr == [0, 0, 0, 0]

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            IslipScheduler(4, iterations=0)

    def test_round_robin_pick(self):
        pick = IslipScheduler._round_robin_pick
        assert pick([0, 2, 3], pointer=1, n=4) == 2
        assert pick([0, 2, 3], pointer=3, n=4) == 3
        assert pick([1], pointer=0, n=4) == 1

    @given(demand_matrices())
    @settings(max_examples=40, deadline=None)
    def test_valid_partial_permutation_on_any_demand(self, demand):
        islip = IslipScheduler(demand.shape[0], iterations=3)
        matching = islip.compute(demand).first
        outs = [o for __, o in matching.pairs()]
        assert len(outs) == len(set(outs))
        for inp, out in matching.pairs():
            assert demand[inp, out] > 0

    def test_more_iterations_never_smaller_matching(self):
        demand = _demand_matrix(
            6, [(0, 1, 9), (1, 1, 0), (1, 2, 9), (2, 1, 9), (3, 4, 9),
                (4, 5, 9), (5, 0, 9), (0, 2, 9)])
        one = IslipScheduler(6, iterations=1).compute(demand).first.size
        four = IslipScheduler(6, iterations=4).compute(demand).first.size
        assert four >= one
