"""The declarative scenario spec: five axes, one frozen value.

A :class:`Scenario` composes everything one run of the hybrid switch
depends on — **topology** (ports, rates, propagation), **traffic**
(:class:`TrafficPhase` list: pattern × source model × load × window),
**scheduler** (registry name + params + estimator), **hardware**
(timing preset, switching time, epoch, EPS provisioning, buffer mode)
and **faults** (:class:`FaultEvent` schedule) — into a single frozen,
serializable value.

Like :class:`~repro.runner.spec.RunSpec`, a scenario has a canonical
dict/JSON form and a content hash (:meth:`Scenario.key`), so scenarios
cache, shard and sweep exactly like experiment runs.  Unlike a
``FrameworkConfig``, a scenario also *carries its workload*: calling
:func:`repro.scenario.build.build` materializes the framework, attaches
every traffic source and arms every fault injector, deterministically.

Derivation is the composition story: ``scenario.derive(seed=7)`` or
``scenario.with_overrides({"traffic.0.load": 0.8})`` produce new frozen
values, which is how experiments express their sweeps and how the CLI's
``--set`` works.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.net.host import HostBufferMode
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS, NANOSECONDS

#: Bump when scenario semantics change incompatibly (participates in the
#: content hash, so every key changes and stale caches read as misses).
SCENARIO_FORMAT = 1

#: Destination patterns the builder knows how to materialize.
PATTERNS = ("uniform", "permutation", "hotspot", "fixed", "incast",
            "round-robin", "zipf")

#: Source models the builder knows how to materialize.
SOURCES = ("poisson", "onoff", "cbr", "flows")

#: Fault kinds the builder knows how to arm.
FAULT_KINDS = ("link-flap", "sched-stall", "ocs-corrupt")

_BUFFER_MODES = {"switch": HostBufferMode.SWITCH_BUFFERED,
                 "host": HostBufferMode.HOST_BUFFERED}


@dataclass(frozen=True)
class TrafficPhase:
    """One homogeneous slice of the workload: who sends what, when.

    Attributes
    ----------
    pattern:
        Destination-selection pattern (one of :data:`PATTERNS`).
    source:
        Packet/flow source model (one of :data:`SOURCES`).
    load:
        Offered load as a fraction of the port rate, per sending host.
        ``cbr`` ignores it (the period sets the rate); ``onoff`` uses it
        unless ``source_kwargs["burst_fraction"]`` pins the burst rate.
    start_ps / until_ps:
        Active window (``until_ps=None`` runs to the end).  Windows give
        time-varying workloads: diurnal load is three phases.
    hosts:
        Sending hosts (``None`` = every host; the ``incast`` pattern
        additionally excludes its target).
    streams:
        RNG stream-name prefix.  Empty keeps the legacy per-host names
        (``src{i}``/``dst{i}``) so single-phase scenarios are
        byte-identical to the hand-wired experiments they replaced;
        concurrent phases should pick distinct prefixes.
    pattern_kwargs / source_kwargs:
        Pattern/source parameters (``skew``, ``mean_on_ps`` ...).
    """

    pattern: str = "uniform"
    source: str = "poisson"
    load: float = 0.3
    start_ps: int = 0
    until_ps: Optional[int] = None
    hosts: Optional[Tuple[int, ...]] = None
    streams: str = ""
    pattern_kwargs: Mapping[str, Any] = field(default_factory=dict)
    source_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"unknown traffic pattern {self.pattern!r}; "
                f"expected one of {PATTERNS}")
        if self.source not in SOURCES:
            raise ConfigurationError(
                f"unknown traffic source {self.source!r}; "
                f"expected one of {SOURCES}")
        if self.source != "cbr" and self.load <= 0:
            raise ConfigurationError(
                f"traffic load must be positive, got {self.load}")
        if self.start_ps < 0:
            raise ConfigurationError("phase start_ps must be >= 0")
        if self.until_ps is not None and self.until_ps <= self.start_ps:
            raise ConfigurationError(
                f"phase window is empty: start={self.start_ps}, "
                f"until={self.until_ps}")
        if self.source == "cbr" and self.pattern != "fixed":
            raise ConfigurationError(
                "cbr sources need pattern='fixed' (one destination)")
        if self.pattern == "fixed" and "dst" not in self.pattern_kwargs:
            raise ConfigurationError(
                "pattern 'fixed' needs pattern_kwargs['dst']")
        if self.hosts is not None:
            object.__setattr__(self, "hosts", tuple(self.hosts))

    def canonical(self) -> Dict[str, Any]:
        return {
            "pattern": self.pattern,
            "source": self.source,
            "load": self.load,
            "start_ps": self.start_ps,
            "until_ps": self.until_ps,
            "hosts": (None if self.hosts is None else list(self.hosts)),
            "streams": self.streams,
            "pattern_kwargs": dict(self.pattern_kwargs),
            "source_kwargs": dict(self.source_kwargs),
        }

    @classmethod
    def from_canonical(cls, payload: Mapping[str, Any]) -> "TrafficPhase":
        hosts = payload.get("hosts")
        return cls(
            pattern=payload.get("pattern", "uniform"),
            source=payload.get("source", "poisson"),
            load=payload.get("load", 0.3),
            start_ps=payload.get("start_ps", 0),
            until_ps=payload.get("until_ps"),
            hosts=None if hosts is None else tuple(hosts),
            streams=payload.get("streams", ""),
            pattern_kwargs=dict(payload.get("pattern_kwargs", {})),
            source_kwargs=dict(payload.get("source_kwargs", {})),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled transient (see :mod:`repro.faults`).

    ``target`` and ``direction`` select the link for ``link-flap``;
    ``duration_ps`` is ignored by ``ocs-corrupt`` (a point event).
    """

    kind: str
    at_ps: int
    duration_ps: int = 0
    target: int = 0
    direction: str = "up"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}")
        if self.at_ps < 0:
            raise ConfigurationError("fault at_ps must be >= 0")
        if self.kind in ("link-flap", "sched-stall") \
                and self.duration_ps <= 0:
            raise ConfigurationError(
                f"{self.kind} needs a positive duration_ps")
        if self.direction not in ("up", "down"):
            raise ConfigurationError(
                f"fault direction must be 'up' or 'down', "
                f"got {self.direction!r}")
        if self.target < 0:
            raise ConfigurationError("fault target must be >= 0")

    def canonical(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "at_ps": self.at_ps,
            "duration_ps": self.duration_ps,
            "target": self.target,
            "direction": self.direction,
        }

    @classmethod
    def from_canonical(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            kind=payload["kind"],
            at_ps=payload["at_ps"],
            duration_ps=payload.get("duration_ps", 0),
            target=payload.get("target", 0),
            direction=payload.get("direction", "up"),
        )


@dataclass(frozen=True)
class Scenario:
    """One fully specified run: topology × traffic × scheduler ×
    hardware × faults.

    The non-traffic/fault fields mirror
    :class:`~repro.core.config.FrameworkConfig` (same names, same
    units) with two additions: ``buffer_mode`` is a string (``"switch"``
    / ``"host"``) so the spec stays JSON-pure, and ``quick_duration_ps``
    names the reduced duration ``quicken()`` rescales the run to.
    """

    name: str
    description: str = ""
    # -- topology -----------------------------------------------------------
    n_ports: int = 8
    port_rate_bps: float = 10 * GIGABIT
    propagation_ps: int = 50 * NANOSECONDS
    # -- hardware -----------------------------------------------------------
    switching_time_ps: int = 20 * MICROSECONDS
    timing_preset: str = "netfpga_sume"
    buffer_mode: str = "switch"
    epoch_ps: int = 0
    default_slot_ps: int = 10 * MICROSECONDS
    eps_rate_bps: float = 10 * GIGABIT
    eps_queue_bytes: Optional[int] = None
    voq_capacity_bytes: Optional[int] = None
    host_clock_skew_ps: int = 0
    control_latency_ps: Optional[int] = None
    # -- scheduler ----------------------------------------------------------
    scheduler: str = "hotspot"
    scheduler_kwargs: Mapping[str, Any] = field(default_factory=dict)
    estimator: str = "instant"
    estimator_kwargs: Mapping[str, Any] = field(default_factory=dict)
    optimistic_grant: bool = False
    # -- traffic ------------------------------------------------------------
    traffic: Tuple[TrafficPhase, ...] = (TrafficPhase(),)
    # -- faults -------------------------------------------------------------
    faults: Tuple[FaultEvent, ...] = ()
    # -- run ----------------------------------------------------------------
    duration_ps: int = 10 * MILLISECONDS
    quick_duration_ps: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a name")
        if self.buffer_mode not in _BUFFER_MODES:
            raise ConfigurationError(
                f"buffer_mode must be 'switch' or 'host', "
                f"got {self.buffer_mode!r}")
        if self.duration_ps <= 0:
            raise ConfigurationError("duration_ps must be positive")
        if (self.quick_duration_ps is not None
                and self.quick_duration_ps <= 0):
            raise ConfigurationError("quick_duration_ps must be positive")
        if not self.traffic:
            raise ConfigurationError(
                "a scenario needs at least one traffic phase")
        object.__setattr__(self, "traffic", tuple(
            p if isinstance(p, TrafficPhase)
            else TrafficPhase.from_canonical(p) for p in self.traffic))
        object.__setattr__(self, "faults", tuple(
            f if isinstance(f, FaultEvent)
            else FaultEvent.from_canonical(f) for f in self.faults))
        # Delegate topology/hardware range checks to FrameworkConfig so
        # the two specs can never drift apart on what is valid.
        self.framework_config()

    # -- materialization --------------------------------------------------------

    def framework_config(self):
        """The :class:`~repro.core.config.FrameworkConfig` this denotes."""
        from repro.core.config import FrameworkConfig

        return FrameworkConfig(
            n_ports=self.n_ports,
            port_rate_bps=self.port_rate_bps,
            switching_time_ps=self.switching_time_ps,
            scheduler=self.scheduler,
            scheduler_kwargs=dict(self.scheduler_kwargs),
            timing_preset=self.timing_preset,
            estimator=self.estimator,
            estimator_kwargs=dict(self.estimator_kwargs),
            buffer_mode=_BUFFER_MODES[self.buffer_mode],
            epoch_ps=self.epoch_ps,
            default_slot_ps=self.default_slot_ps,
            eps_rate_bps=self.eps_rate_bps,
            eps_queue_bytes=self.eps_queue_bytes,
            voq_capacity_bytes=self.voq_capacity_bytes,
            host_clock_skew_ps=self.host_clock_skew_ps,
            propagation_ps=self.propagation_ps,
            control_latency_ps=self.control_latency_ps,
            seed=self.seed,
        )

    def build(self, packet_lane: str = "columnar"):
        """Materialize: framework + sources + injectors, ready to run.

        Convenience for :func:`repro.scenario.build.build`;
        ``packet_lane`` selects the columnar fast lane (default) or the
        per-packet reference path.
        """
        from repro.scenario.build import build

        return build(self, packet_lane=packet_lane)

    # -- derivation -------------------------------------------------------------

    def derive(self, **changes: Any) -> "Scenario":
        """A new scenario with ``changes`` applied (field-level).

        ``traffic``/``faults`` accept sequences of specs or canonical
        dicts; everything else is ``dataclasses.replace`` semantics.
        """
        if "traffic" in changes:
            changes["traffic"] = tuple(changes["traffic"])
        if "faults" in changes:
            changes["faults"] = tuple(changes["faults"])
        return replace(self, **changes)

    def with_overrides(self,
                       overrides: Mapping[str, Any]) -> "Scenario":
        """Apply dotted-path overrides to the canonical form.

        ``{"n_ports": 16}`` sets a field; ``"traffic.0.load"`` reaches
        into the first phase; ``"traffic.*.load"`` fans out over every
        phase; ``"scheduler_kwargs.threshold_bytes"`` may introduce new
        keys (kwargs dicts are open), while misspelling a field name
        raises instead of being silently ignored.
        """
        if not overrides:
            return self
        payload = self.canonical()
        for path in sorted(overrides):
            _assign(payload, path, path.split("."), overrides[path])
        return Scenario.from_canonical(payload)

    def quicken(self) -> "Scenario":
        """The reduced (CI/smoke) rendition of this scenario.

        Shrinks the run to ``quick_duration_ps`` (default: a quarter of
        the full duration) and rescales every phase window and fault
        instant by the same factor, so the scenario's *shape* — phase
        ordering, faults landing mid-run — survives the shrink.
        """
        quick_ps = self.quick_duration_ps or max(
            1, self.duration_ps // 4)
        if quick_ps >= self.duration_ps:
            return self
        factor = quick_ps / self.duration_ps

        def scale(ps: Optional[int]) -> Optional[int]:
            return None if ps is None else int(round(ps * factor))

        traffic = tuple(
            replace(p, start_ps=scale(p.start_ps) or 0,
                    until_ps=scale(p.until_ps))
            for p in self.traffic)
        faults = tuple(
            replace(f, at_ps=scale(f.at_ps) or 0,
                    duration_ps=(max(1, scale(f.duration_ps) or 0)
                                 if f.duration_ps else 0))
            for f in self.faults)
        return replace(self, duration_ps=quick_ps, traffic=traffic,
                       faults=faults)

    # -- serialization -------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """The scenario as plain JSON types, plus the format version."""
        payload: Dict[str, Any] = {"format": SCENARIO_FORMAT}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "traffic":
                value = [p.canonical() for p in value]
            elif spec_field.name == "faults":
                value = [f.canonical() for f in value]
            elif spec_field.name in ("scheduler_kwargs",
                                     "estimator_kwargs"):
                value = dict(value)
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_canonical(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`canonical` (also accepts hand-written
        dicts that omit defaulted fields)."""
        fmt = payload.get("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ConfigurationError(
                f"scenario format {fmt} not supported "
                f"(this build reads {SCENARIO_FORMAT})")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known - {"format"}
        if unknown:
            raise ConfigurationError(
                f"unknown scenario fields: {sorted(unknown)}")
        kwargs = {k: v for k, v in payload.items() if k in known}
        if "traffic" in kwargs:
            kwargs["traffic"] = tuple(
                TrafficPhase.from_canonical(p) if isinstance(p, Mapping)
                else p for p in kwargs["traffic"])
        if "faults" in kwargs:
            kwargs["faults"] = tuple(
                FaultEvent.from_canonical(f) if isinstance(f, Mapping)
                else f for f in kwargs["faults"])
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON text (sorted keys — hash-stable)."""
        from repro.runner.spec import jsonable

        return json.dumps(jsonable(self.canonical()), sort_keys=True,
                          indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_canonical(json.loads(text))

    def key(self) -> str:
        """Content address: ``<name>-<sha256 prefix>``.

        Stable across dict key ordering and construction routes —
        only the canonical content matters.
        """
        from repro.runner.spec import canonical_json

        digest = hashlib.sha256(
            canonical_json(self.canonical()).encode("utf-8")).hexdigest()
        return f"{self.name}-{digest[:24]}"


def _assign(container: Any, full_path: str, segments: list,
            value: Any, open_dict: bool = False) -> None:
    """Set ``value`` at a dotted path inside canonical payload data.

    Dict keys must already exist unless the parent is an open kwargs
    dict; list indices must be in range, or ``*`` to fan out.
    """
    head, rest = segments[0], segments[1:]
    if isinstance(container, list):
        if head == "*":
            for item in container:
                if rest:
                    _assign(item, full_path, rest, value, open_dict)
                else:
                    raise ConfigurationError(
                        f"override path {full_path!r} cannot end on '*'")
            return
        try:
            index = int(head)
        except ValueError:
            raise ConfigurationError(
                f"override path {full_path!r}: expected a list index, "
                f"got {head!r}") from None
        if not 0 <= index < len(container):
            raise ConfigurationError(
                f"override path {full_path!r}: index {index} out of "
                f"range (len {len(container)})")
        if rest:
            _assign(container[index], full_path, rest, value, open_dict)
        else:
            container[index] = value
        return
    if not isinstance(container, dict):
        raise ConfigurationError(
            f"override path {full_path!r} descends into a scalar")
    if head not in container and (not open_dict or rest):
        # Open kwargs dicts accept *new leaf keys*, but descending
        # through a key that does not exist is always a path error.
        raise ConfigurationError(
            f"override path {full_path!r}: unknown key {head!r}; "
            f"known: {sorted(k for k in container if k != 'format')}")
    if rest:
        _assign(container[head], full_path, rest, value,
                open_dict=head.endswith("_kwargs"))
    else:
        if head == "format":
            raise ConfigurationError(
                "the scenario format version cannot be overridden")
        container[head] = value


__all__ = [
    "Scenario",
    "TrafficPhase",
    "FaultEvent",
    "SCENARIO_FORMAT",
    "PATTERNS",
    "SOURCES",
    "FAULT_KINDS",
]
