"""Declarative scenarios: one composable spec for topology × traffic ×
scheduler × hardware × faults.

The paper's framework hosts many scheduler/hardware/workload
combinations in one switching-logic slot; this package makes the
*combination itself* a first-class, serializable value:

    from repro.scenario import Scenario, TrafficPhase, get_scenario

    # A library workload, derived and run:
    result = get_scenario("incast").derive(n_ports=16).build().run()

    # Or from scratch — frozen, hashable, JSON round-trippable:
    scenario = Scenario(
        name="my-burst",
        scheduler="solstice",
        traffic=(TrafficPhase(pattern="hotspot", source="onoff",
                              load=0.5,
                              pattern_kwargs={"skew": 0.9}),),
    )
    print(scenario.key())          # content hash — cache identity
    print(scenario.to_json())      # canonical serialized form

Scenarios plug into ``repro.runner`` as ``scenario:<name>`` job specs
(cached, sharded and parallelized like experiments) and into the CLI as
``repro scenario list|show|run`` — new workloads need no new code.
"""

# Import order matters: the spec names must be bound on this package
# before ``report`` is imported — report pulls in ``repro.experiments``,
# whose modules import ``Scenario``/``TrafficPhase`` back from here.
from repro.scenario.spec import (  # isort: skip
    FAULT_KINDS,
    PATTERNS,
    SCENARIO_FORMAT,
    SOURCES,
    FaultEvent,
    Scenario,
    TrafficPhase,
)
from repro.scenario.build import (  # isort: skip
    AttachedSource,
    ScenarioRun,
    build,
)
from repro.scenario.library import (  # isort: skip
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_summaries,
    unregister_scenario,
)
from repro.scenario.report import configure, run_scenario  # isort: skip

__all__ = [
    "Scenario",
    "TrafficPhase",
    "FaultEvent",
    "ScenarioRun",
    "AttachedSource",
    "build",
    "run_scenario",
    "configure",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "scenario_summaries",
    "SCENARIO_FORMAT",
    "PATTERNS",
    "SOURCES",
    "FAULT_KINDS",
]
