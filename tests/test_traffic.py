"""Tests for traffic sources, patterns and flow distributions."""

import random

import pytest

from repro.net.host import Host
from repro.net.link import Link
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS
from repro.traffic.flows import (
    DATAMINING_FLOW_SIZES,
    WEBSEARCH_FLOW_SIZES,
    EmpiricalSizeDistribution,
    FlowSource,
)
from repro.traffic.patterns import (
    FixedDestination,
    HotspotDestination,
    PermutationDestination,
    UniformDestination,
)
from repro.traffic.sources import CbrSource, OnOffSource, PoissonSource


def _host(sim, host_id=0):
    uplink = Link(sim, "up", 10 * GIGABIT)
    uplink.connect(lambda p: None)
    return Host(sim, host_id, uplink)


class TestPatterns:
    def test_uniform_never_self(self):
        chooser = UniformDestination(8, 3, random.Random(1))
        for __ in range(500):
            assert chooser.choose() != 3

    def test_uniform_covers_all_destinations(self):
        chooser = UniformDestination(4, 0, random.Random(2))
        seen = {chooser.choose() for __ in range(200)}
        assert seen == {1, 2, 3}

    def test_fixed(self):
        chooser = FixedDestination(4, 0, 2)
        assert chooser.choose() == 2

    def test_fixed_self_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedDestination(4, 2, 2)

    def test_permutation(self):
        assert PermutationDestination(4, 3, shift=1).choose() == 0

    def test_permutation_zero_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            PermutationDestination(4, 0, shift=4)

    def test_hotspot_extremes(self):
        cold = HotspotDestination(8, 0, skew=0.0, rng=random.Random(3))
        hot = HotspotDestination(8, 0, skew=1.0, rng=random.Random(3))
        assert {hot.choose() for __ in range(50)} == {1}
        assert len({cold.choose() for __ in range(200)}) > 1

    def test_hotspot_skew_validation(self):
        with pytest.raises(ConfigurationError):
            HotspotDestination(8, 0, skew=1.5)


class TestPoissonSource:
    def test_offered_rate_approximates_target(self, sim):
        host = _host(sim)
        PoissonSource(sim, host, rate_bps=2 * GIGABIT, n_ports=4,
                      rng=random.Random(0))
        duration = 10 * MILLISECONDS
        sim.run(until=duration)
        offered_bps = host.emitted.bytes * 8 * 1e12 / duration
        assert offered_bps == pytest.approx(2e9, rel=0.15)

    def test_until_stops_emission(self, sim):
        host = _host(sim)
        PoissonSource(sim, host, rate_bps=5 * GIGABIT, n_ports=4,
                      rng=random.Random(0), until_ps=1 * MILLISECONDS)
        sim.run(until=5 * MILLISECONDS)
        count_at_cutoff = host.emitted.count
        sim.run(until=10 * MILLISECONDS)
        assert host.emitted.count == count_at_cutoff

    def test_requires_chooser_or_n_ports(self, sim):
        with pytest.raises(ConfigurationError, match="n_ports"):
            PoissonSource(sim, _host(sim), rate_bps=1e9)

    def test_rate_validation(self, sim):
        with pytest.raises(ConfigurationError):
            PoissonSource(sim, _host(sim), rate_bps=0, n_ports=4)


class TestCbrSource:
    def test_exact_periodicity(self, sim):
        host = _host(sim)
        CbrSource(sim, host, dst=1, packet_bytes=100,
                  period_ps=100 * MICROSECONDS)
        sim.run(until=1 * MILLISECONDS)
        # t=0, 100us, ..., 1000us inclusive = 11 packets.
        assert host.emitted.count == 11

    def test_priority_tag(self, sim):
        host = _host(sim)
        received = []
        host.uplink.connect(received.append)
        CbrSource(sim, host, dst=1, priority=1,
                  period_ps=100 * MICROSECONDS)
        sim.run(until=200 * MICROSECONDS)
        assert all(p.priority == 1 for p in received)

    def test_self_destination_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            CbrSource(sim, _host(sim), dst=0)


class TestOnOffSource:
    def test_bursts_emit_back_to_back(self, sim):
        host = _host(sim)
        source = OnOffSource(
            sim, host, burst_rate_bps=10 * GIGABIT,
            mean_on_ps=200 * MICROSECONDS, mean_off_ps=100 * MICROSECONDS,
            n_ports=4, rng=random.Random(1))
        sim.run(until=5 * MILLISECONDS)
        assert source.bursts_started >= 2
        assert host.emitted.count > 50

    def test_single_destination_per_burst(self, sim):
        host = _host(sim)
        received = []
        host.uplink.connect(received.append)
        OnOffSource(
            sim, host, burst_rate_bps=10 * GIGABIT,
            mean_on_ps=500 * MICROSECONDS, mean_off_ps=0,
            n_ports=8, rng=random.Random(2))
        sim.run(until=200 * MICROSECONDS)
        flows = {p.flow_id for p in received}
        for flow_id in flows:
            dsts = {p.dst for p in received if p.flow_id == flow_id}
            assert len(dsts) == 1

    def test_pareto_shape_validation(self, sim):
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, _host(sim), burst_rate_bps=1e9,
                        mean_on_ps=100, mean_off_ps=100, alpha=1.0,
                        n_ports=4)


class TestEmpiricalDistribution:
    def test_published_mixes_are_valid(self):
        for cdf in (WEBSEARCH_FLOW_SIZES, DATAMINING_FLOW_SIZES):
            dist = EmpiricalSizeDistribution(cdf)
            assert dist.mean_bytes() > 0

    def test_samples_within_support(self):
        dist = EmpiricalSizeDistribution(WEBSEARCH_FLOW_SIZES)
        rng = random.Random(5)
        for __ in range(500):
            size = dist.sample(rng)
            assert 1 <= size <= 30_000_000

    def test_heavy_tail_present(self):
        dist = EmpiricalSizeDistribution(DATAMINING_FLOW_SIZES)
        rng = random.Random(6)
        samples = [dist.sample(rng) for __ in range(3_000)]
        small = sum(1 for s in samples if s <= 10_000)
        big = sum(1 for s in samples if s >= 1_000_000)
        assert small / len(samples) > 0.6   # mice dominate counts
        assert big > 0                      # elephants exist

    def test_cdf_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalSizeDistribution([])
        with pytest.raises(ConfigurationError):
            EmpiricalSizeDistribution([(0.5, 100)])  # doesn't reach 1.0
        with pytest.raises(ConfigurationError):
            EmpiricalSizeDistribution([(0.5, 100), (0.4, 200)])


class TestFlowSource:
    def test_generates_flows_and_packets(self, sim):
        host = _host(sim)
        dist = EmpiricalSizeDistribution(WEBSEARCH_FLOW_SIZES)
        source = FlowSource(
            sim, host,
            chooser=UniformDestination(4, 0, random.Random(7)),
            distribution=dist, offered_bps=3 * GIGABIT,
            rng=random.Random(7))
        sim.run(until=20 * MILLISECONDS)
        assert source.flows_started > 0
        assert host.emitted.count > 0

    def test_flow_bytes_match_sampled_size(self, sim):
        host = _host(sim)
        received = []
        host.uplink.connect(received.append)
        dist = EmpiricalSizeDistribution(((1.0, 5_000),))
        FlowSource(
            sim, host,
            chooser=FixedDestination(4, 0, 1),
            distribution=dist, offered_bps=1 * GIGABIT,
            rng=random.Random(8))
        sim.run(until=30 * MILLISECONDS)
        by_flow = {}
        for p in received:
            by_flow.setdefault(p.flow_id, 0)
            by_flow[p.flow_id] += p.size
        finished = [b for b in by_flow.values()]
        # Flows are ~5000 bytes each (interpolated near the single knot).
        assert finished
        for total in finished[:-1]:  # last flow may be truncated by end
            assert total <= 5_100
