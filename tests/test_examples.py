"""Smoke tests: the example scripts must actually run.

Examples are the quickstart surface of the library; a refactor that
breaks them breaks the README.  Only the fast ones run here (the
workload-heavy examples are exercised manually / by the bench harness);
each runs in a subprocess so import side effects stay isolated.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = ["buffering_analysis.py", "quickstart.py",
                 "scenario_gallery.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} printed nothing"


def test_buffering_analysis_reproduces_paper_sentence():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "buffering_analysis.py")],
        capture_output=True, text=True, timeout=120)
    assert "5.12GB" in result.stdout
    assert "5.12KB" in result.stdout


def test_all_examples_compile():
    """Every example must at least be syntactically valid."""
    for script in EXAMPLES_DIR.glob("*.py"):
        source = script.read_text()
        compile(source, str(script), "exec")
