"""Materialize a :class:`~repro.scenario.spec.Scenario` into a run.

``build(scenario)`` is the single seam between the declarative world
and the simulation: it instantiates the framework, walks the traffic
phases in order attaching one source per sending host, and arms the
fault schedule.  Everything is deterministic:

* sources are constructed phase-major, host-minor, so event insertion
  order (and therefore tie-breaking at equal timestamps) is a function
  of the spec alone;
* every random consumer draws from a named stream derived from the
  scenario seed.  A phase with an empty ``streams`` prefix uses the
  legacy per-host names (``dst{i}``/``src{i}``), which is what makes a
  single-phase scenario byte-identical to the hand-wired experiment it
  replaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, List, Optional, Tuple

from repro.core.framework import HybridSwitchFramework
from repro.core.results import RunResult
from repro.faults import (
    ConfigCorruptionInjector,
    LinkFlapInjector,
    SchedulerStallInjector,
)
from repro.net.packet import MAX_FRAME_BYTES
from repro.scenario.spec import FaultEvent, Scenario, TrafficPhase
from repro.sim.errors import ConfigurationError
from repro.traffic.flows import (
    DATAMINING_FLOW_SIZES,
    WEBSEARCH_FLOW_SIZES,
    EmpiricalSizeDistribution,
    FlowSource,
)
from repro.traffic.patterns import (
    DestinationChooser,
    FixedDestination,
    HotspotDestination,
    PermutationDestination,
    RoundRobinDestination,
    UniformDestination,
    ZipfDestination,
)
from repro.traffic.sources import CbrSource, OnOffSource, PoissonSource

_FLOW_MIXES = {
    "websearch": WEBSEARCH_FLOW_SIZES,
    "datamining": DATAMINING_FLOW_SIZES,
}


@dataclass
class AttachedSource:
    """One materialized traffic source, with its provenance."""

    phase_index: int
    host_id: int
    source: Any


#: Chunk size handed to chunk-capable sources on the columnar lane.
#: Large enough to amortise the per-chunk event and the bulk
#: serialisation pass, small enough that a chunk's worth of pre-built
#: packets stays cache-friendly.
DEFAULT_CHUNK_PACKETS = 256


@dataclass
class ScenarioRun:
    """A built scenario: framework + sources + injectors, single-shot."""

    scenario: Scenario
    framework: HybridSwitchFramework
    sources: List[AttachedSource] = dataclass_field(default_factory=list)
    injectors: List[Any] = dataclass_field(default_factory=list)

    def run(self) -> RunResult:
        """Simulate for the scenario's duration and collect results."""
        return self.framework.run(self.scenario.duration_ps)

    def phase_sources(self, phase_index: int) -> List[AttachedSource]:
        """The sources one phase attached (flow-id lookups etc.)."""
        return [s for s in self.sources if s.phase_index == phase_index]


def _stream(fw: HybridSwitchFramework, phase: TrafficPhase, base: str):
    name = f"{phase.streams}:{base}" if phase.streams else base
    return fw.sim.streams.stream(name)


def _chooser(fw: HybridSwitchFramework, phase: TrafficPhase,
             src: int) -> Optional[DestinationChooser]:
    n_ports = fw.n_ports
    kw = phase.pattern_kwargs
    if phase.pattern == "uniform":
        return UniformDestination(
            n_ports, src, _stream(fw, phase, f"dst{src}"))
    if phase.pattern == "permutation":
        return PermutationDestination(
            n_ports, src, shift=kw.get("shift", 1))
    if phase.pattern == "hotspot":
        return HotspotDestination(
            n_ports, src, skew=kw.get("skew", 0.8),
            hot_dst=kw.get("hot_dst"),
            rng=_stream(fw, phase, f"dst{src}"))
    if phase.pattern == "fixed":
        return FixedDestination(n_ports, src, dst=kw["dst"])
    if phase.pattern == "incast":
        return FixedDestination(n_ports, src, dst=kw.get("target", 0))
    if phase.pattern == "round-robin":
        return RoundRobinDestination(
            n_ports, src, offset=kw.get("offset", 1))
    if phase.pattern == "zipf":
        return ZipfDestination(
            n_ports, src, exponent=kw.get("exponent", 1.2),
            rng=_stream(fw, phase, f"dst{src}"))
    raise ConfigurationError(f"unknown pattern {phase.pattern!r}")


def _phase_hosts(scenario: Scenario,
                 phase: TrafficPhase) -> Tuple[int, ...]:
    if phase.hosts is not None:
        for host_id in phase.hosts:
            if not 0 <= host_id < scenario.n_ports:
                raise ConfigurationError(
                    f"phase host {host_id} out of range for "
                    f"{scenario.n_ports} ports")
        return phase.hosts
    if phase.pattern == "incast":
        target = phase.pattern_kwargs.get("target", 0)
        return tuple(h for h in range(scenario.n_ports) if h != target)
    return tuple(range(scenario.n_ports))


def _attach(fw: HybridSwitchFramework, scenario: Scenario,
            phase: TrafficPhase, phase_index: int,
            host_id: int, chunk_packets: int) -> Any:
    host = fw.hosts[host_id]
    kw = phase.source_kwargs
    window = {"start_ps": phase.start_ps, "until_ps": phase.until_ps}
    if phase.source == "poisson":
        return PoissonSource(
            fw.sim, host,
            rate_bps=phase.load * scenario.port_rate_bps,
            packet_bytes=kw.get("packet_bytes", MAX_FRAME_BYTES),
            chooser=_chooser(fw, phase, host_id),
            rng=_stream(fw, phase, f"src{host_id}"),
            priority=kw.get("priority", 0),
            chunk_packets=chunk_packets, **window)
    if phase.source == "onoff":
        mean_on = kw.get("mean_on_ps", 150_000_000)
        mean_off = kw.get("mean_off_ps", 150_000_000)
        if "burst_fraction" in kw:
            burst = kw["burst_fraction"] * scenario.port_rate_bps
        else:
            duty = mean_on / (mean_on + mean_off)
            burst = phase.load * scenario.port_rate_bps / duty
        return OnOffSource(
            fw.sim, host, burst_rate_bps=burst,
            mean_on_ps=mean_on, mean_off_ps=mean_off,
            packet_bytes=kw.get("packet_bytes", MAX_FRAME_BYTES),
            alpha=kw.get("alpha", 1.5),
            chooser=_chooser(fw, phase, host_id),
            rng=_stream(fw, phase, f"src{host_id}"),
            priority=kw.get("priority", 0),
            chunk_packets=chunk_packets, **window)
    if phase.source == "cbr":
        return CbrSource(
            fw.sim, host, dst=phase.pattern_kwargs["dst"],
            packet_bytes=kw.get("packet_bytes", 200),
            period_ps=kw.get("period_ps", 200_000_000),
            priority=kw.get("priority", 1),
            chunk_packets=chunk_packets, **window)
    if phase.source == "flows":
        mix = kw.get("mix", "websearch")
        if mix not in _FLOW_MIXES:
            raise ConfigurationError(
                f"unknown flow mix {mix!r}; "
                f"expected one of {sorted(_FLOW_MIXES)}")
        return FlowSource(
            fw.sim, host,
            chooser=_chooser(fw, phase, host_id),
            distribution=EmpiricalSizeDistribution(_FLOW_MIXES[mix]),
            offered_bps=phase.load * scenario.port_rate_bps,
            flow_rate_bps=kw.get("flow_rate_bps", 10e9),
            packet_bytes=kw.get("packet_bytes", MAX_FRAME_BYTES),
            rng=_stream(fw, phase, f"src{host_id}"),
            priority=kw.get("priority", 0), **window)
    raise ConfigurationError(f"unknown source {phase.source!r}")


def _arm_fault(fw: HybridSwitchFramework, scenario: Scenario,
               fault: FaultEvent, index: int) -> Any:
    if fault.kind == "link-flap":
        links = (fw.topology.uplinks if fault.direction == "up"
                 else fw.topology.downlinks)
        if not 0 <= fault.target < len(links):
            raise ConfigurationError(
                f"link-flap target {fault.target} out of range for "
                f"{len(links)} links")
        return LinkFlapInjector(
            fw.sim, links[fault.target],
            flaps=[(fault.at_ps, fault.duration_ps)])
    if fault.kind == "sched-stall":
        return SchedulerStallInjector(
            fw.sim, fw.scheduling, start_ps=fault.at_ps,
            duration_ps=fault.duration_ps)
    if fault.kind == "ocs-corrupt":
        return ConfigCorruptionInjector(
            fw.sim, fw.ocs, at_ps=fault.at_ps,
            rng=fw.sim.streams.stream(f"fault{index}"))
    raise ConfigurationError(f"unknown fault kind {fault.kind!r}")


def build(scenario: Scenario,
          packet_lane: str = "columnar") -> ScenarioRun:
    """Materialize ``scenario``: framework, traffic, faults — armed.

    The returned :class:`ScenarioRun` is single-shot, like the
    framework it wraps: call :meth:`ScenarioRun.run` once.

    ``packet_lane`` selects the packet-path implementation:
    ``"columnar"`` (default) runs the fast lane — chunked source
    generation plus columnar telemetry, observably identical to
    ``"reference"``, which keeps the original per-packet path as the
    executable spec.  Chunked generation self-disables per host
    wherever its exactness conditions fail (shared hosts, host
    buffering, faulted uplinks), so a faulty scenario simply runs the
    reference emission path under columnar telemetry.
    """
    fw = HybridSwitchFramework(
        scenario.framework_config(),
        optimistic_grant=scenario.optimistic_grant,
        packet_lane=packet_lane)
    chunk = DEFAULT_CHUNK_PACKETS if packet_lane == "columnar" else 0
    run = ScenarioRun(scenario=scenario, framework=fw)
    for phase_index, phase in enumerate(scenario.traffic):
        for host_id in _phase_hosts(scenario, phase):
            source = _attach(fw, scenario, phase, phase_index,
                             host_id, chunk)
            run.sources.append(
                AttachedSource(phase_index, host_id, source))
    for index, fault in enumerate(scenario.faults):
        run.injectors.append(_arm_fault(fw, scenario, fault, index))
    return run


__all__ = ["build", "ScenarioRun", "AttachedSource",
           "DEFAULT_CHUNK_PACKETS"]
