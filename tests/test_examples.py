"""Smoke tests: the example scripts must actually run.

Examples are the quickstart surface of the library; a refactor that
breaks them breaks the README.  Only the fast ones run here (the
workload-heavy examples are exercised manually / by the bench harness);
each runs in a subprocess so import side effects stay isolated.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"

FAST_EXAMPLES = ["buffering_analysis.py", "quickstart.py",
                 "scenario_gallery.py"]


def _child_env() -> dict:
    """A subprocess environment whose ``PYTHONPATH`` carries ``src/``.

    pytest's own ``pythonpath`` config does not propagate to child
    interpreters, so without this the subprocess tests depended on the
    caller exporting ``PYTHONPATH=src`` (and silently skipped in any
    environment that didn't).  Injecting it here makes the example
    smoke tests run everywhere the suite runs.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (f"{SRC_DIR}{os.pathsep}{existing}"
                         if existing else str(SRC_DIR))
    return env


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=120,
        env=_child_env())
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} printed nothing"


def test_buffering_analysis_reproduces_paper_sentence():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "buffering_analysis.py")],
        capture_output=True, text=True, timeout=120,
        env=_child_env())
    assert "5.12GB" in result.stdout
    assert "5.12KB" in result.stdout


def test_all_examples_compile():
    """Every example must at least be syntactically valid."""
    for script in EXAMPLES_DIR.glob("*.py"):
        source = script.read_text()
        compile(source, str(script), "exec")
