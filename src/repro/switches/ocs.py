"""Optical Circuit Switch model.

The OCS is a crossbar of light paths: once configured with a (partial)
permutation it forwards at line rate with essentially zero added latency
(light in, light out — only propagation).  Its defining cost is the
**reconfiguration blackout**: "during the switching time ... no packets
can be sent through the switch and hence need to be buffered" (§2).

The switching time is the paper's central swept parameter — from
milliseconds (3D-MEMS, c-Through/Helios era) through microseconds
(Mordia-class) down to nanoseconds (the PLZT switch the paper cites).

Model contract
--------------

* :meth:`configure` starts a blackout of ``switching_time_ps``; the new
  circuits carry traffic only after it ends.  Packets arriving during a
  blackout, or at an input whose circuit does not lead to their
  destination, are *dark drops* — a real OCS would misdeliver or lose
  them.  The framework's processing logic is responsible for never
  letting that happen (that is exactly the synchronisation problem the
  paper describes); the drop counters exist to expose protocol bugs and
  to measure the cost of clock skew in E8.
* Transit delay through the configured crossbar is ``transit_ps``
  (pure propagation, default 10 ns).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.schedulers.matching import Matching
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.time import NANOSECONDS
from repro.sim.trace import Counter


class OpticalCircuitSwitch:
    """Circuit crossbar with reconfiguration blackout.

    Parameters
    ----------
    sim, n_ports:
        Simulator and port count.
    switching_time_ps:
        Blackout duration for every reconfiguration.
    transit_ps:
        Propagation through the device once circuits are up.
    output_sinks:
        ``output_sinks[j]`` receives packets leaving output j; the
        framework connects these to the egress downlinks.
    """

    def __init__(self, sim: Simulator, n_ports: int,
                 switching_time_ps: int,
                 transit_ps: int = 10 * NANOSECONDS,
                 output_sinks: Optional[
                     List[Callable[[Packet], None]]] = None) -> None:
        if n_ports < 2:
            raise ConfigurationError(f"OCS needs >= 2 ports, got {n_ports}")
        if switching_time_ps < 0:
            raise ConfigurationError("switching time must be >= 0")
        self.sim = sim
        self.n_ports = n_ports
        self.switching_time_ps = switching_time_ps
        self.transit_ps = transit_ps
        self._sinks = output_sinks or [_unconnected] * n_ports
        self._circuits = Matching.empty(n_ports)
        self._dark_until = 0
        self._pending: Optional[Matching] = None
        self.reconfigurations = 0
        self.forwarded = Counter("ocs.forwarded")
        self.dark_drops = Counter("ocs.dark_drops")
        self.misdirected_drops = Counter("ocs.misdirected_drops")
        #: Total picoseconds spent dark (for duty-cycle accounting).
        self.blackout_ps = 0

    def connect_output(self, port: int, sink: Callable[[Packet], None]) -> None:
        """Attach the consumer of output ``port``."""
        if self._sinks is None or len(self._sinks) != self.n_ports:
            self._sinks = [_unconnected] * self.n_ports
        self._sinks[port] = sink

    # -- control plane ----------------------------------------------------------

    def configure(self, matching: Matching) -> int:
        """Begin reconfiguring to ``matching``; returns ready time.

        The blackout starts immediately: circuits drop *now* and the new
        matching is live at ``now + switching_time_ps``.  Re-configuring
        while a previous blackout is still in progress restarts the
        blackout (the device can only slew to one target at a time).

        A zero switching time applies instantaneously — the idealised
        fast path of Figure 1.
        """
        if matching.n != self.n_ports:
            raise ConfigurationError(
                f"matching is {matching.n}-port, switch is {self.n_ports}")
        self.reconfigurations += 1
        if self.switching_time_ps == 0:
            self._circuits = matching
            return self.sim.now
        self.blackout_ps += max(
            0, self.sim.now + self.switching_time_ps - max(self.sim.now,
                                                           self._dark_until))
        self._dark_until = self.sim.now + self.switching_time_ps
        self._pending = matching
        ready_at = self._dark_until

        def commit() -> None:
            # A later configure() may have superseded this one.
            if self._pending is matching and self.sim.now >= self._dark_until:
                self._circuits = matching
                self._pending = None

        self.sim.at(ready_at, commit, label="ocs.commit")
        return ready_at

    @property
    def is_dark(self) -> bool:
        """True while a reconfiguration blackout is in progress."""
        return self.sim.now < self._dark_until

    @property
    def circuits(self) -> Matching:
        """The currently live matching (empty during first blackout)."""
        return self._circuits

    def circuit_for(self, input_port: int) -> Optional[int]:
        """Live output for ``input_port`` or None (dark or unmatched)."""
        if self.is_dark:
            return None
        return self._circuits.output_for(input_port)

    # -- data plane ------------------------------------------------------------------

    def receive(self, packet: Packet, input_port: Optional[int] = None) -> bool:
        """Accept a packet at an input port; returns True if forwarded.

        The packet rides the live circuit from ``input_port`` (default:
        ``packet.src``).  Dark switch → dark drop.  Circuit leading to a
        different output than ``packet.dst`` → misdirected drop.
        """
        port = packet.src if input_port is None else input_port
        if self.is_dark:
            self.dark_drops.add(1, packet.size)
            return False
        out = self._circuits.output_for(port)
        if out is None:
            self.dark_drops.add(1, packet.size)
            return False
        if out != packet.dst:
            self.misdirected_drops.add(1, packet.size)
            return False
        self.forwarded.add(1, packet.size)
        sink = self._sinks[out]
        packet.via = "ocs"
        self.sim.schedule(self.transit_ps, lambda: sink(packet),
                          label="ocs.transit")
        return True


def _unconnected(packet: Packet) -> None:
    raise ConfigurationError(
        f"OCS output for packet {packet.packet_id} is not connected")


__all__ = ["OpticalCircuitSwitch"]
