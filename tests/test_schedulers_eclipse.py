"""Tests for the Eclipse-style joint matching/duration scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.eclipse import EclipseScheduler
from repro.schedulers.solstice import SolsticeScheduler
from repro.sim.errors import SchedulingError
from repro.sim.time import GIGABIT, MICROSECONDS


@st.composite
def demand_matrices(draw, max_n=6):
    n = draw(st.integers(min_value=2, max_value=max_n))
    values = draw(st.lists(st.integers(0, 500_000),
                           min_size=n * n, max_size=n * n))
    demand = np.array(values, dtype=float).reshape(n, n)
    np.fill_diagonal(demand, 0.0)
    return demand


def _skewed(n=4, big=2_000_000.0, small=5_000.0):
    demand = np.full((n, n), small)
    np.fill_diagonal(demand, 0.0)
    for i in range(n):
        demand[i, (i + 1) % n] = big
    return demand


class TestEclipse:
    def test_serves_elephants_first(self):
        demand = _skewed()
        sched = EclipseScheduler(4, reconfig_ps=20 * MICROSECONDS,
                                 max_matchings=1)
        result = sched.compute(demand)
        matching = result.first
        # The single allowed matching must be the elephant permutation.
        for i in range(4):
            assert matching.output_for(i) == (i + 1) % 4

    def test_duration_scales_with_demand(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 125_000.0  # 100 us at 10G
        sched = EclipseScheduler(3, link_rate_bps=10 * GIGABIT,
                                 reconfig_ps=MICROSECONDS)
        result = sched.compute(demand)
        assert result.total_hold_ps >= 90 * MICROSECONDS

    def test_residue_complements_plan(self):
        demand = _skewed()
        sched = EclipseScheduler(4, reconfig_ps=20 * MICROSECONDS,
                                 max_matchings=2)
        result = sched.compute(demand)
        assert (result.eps_residue >= -1e-9).all()
        assert (result.eps_residue <= demand + 1e-9).all()

    def test_max_matchings_respected(self):
        rng = np.random.default_rng(3)
        demand = rng.exponential(100_000, (6, 6))
        np.fill_diagonal(demand, 0.0)
        sched = EclipseScheduler(6, reconfig_ps=MICROSECONDS,
                                 max_matchings=3)
        assert len(sched.compute(demand).matchings) <= 3

    def test_zero_demand(self):
        sched = EclipseScheduler(4)
        result = sched.compute(np.zeros((4, 4)))
        assert result.first.size == 0
        assert result.eps_residue.sum() == 0

    def test_higher_reconfig_cost_prefers_fewer_matchings(self):
        rng = np.random.default_rng(5)
        demand = rng.exponential(50_000, (6, 6))
        np.fill_diagonal(demand, 0.0)
        cheap = EclipseScheduler(6, reconfig_ps=0,
                                 max_matchings=16,
                                 min_value_fraction=0.1)
        costly = EclipseScheduler(6, reconfig_ps=500 * MICROSECONDS,
                                  max_matchings=16,
                                  min_value_fraction=0.1)
        n_cheap = len(cheap.compute(demand).matchings)
        n_costly = len(costly.compute(demand).matchings)
        assert n_costly <= n_cheap

    def test_covers_more_than_solstice_per_matching_budget(self):
        # Eclipse's per-step optimisation should never serve less than
        # Solstice for the same matching budget on skewed demand.
        demand = _skewed(n=6)
        budget = 2
        eclipse = EclipseScheduler(6, reconfig_ps=20 * MICROSECONDS,
                                   max_matchings=budget)
        solstice = SolsticeScheduler(6, reconfig_ps=20 * MICROSECONDS,
                                     max_matchings=budget)
        e_served = demand.sum() - eclipse.compute(demand).eps_residue.sum()
        s_served = demand.sum() - solstice.compute(demand).eps_residue.sum()
        assert e_served >= s_served - 1e-6

    def test_validation(self):
        with pytest.raises(SchedulingError):
            EclipseScheduler(4, link_rate_bps=0)
        with pytest.raises(SchedulingError):
            EclipseScheduler(4, max_matchings=0)
        with pytest.raises(SchedulingError):
            EclipseScheduler(4, min_value_fraction=1.0)
        with pytest.raises(SchedulingError):
            EclipseScheduler(4, max_candidate_durations=0)

    def test_registered(self):
        from repro.schedulers.registry import create_scheduler
        sched = create_scheduler("eclipse", n_ports=4,
                                 reconfig_ps=MICROSECONDS)
        assert isinstance(sched, EclipseScheduler)

    @given(demand_matrices())
    @settings(max_examples=20, deadline=None)
    def test_property_plan_is_valid(self, demand):
        sched = EclipseScheduler(demand.shape[0],
                                 reconfig_ps=10 * MICROSECONDS,
                                 max_matchings=4)
        result = sched.compute(demand)
        for matching, hold in result.matchings:
            assert hold >= 0
            for i, j in matching.pairs():
                assert demand[i, j] > 0
        assert (result.eps_residue >= -1e-9).all()
        assert (result.eps_residue <= demand + 1e-9).all()
