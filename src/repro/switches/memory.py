"""Shared buffer-memory accounting — the measurement behind Figure 1.

Figure 1's y-axis is "buffering memory requirement": how much SRAM/DRAM
a device (host or ToR) must provision to ride out scheduling blackouts
without loss.  :class:`BufferMemoryMeter` aggregates the live occupancy
of any set of queues and records the peak, which *is* the requirement
for a loss-free run.

It also answers the paper's qualitative question — does the requirement
fit in a ToR? — via :meth:`fits`, parameterised by a device memory
budget (commodity ToR ASICs of the paper's era shipped with ~12 MB of
packet buffer; hosts have effectively unbounded DRAM).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.trace import TimeSeries


class BufferMemoryMeter:
    """Aggregate live-occupancy meter over multiple queues.

    Components register with :meth:`attach`; each registered object must
    expose an ``on_change`` callback slot called with its new byte
    occupancy (both :class:`~repro.switches.buffers.PacketQueue` and
    host queues qualify via adapters).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._current: List[int] = []
        self.total_bytes = 0
        self.peak_bytes = 0
        self.series = TimeSeries(f"{name}.total_bytes")

    def attach(self, queue) -> None:
        """Track a PacketQueue (chains any existing on_change hook)."""
        index = len(self._current)
        self._current.append(queue.bytes)
        self.total_bytes += queue.bytes
        previous_hook = queue.on_change

        def hook(new_bytes: int, _index: int = index) -> None:
            self.total_bytes += new_bytes - self._current[_index]
            self._current[_index] = new_bytes
            if self.total_bytes > self.peak_bytes:
                self.peak_bytes = self.total_bytes
            self.series.record(queue.sim.now, self.total_bytes)
            if previous_hook is not None:
                previous_hook(new_bytes)

        queue.on_change = hook

    def attach_all(self, queues: Iterable) -> None:
        """Track every queue in ``queues``."""
        for queue in queues:
            self.attach(queue)

    def fits(self, budget_bytes: int) -> bool:
        """True when the observed peak fits a device with ``budget_bytes``."""
        return self.peak_bytes <= budget_bytes


#: Packet-buffer budget of a commodity ToR ASIC of the paper's era
#: (Broadcom Trident II class): ~12 MB shared SRAM.
TOR_SRAM_BUDGET_BYTES = 12 * 1024 * 1024

#: What a host can reasonably dedicate to staging: gigabytes of DRAM.
HOST_DRAM_BUDGET_BYTES = 16 * 1024 * 1024 * 1024

__all__ = ["BufferMemoryMeter", "TOR_SRAM_BUDGET_BYTES",
           "HOST_DRAM_BUDGET_BYTES"]
