"""Tests for the packet model."""

import pytest

from repro.net.packet import (
    ETHERNET_OVERHEAD_BYTES,
    Packet,
    reset_packet_ids,
    wire_size,
)


class TestWireSize:
    def test_adds_preamble_and_ifg(self):
        assert wire_size(1500) == 1500 + ETHERNET_OVERHEAD_BYTES

    def test_overhead_is_20(self):
        assert ETHERNET_OVERHEAD_BYTES == 20


class TestPacketValidation:
    def test_basic_construction(self):
        p = Packet(src=0, dst=1, size=64, created_ps=5)
        assert p.src == 0 and p.dst == 1 and p.size == 64

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, size=0, created_ps=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, size=-5, created_ps=0)

    def test_hairpin_rejected(self):
        with pytest.raises(ValueError, match="hairpin"):
            Packet(src=3, dst=3, size=64, created_ps=0)

    def test_ids_increase(self):
        reset_packet_ids()
        a = Packet(src=0, dst=1, size=64, created_ps=0)
        b = Packet(src=0, dst=1, size=64, created_ps=0)
        assert b.packet_id == a.packet_id + 1


class TestPacketTimestamps:
    def test_latency_none_until_delivered(self):
        p = Packet(src=0, dst=1, size=64, created_ps=100)
        assert p.latency_ps is None
        p.delivered_ps = 400
        assert p.latency_ps == 300

    def test_queueing_none_until_dequeued(self):
        p = Packet(src=0, dst=1, size=64, created_ps=0)
        assert p.queueing_ps is None
        p.enqueued_ps = 10
        assert p.queueing_ps is None
        p.dequeued_ps = 35
        assert p.queueing_ps == 25

    def test_via_defaults_to_none(self):
        p = Packet(src=0, dst=1, size=64, created_ps=0)
        assert p.via is None
