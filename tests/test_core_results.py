"""Tests for RunResult derived metrics."""

import pytest

from repro.core.results import RunResult
from repro.net.packet import Packet
from repro.sim.time import MILLISECONDS


def _result(**overrides):
    defaults = dict(duration_ps=1 * MILLISECONDS, n_ports=4,
                    port_rate_bps=10e9)
    defaults.update(overrides)
    return RunResult(**defaults)


def _delivered(via="ocs", size=1000, flow_id=0, delivered_ps=1000,
               created_ps=0):
    p = Packet(src=0, dst=1, size=size, created_ps=created_ps,
               flow_id=flow_id)
    p.delivered_ps = delivered_ps
    p.via = via
    return p


class TestRatios:
    def test_delivery_ratio(self):
        result = _result(offered_packets=10)
        result.delivered.extend(_delivered() for __ in range(7))
        assert result.delivery_ratio == pytest.approx(0.7)

    def test_delivery_ratio_nothing_offered(self):
        assert _result().delivery_ratio == 1.0

    def test_ocs_fraction(self):
        result = _result(ocs_bytes=750, eps_bytes=250)
        assert result.ocs_fraction == pytest.approx(0.75)

    def test_ocs_fraction_no_traffic(self):
        assert _result().ocs_fraction == 0.0


class TestRates:
    def test_goodput(self):
        # 1.25 MB over 1 ms = 10 Gbps.
        result = _result(delivered_bytes=1_250_000)
        assert result.goodput_bps() == pytest.approx(10e9)

    def test_utilisation_fraction_of_aggregate(self):
        result = _result(delivered_bytes=1_250_000)  # 10G of 40G
        assert result.utilisation() == pytest.approx(0.25)

    def test_offered_load(self):
        result = _result(offered_bytes=2_500_000)
        assert result.offered_load() == pytest.approx(0.5)


class TestFlows:
    def test_flow_packets_sorted_by_delivery(self):
        result = _result()
        result.delivered.append(_delivered(flow_id=5, delivered_ps=300))
        result.delivered.append(_delivered(flow_id=5, delivered_ps=100))
        result.delivered.append(_delivered(flow_id=6, delivered_ps=200))
        stream = result.flow_packets(5)
        assert [p.delivered_ps for p in stream] == [100, 300]

    def test_flow_jitter_periodic_stream(self):
        result = _result()
        for i in range(20):
            result.delivered.append(
                _delivered(flow_id=9, delivered_ps=i * 1000))
        assert result.flow_jitter_ps(9, period_ps=1000) == 0.0

    def test_latency_summary_integration(self):
        result = _result()
        result.delivered.append(_delivered(delivered_ps=500))
        summary = result.latency()
        assert summary.count == 1
        assert summary.mean_ps == 500


class TestDrops:
    def test_total_drops(self):
        result = _result(drops={"a": 2, "b": 3})
        assert result.total_drops == 5

    def test_no_drops(self):
        assert _result().total_drops == 0
