"""Tests for named random streams."""

from repro.sim.random import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_63_bits(self):
        for name in ("x", "y", "a-long-stream-name"):
            assert 0 <= derive_seed(123, name) < 2 ** 63


class TestRandomStreams:
    def test_stream_caching(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        first = RandomStreams(5)
        _ = first.stream("noise").random()
        a_after_noise = first.stream("signal").random()

        second = RandomStreams(5)
        a_direct = second.stream("signal").random()
        assert a_after_noise == a_direct

    def test_numpy_stream_caching(self):
        streams = RandomStreams(0)
        assert streams.numpy_stream("a") is streams.numpy_stream("a")

    def test_numpy_and_python_streams_disjoint(self):
        streams = RandomStreams(0)
        py = streams.stream("s").random()
        np_draw = float(streams.numpy_stream("s").random())
        # Not a strict requirement that they differ, but the draws must
        # not be coupled: drawing one must not advance the other.
        py2 = streams.stream("s").random()
        streams2 = RandomStreams(0)
        streams2.stream("s").random()
        assert streams2.stream("s").random() == py2
        assert 0.0 <= np_draw < 1.0

    def test_master_seed_changes_everything(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b
