"""A control-plane message channel with delay and loss.

The integrated (on-chip) design of Figure 2 exchanges requests and
grants over wires priced by the hardware timing model.  An SDN-style
deployment moves those messages onto a network: they gain latency,
jitter and a loss probability.  :class:`ControlChannel` models exactly
that, so the same scheduling logic can be evaluated under out-of-band
control.

Messages are opaque to the channel; it only decides *when* (and
*whether*) the receiver's callback fires.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.trace import Counter


class ControlChannel:
    """Unidirectional delayed/lossy message pipe.

    Parameters
    ----------
    sim:
        Simulator.
    name:
        Trace name.
    latency_ps:
        Fixed one-way delay.
    jitter_ps:
        Uniform extra delay in ``[0, jitter_ps]`` per message.
    loss_rate:
        Probability a message silently disappears.
    rng:
        Randomness for jitter/loss draws.
    """

    def __init__(self, sim: Simulator, name: str, latency_ps: int,
                 jitter_ps: int = 0, loss_rate: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        if latency_ps < 0 or jitter_ps < 0:
            raise ConfigurationError(
                f"channel {name}: delays must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(
                f"channel {name}: loss_rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.latency_ps = latency_ps
        self.jitter_ps = jitter_ps
        self.loss_rate = loss_rate
        self.rng = rng or random.Random(0)
        self.sent = Counter(f"{name}.sent")
        self.lost = Counter(f"{name}.lost")
        self._event_label = f"ctrl:{name}"

    def send(self, message: Any,
             deliver: Callable[[Any], None]) -> Optional[int]:
        """Send ``message``; returns delivery time or None if lost."""
        self.sent.add(1)
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.lost.add(1)
            return None
        delay = self.latency_ps
        if self.jitter_ps:
            delay += self.rng.randrange(self.jitter_ps + 1)
        self.sim.schedule(delay, lambda: deliver(message),
                          label=self._event_label)
        return self.sim.now + delay


__all__ = ["ControlChannel"]
