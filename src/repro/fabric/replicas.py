"""Replica-batched cell-fabric kernel: R seeds in one set of numpy ops.

A sweep point is *many replicas* of the same fabric configuration —
same scheduler, same rate matrix, different arrival seeds.  Running
them one at a time through :class:`~repro.fabric.cellsim.CellFabricSim`
pays the per-slot numpy-call overhead ``R`` times; this module stacks
all replicas into ``(R, n, n)`` state (VOQ counts, ring-buffer FIFOs)
and advances every replica with **one** set of array ops per slot —
plus, for iSLIP, one cross-replica batched scheduling pass (see
:mod:`repro.schedulers.batch`).

Bit-identity is the contract, exactly as for the solo vector engine:

* replica ``r`` draws its arrivals from its **own** generator seeded
  ``seeds[r]``, in whole-chunk blocks — numpy fills any chunk shape
  from the same bit stream, so the draw sequence matches a solo run of
  the same seed even though the batch kernel chunks differently;
* per-replica scheduler state evolves exactly as solo (the batched
  iSLIP driver is fuzz-proven identical; everything else goes through
  its own ``compute_trusted``);
* service and delay bookkeeping are elementwise per (replica, pair).

``run_replicas`` therefore returns the *same* ``FabricStats`` list as
``run_replicas_sequential`` on the same inputs — the golden tests in
``tests/test_fabric_replicas.py`` hold it to that, field for field,
against both the solo vector engine and the scalar reference engine.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.fabric.cellsim import (
    _CHUNK_BYTES,
    _CHUNK_SLOTS,
    _RING_START,
    CellFabricSim,
    FabricStats,
)
from repro.schedulers.base import Scheduler
from repro.schedulers.batch import make_replica_matcher
from repro.sim.errors import ConfigurationError

#: A factory producing one *fresh* scheduler per replica.
SchedulerFactory = Callable[[], Scheduler]


def run_replicas_sequential(
    scheduler_factory: SchedulerFactory,
    rates: np.ndarray,
    seeds: Sequence[int],
    slots: int,
    warmup: int = 0,
    engine: str = "vector",
) -> List[FabricStats]:
    """The per-replica path: one solo fabric run per seed, in order.

    This is the executable specification ``run_replicas`` is measured
    against (and the ``.sequential`` side of the sweep benches).
    """
    return [
        CellFabricSim(scheduler_factory(), rates, seed=seed,
                      engine=engine).run(slots, warmup=warmup)
        for seed in seeds
    ]


def run_replicas(
    scheduler_factory: SchedulerFactory,
    rates: np.ndarray,
    seeds: Sequence[int],
    slots: int,
    warmup: int = 0,
) -> List[FabricStats]:
    """Simulate every seed at once over stacked ``(R, n, n)`` state.

    Parameters mirror :class:`CellFabricSim` plus the replica axis:
    ``scheduler_factory`` is called once per replica (schedulers are
    stateful — each replica owns an instance), ``seeds[r]`` seeds
    replica ``r``'s arrival stream.  Returns one
    :class:`~repro.fabric.cellsim.FabricStats` per seed, in seed
    order, bit-identical to :func:`run_replicas_sequential`.
    """
    if not seeds:
        return []
    if slots < 1 or warmup < 0:
        raise ConfigurationError("slots >= 1, warmup >= 0 required")
    schedulers = [scheduler_factory() for __ in seeds]
    n = schedulers[0].n_ports
    rates = np.asarray(rates, dtype=np.float64)
    if rates.shape != (n, n):
        raise ConfigurationError(
            f"rates shape {rates.shape} != scheduler ports ({n},{n})")
    if (rates < 0).any() or (rates > 1).any():
        raise ConfigurationError("rates must be probabilities in [0,1]")
    if np.diagonal(rates).any():
        raise ConfigurationError("rates must have a zero diagonal")
    total = warmup + slots
    if total >= np.iinfo(np.int32).max:
        raise ConfigurationError(
            "replica-batched state is int32; warmup + slots must stay "
            f"below {np.iinfo(np.int32).max}")
    matcher = make_replica_matcher(schedulers)
    replicas = len(schedulers)
    rngs = [np.random.default_rng(seed) for seed in seeds]

    # Stacked per-VOQ state, int32 (cell counts and slot numbers both
    # fit comfortably): half the memory traffic of the solo engine's
    # int64 state, which matters once R replicas share the bandwidth.
    # All hot fancy indexing goes through flattened views with one
    # precomputed flat index per touched VOQ — 1-D gathers/scatters
    # beat the equivalent (rep, src, dst) triple indexing.
    counts = np.zeros((replicas, n, n), dtype=np.int32)
    counts_flat = counts.reshape(-1)
    ring_flat = np.zeros(replicas * n * n * _RING_START, dtype=np.int32)
    head_flat = np.zeros(replicas * n * n, dtype=np.int32)
    size_flat = np.zeros(replicas * n * n, dtype=np.int32)
    capacity = _RING_START
    ring_mask = capacity - 1

    def grow_ring(needed: int) -> None:
        nonlocal ring_flat, capacity, ring_mask
        new_capacity = capacity
        while new_capacity < needed:
            new_capacity *= 2
        ring = ring_flat.reshape(replicas * n * n, capacity)
        gather = (head_flat[:, None]
                  + np.arange(capacity, dtype=np.int32)[None, :]) % capacity
        unrolled = np.take_along_axis(ring, gather, axis=1)
        grown = np.zeros((replicas * n * n, new_capacity), dtype=np.int32)
        grown[:, :capacity] = unrolled
        ring_flat = grown.reshape(-1)
        head_flat[:] = 0
        capacity = new_capacity
        ring_mask = capacity - 1

    chunk = max(1, min(total, _CHUNK_BYTES // (8 * n * n * replicas),
                       _CHUNK_SLOTS))
    arrivals = np.zeros(replicas, dtype=np.int64)
    departures = np.zeros(replicas, dtype=np.int64)
    delay_total = np.zeros(replicas, dtype=np.int64)
    backlog = np.zeros(replicas, dtype=np.int64)
    peak_backlog = np.zeros(replicas, dtype=np.int64)
    # When the matcher consumes packed occupancy words, maintain them
    # incrementally (set a bit per arrival, clear it when a VOQ drains)
    # instead of re-deriving all R·n² occupancy bits every slot.
    packed = matcher.packed_occupancy
    if packed:
        words = np.zeros((replicas, n), dtype=np.uint64)
        words_flat = words.reshape(-1)
        one = np.uint64(1)
        compute = matcher.compute_from_words  # type: ignore[attr-defined]
    else:
        compute = matcher.compute
    nonzero = np.nonzero
    bincount = np.bincount
    draw = np.empty((chunk, replicas, n, n), dtype=bool)
    slot = 0
    while slot < total:
        span = min(chunk, total - slot)
        # One RNG call per replica per chunk, drawn from each replica's
        # own stream — bit-identical to that replica's solo run (numpy
        # fills any chunk shape from the same bit stream).
        for replica, rng in enumerate(rngs):
            np.less(rng.random((span, n, n)), rates,
                    out=draw[:span, replica])
        slot_idx, rep_idx, src_idx, dst_idx = nonzero(draw[:span])
        # Flat VOQ index of every arrival in the chunk, computed once.
        pair_idx = (rep_idx * n + src_idx) * n + dst_idx
        bounds = np.searchsorted(slot_idx, np.arange(span + 1)).tolist()
        for k in range(span):
            measuring = slot >= warmup
            lo = bounds[k]
            hi = bounds[k + 1]
            if hi > lo:
                pair = pair_idx[lo:hi]
                queued = size_flat[pair]
                if int(queued.max()) >= capacity:
                    grow_ring(capacity + 1)
                    queued = size_flat[pair]
                # At most one arrival per (replica, pair) per slot, so
                # plain fancy-indexed increments cannot collide.
                counts_flat[pair] += 1
                ring_flat[pair * capacity
                          + ((head_flat[pair] + queued) & ring_mask)] = slot
                size_flat[pair] += 1
                if packed:
                    np.bitwise_or.at(
                        words_flat,
                        rep_idx[lo:hi] * n + dst_idx[lo:hi],
                        one << src_idx[lo:hi].astype(np.uint64))
                arrived_per_rep = bincount(rep_idx[lo:hi],
                                           minlength=replicas)
                backlog += arrived_per_rep
                if measuring:
                    arrivals += arrived_per_rep
            # One scheduling decision per replica (batched where the
            # scheduler type supports it).
            out_of = compute(words if packed else counts)
            m_rep, m_in = nonzero(out_of >= 0)
            if m_rep.size:
                m_out = out_of[m_rep, m_in]
                m_pair = (m_rep * n + m_in) * n + m_out
                backlogged = counts_flat[m_pair] >= 1
                s_pair = m_pair[backlogged]
                if s_pair.size:
                    s_rep = m_rep[backlogged]
                    counts_flat[s_pair] -= 1
                    at = head_flat[s_pair]
                    arrived = ring_flat[s_pair * capacity + at]
                    head_flat[s_pair] = (at + 1) & ring_mask
                    size_flat[s_pair] -= 1
                    if packed:
                        drained = counts_flat[s_pair] == 0
                        if drained.any():
                            s_in = m_in[backlogged][drained]
                            s_out = m_out[backlogged][drained]
                            np.bitwise_and.at(
                                words_flat,
                                s_rep[drained] * n + s_out,
                                ~(one << s_in.astype(np.uint64)))
                    served_per_rep = bincount(s_rep, minlength=replicas)
                    backlog -= served_per_rep
                    if measuring:
                        departures += served_per_rep
                        arrived_sum = np.zeros(replicas, dtype=np.int64)
                        np.add.at(arrived_sum, s_rep, arrived)
                        delay_total += served_per_rep * slot - arrived_sum
            if measuring:
                np.maximum(peak_backlog, backlog, out=peak_backlog)
            slot += 1
    matcher.sync()
    final_backlog = counts.sum(axis=(1, 2))
    return [
        FabricStats(
            slots=slots,
            n_ports=n,
            arrivals=int(arrivals[r]),
            departures=int(departures[r]),
            mean_delay_slots=(int(delay_total[r]) / int(departures[r])
                              if departures[r] else 0.0),
            throughput=int(departures[r]) / (slots * n),
            offered=int(arrivals[r]) / (slots * n),
            backlog_cells=int(final_backlog[r]),
            peak_backlog_cells=int(peak_backlog[r]),
        )
        for r in range(replicas)
    ]


__all__ = ["run_replicas", "run_replicas_sequential", "SchedulerFactory"]
