"""Bench E3 — utilisation vs scheduling period (+ grant-ordering
ablation)."""

from conftest import run_and_report

from repro.experiments.e3_utilization import run_e3


def test_bench_e3_utilisation(benchmark):
    report = run_and_report(benchmark, run_e3)
    utils = report.data["utilisation"]
    assert utils[0] > utils[-1]          # slow schedulers waste capacity
    ablation = report.data["ablation"]
    assert ablation["optimistic"]["drops"] > ablation["ordered"]["drops"]
