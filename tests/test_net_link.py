"""Tests for the link model's timing exactness."""

import pytest

from repro.net.link import Link
from repro.net.packet import Packet, wire_size
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, NANOSECONDS


def _packet(size=1500):
    return Packet(src=0, dst=1, size=size, created_ps=0)


class TestLinkBasics:
    def test_requires_positive_rate(self, sim):
        with pytest.raises(ConfigurationError):
            Link(sim, "l", 0)

    def test_requires_non_negative_propagation(self, sim):
        with pytest.raises(ConfigurationError):
            Link(sim, "l", 1e9, propagation_ps=-1)

    def test_send_without_sink_errors(self, sim):
        link = Link(sim, "l", 10 * GIGABIT)
        with pytest.raises(ConfigurationError, match="no sink"):
            link.send(_packet())


class TestLinkTiming:
    def test_serialisation_plus_propagation(self, sim):
        received = []
        link = Link(sim, "l", 10 * GIGABIT, propagation_ps=50 * NANOSECONDS,
                    sink=lambda p: received.append(sim.now))
        arrival = link.send(_packet(1500))
        # wire_size(1500) = 1520B at 10G = 1216 ns + 50 ns propagation.
        expected = wire_size(1500) * 8 * 100 + 50 * NANOSECONDS
        assert arrival == expected
        sim.run()
        assert received == [expected]

    def test_fifo_serialisation_never_overlaps(self, sim):
        received = []
        link = Link(sim, "l", 10 * GIGABIT,
                    sink=lambda p: received.append((p.packet_id, sim.now)))
        p1, p2 = _packet(1500), _packet(1500)
        t1 = link.send(p1)
        t2 = link.send(p2)
        tx = wire_size(1500) * 8 * 100
        assert t1 == tx
        assert t2 == 2 * tx  # second starts only when the first ends
        sim.run()
        assert [pid for pid, __ in received] == [p1.packet_id, p2.packet_id]

    def test_idle_gap_resets_serialisation_start(self, sim):
        link = Link(sim, "l", 10 * GIGABIT, sink=lambda p: None)
        tx = wire_size(100) * 8 * 100
        link.send(_packet(100))
        sim.run()
        # Now idle; a later send starts at 'now', not at old free_at.
        start = sim.now + 10_000
        sim.at(start, lambda: None)
        sim.run()
        arrival = link.send(_packet(100))
        assert arrival == start + tx

    def test_free_at_tracks_busy_wire(self, sim):
        link = Link(sim, "l", 10 * GIGABIT, sink=lambda p: None)
        assert link.free_at == 0
        link.send(_packet(1500))
        assert link.free_at == wire_size(1500) * 8 * 100


class TestLinkAccounting:
    def test_delivered_counter(self, sim):
        link = Link(sim, "l", 10 * GIGABIT, sink=lambda p: None)
        link.send(_packet(1000))
        link.send(_packet(500))
        sim.run()
        assert link.delivered.count == 2
        assert link.delivered.bytes == 1500

    def test_utilisation_full_when_back_to_back(self, sim):
        link = Link(sim, "l", 10 * GIGABIT, sink=lambda p: None)
        for __ in range(10):
            link.send(_packet(1500))
        sim.run()
        assert link.utilisation() == pytest.approx(1.0)

    def test_utilisation_empty_window(self, sim):
        link = Link(sim, "l", 10 * GIGABIT, sink=lambda p: None)
        assert link.utilisation() == 0.0

    def test_connect_replaces_sink(self, sim):
        first, second = [], []
        link = Link(sim, "l", 10 * GIGABIT, sink=lambda p: first.append(p))
        link.connect(lambda p: second.append(p))
        link.send(_packet())
        sim.run()
        assert not first and len(second) == 1
