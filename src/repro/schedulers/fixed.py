"""Fixed / TDMA schedulers — the demand-oblivious baseline.

A round-robin TDMA scheduler rotates through the ``n-1`` cyclic-shift
permutations, giving every (input, output) pair an equal share of the
fabric regardless of demand.  It is the simplest thing an FPGA can do
(a counter and an adder), needs no demand estimation at all, and is the
natural floor for every comparison: any demand-aware scheduler must
beat TDMA on skewed traffic to justify its cost.

Under *uniform* traffic TDMA is optimal (it is the unique schedule that
serves a uniform doubly-stochastic demand with zero waste), which E5
demonstrates.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class RoundRobinTdma(Scheduler):
    """Rotate through cyclic-shift permutations (shifts 1..n-1).

    Shift 0 (the identity) is skipped because self-traffic does not
    exist.  ``slot_hold_ps`` is attached to each emitted matching so
    circuit-mode frameworks can run TDMA frames directly.

    Parameters
    ----------
    n_ports:
        Port count.
    slot_hold_ps:
        Hold time to attach to each matching (0 = one cell slot).
    frame_mode:
        When True, :meth:`compute` returns the *whole frame* (all n-1
        shifts) as one plan; when False it returns the next single shift
        and advances an internal pointer.
    """

    name = "tdma"

    def __init__(self, n_ports: int, slot_hold_ps: int = 0,
                 frame_mode: bool = False) -> None:
        super().__init__(n_ports)
        self.slot_hold_ps = slot_hold_ps
        self.frame_mode = frame_mode
        self._next_shift = 1

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        """Demand is validated but otherwise ignored (TDMA is oblivious)."""
        self._check_demand(demand)
        if self.frame_mode:
            plan: List[Tuple[Matching, int]] = [
                (Matching.cyclic_shift(self.n_ports, shift),
                 self.slot_hold_ps)
                for shift in range(1, self.n_ports)
            ]
            self.last_stats = {"iterations": 1, "matchings": len(plan)}
            return ScheduleResult(matchings=plan)
        matching = Matching.cyclic_shift(self.n_ports, self._next_shift)
        self._next_shift += 1
        if self._next_shift >= self.n_ports:
            self._next_shift = 1
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(matching, self.slot_hold_ps)])


class FixedSequence(Scheduler):
    """Cycle through a user-supplied list of matchings.

    Lets experiments drive the framework with hand-crafted or
    precomputed (e.g. offline-optimal) schedules.
    """

    name = "fixed-sequence"

    def __init__(self, n_ports: int,
                 sequence: List[Matching],
                 slot_hold_ps: int = 0) -> None:
        super().__init__(n_ports)
        if not sequence:
            raise ValueError("FixedSequence needs at least one matching")
        for matching in sequence:
            if matching.n != n_ports:
                raise ValueError(
                    f"matching has {matching.n} ports, expected {n_ports}")
        self.sequence = list(sequence)
        self.slot_hold_ps = slot_hold_ps
        self._index = 0

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        self._check_demand(demand)
        matching = self.sequence[self._index]
        self._index = (self._index + 1) % len(self.sequence)
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(matching, self.slot_hold_ps)])


__all__ = ["RoundRobinTdma", "FixedSequence"]
