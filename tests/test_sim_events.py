"""Tests for Event / EventQueue determinism."""

import pytest

from repro.sim.errors import SimulationError
from repro.sim.events import Event, EventQueue


def _noop():
    pass


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        q.push(Event(30, _noop))
        q.push(Event(10, _noop))
        q.push(Event(20, _noop))
        assert [q.pop().time for _ in range(3)] == [10, 20, 30]

    def test_fifo_within_same_timestamp(self):
        q = EventQueue()
        order = []
        for tag in "abc":
            q.push(Event(5, _noop, label=tag))
        while len(q):
            order.append(q.pop().label)
        assert order == ["a", "b", "c"]

    def test_len_counts_live_events(self):
        q = EventQueue()
        e1 = Event(1, _noop)
        e2 = Event(2, _noop)
        q.push(e1)
        q.push(e2)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        e1 = Event(1, _noop, label="cancelled")
        e2 = Event(2, _noop, label="live")
        q.push(e1)
        q.push(e2)
        q.cancel(e1)
        assert q.pop().label == "live"

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        event = Event(1, _noop)
        q.push(event)
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time_none_when_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = Event(1, _noop)
        q.push(e1)
        q.push(Event(9, _noop))
        q.cancel(e1)
        assert q.peek_time() == 9

    def test_clear(self):
        q = EventQueue()
        q.push(Event(1, _noop))
        q.clear()
        assert len(q) == 0
        assert q.peek_time() is None

    def test_many_events_sorted(self):
        q = EventQueue()
        import random
        rng = random.Random(3)
        times = [rng.randrange(10_000) for _ in range(500)]
        for t in times:
            q.push(Event(t, _noop))
        popped = [q.pop().time for _ in range(500)]
        assert popped == sorted(times)

    def test_event_has_no_dict(self):
        # slots=True: per-event __dict__ allocation is the cost the fast
        # path removes; this pins the optimisation.
        assert not hasattr(Event(1, _noop), "__dict__")

    def test_live_count_under_interleaved_cancel_and_peek(self):
        # Regression: peek_time() compacts cancelled events off the
        # heap; interleaving queue.cancel() with peeks (in any order)
        # must keep len() consistent.
        q = EventQueue()
        events = [Event(t, _noop) for t in range(6)]
        for event in events:
            q.push(event)
        q.cancel(events[0])
        assert len(q) == 5
        assert q.peek_time() == 1  # compacts events[0] off the heap
        assert len(q) == 5
        q.cancel(events[0])  # idempotent after compaction
        assert len(q) == 5
        q.cancel(events[1])
        q.cancel(events[2])
        assert q.peek_time() == 3
        assert len(q) == 3
        # Every remaining event pops; the count reaches exactly zero.
        assert [q.pop().time for _ in range(3)] == [3, 4, 5]
        assert len(q) == 0

    def test_live_count_reconciles_direct_event_cancel(self):
        # Event.cancel() is public API; cancelling behind the queue's
        # back must be reconciled into len() as soon as the queue
        # touches the event (peek compaction, pop skip, or a later
        # queue.cancel).
        q = EventQueue()
        events = [Event(t, _noop) for t in range(4)]
        for event in events:
            q.push(event)
        events[0].cancel()          # bypasses queue.cancel
        assert q.peek_time() == 1   # compaction reconciles the count
        assert len(q) == 3
        events[1].cancel()
        q.cancel(events[1])         # explicit cancel after direct cancel
        assert len(q) == 2
        assert q.peek_time() == 2
        assert len(q) == 2
        events[2].cancel()          # reconciled by the pop-skip path
        assert q.pop().time == 3
        assert len(q) == 0
        # A drain loop driven by len() terminates cleanly.
        while len(q):
            q.pop()

    def test_cancel_after_pop_does_not_double_discount(self):
        # Regression: cancelling an event that already fired (stale
        # timer cleanup via Simulator.cancel) must not subtract it from
        # the live count a second time.
        q = EventQueue()
        fired = Event(1, _noop)
        pending = Event(2, _noop)
        q.push(fired)
        q.push(pending)
        assert q.pop() is fired
        q.cancel(fired)  # idempotent no-op: the event already left
        assert len(q) == 1
        assert q.pop() is pending
        assert len(q) == 0

    def test_cancel_after_clear_does_not_drift(self):
        q = EventQueue()
        event = Event(1, _noop)
        q.push(event)
        q.clear()
        q.cancel(event)
        assert len(q) == 0
        q.push(Event(2, _noop))
        assert len(q) == 1


class TestPopReady:
    def test_batch_pops_whole_timestamp_in_order(self):
        q = EventQueue()
        events = [Event(5, _noop) for __ in range(4)]
        later = Event(6, _noop)
        for event in events:
            q.push(event)
        q.push(later)
        batch = q.pop_ready(5)
        assert batch == events          # push order == firing order
        assert len(q) == 1
        assert q.peek_time() == 6

    def test_batch_skips_and_reconciles_cancelled(self):
        q = EventQueue()
        events = [Event(1, _noop) for __ in range(3)]
        for event in events:
            q.push(event)
        events[1].cancel()              # behind the queue's back
        batch = q.pop_ready(1)
        assert batch == [events[0], events[2]]
        assert len(q) == 0

    def test_requeue_restores_order_and_count(self):
        q = EventQueue()
        first = Event(3, _noop)
        second = Event(3, _noop)
        q.push(first)
        q.push(second)
        batch = q.pop_ready(3)
        assert len(q) == 0
        # A callback schedules a third event at the same instant...
        third = Event(3, _noop)
        q.push(third)
        # ...then the rest of the batch is handed back: it must fire
        # *before* the newly scheduled event.
        q.requeue(batch[1:])
        assert len(q) == 2
        assert q.pop() is second
        assert q.pop() is third

    def test_requeue_drops_events_cancelled_while_popped(self):
        q = EventQueue()
        event = Event(1, _noop)
        q.push(event)
        (popped,) = q.pop_ready(1)
        popped.cancel()                 # cancelled mid-batch
        q.requeue([popped])
        assert len(q) == 0
        assert q.peek_time() is None

    def test_cancel_of_popped_event_does_not_drift_count(self):
        # Live-count regression under cancel interleavings: cancelling
        # a batch-popped (already accounted) event via the queue must
        # not subtract it a second time.
        q = EventQueue()
        a = Event(1, _noop)
        b = Event(2, _noop)
        q.push(a)
        q.push(b)
        (popped,) = q.pop_ready(1)
        assert popped is a
        q.cancel(a)
        assert len(q) == 1
        # And a requeue of the cancelled event is a no-op.
        q.requeue([a])
        assert len(q) == 1
        assert q.pop() is b
        assert len(q) == 0

    def test_requeued_event_pops_live_again(self):
        q = EventQueue()
        event = Event(4, _noop)
        q.push(event)
        batch = q.pop_ready(4)
        q.requeue(batch)
        assert len(q) == 1
        assert q.pop() is event
        assert len(q) == 0
