"""Online protocol auditing for the hybrid switch.

A testbed catches protocol bugs because misbehaviour has physical
consequences; a simulator can silently tolerate them.  The auditor
closes that gap: it attaches to a framework *before* ``run()`` and
checks the Figure 2 control protocol as it executes:

* **configure-before-grant** — every grant window must open at or after
  the OCS-ready time of the configuration it rides on (§3's explicit
  ordering).  Violations are expected exactly when the
  ``optimistic_grant`` ablation is on.
* **no dark injection** — the OCS must never be asked to carry a packet
  while reconfiguring (a dark drop is a protocol failure of the
  granting side, not of the OCS).
* **grant sanity** — grant durations are positive and matchings match
  the switch radix (structural validity is already enforced by
  :class:`~repro.schedulers.matching.Matching`; the auditor checks the
  dynamic parts).
* **conservation** — at collection time, offered = delivered + dropped
  + still-queued must balance.

Violations are recorded, not raised (an experiment may *want* to count
them — that is what E3's ablation does); ``assert_clean()`` turns them
into a hard failure for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.sim.errors import ReproError
from repro.sim.time import format_time

if TYPE_CHECKING:  # typing-only: keeps repro.core importable bottom-up
    from repro.core.framework import HybridSwitchFramework


class AuditError(ReproError):
    """Raised by :meth:`ProtocolAuditor.assert_clean` on violations."""


@dataclass(frozen=True)
class Violation:
    """One observed protocol violation."""

    time_ps: int
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[{format_time(self.time_ps)}] {self.rule}: {self.detail}"


class ProtocolAuditor:
    """Attach to a framework and watch the control protocol execute."""

    def __init__(self, framework: "HybridSwitchFramework") -> None:
        self.framework = framework
        self.sim = framework.sim
        self.violations: List[Violation] = []
        self.configures_seen = 0
        self.grants_seen = 0
        self.packets_seen = 0
        self._ocs_ready_at = 0
        self._install()

    # -- wiring -----------------------------------------------------------------

    def _install(self) -> None:
        # Audited runs need the fully observable path: per-packet
        # diagnostic counters on (conservation reads them) and the
        # batched fabric entry off (it would bypass the receive hook).
        self.framework.enable_observability()
        switching = self.framework.switching
        scheduling = self.framework.scheduling
        ocs = self.framework.ocs

        original_configure = switching.configure

        def audited_configure(config):
            self.configures_seen += 1
            ready = original_configure(config)
            self._ocs_ready_at = ready
            return ready

        switching.configure = audited_configure  # type: ignore[assignment]

        original_deliver = scheduling._deliver_grant

        def audited_deliver(grant):
            self.grants_seen += 1
            if grant.duration_ps <= 0:
                self._flag("grant-sanity",
                           f"non-positive duration {grant.duration_ps}")
            if grant.matching.n != switching.n_ports:
                self._flag("grant-sanity",
                           f"matching radix {grant.matching.n} != "
                           f"{switching.n_ports}")
            if grant.start_ps < self._ocs_ready_at:
                self._flag(
                    "configure-before-grant",
                    f"window opens at {format_time(grant.start_ps)} but "
                    f"OCS is ready at {format_time(self._ocs_ready_at)}")
            original_deliver(grant)

        scheduling._deliver_grant = audited_deliver  # type: ignore[assignment]

        original_receive = ocs.receive

        def audited_receive(packet, input_port=None):
            self.packets_seen += 1
            if ocs.is_dark:
                self._flag(
                    "no-dark-injection",
                    f"packet {packet.packet_id} offered during blackout")
            return original_receive(packet, input_port)

        # Overriding the instance attribute is enough: every data-plane
        # path reaches the OCS through ``switching.send_ocs`` or a sink
        # that resolves ``ocs.receive`` at call time, so instruments
        # installed before or after this one keep composing.
        ocs.receive = audited_receive  # type: ignore[assignment]

    # -- reporting ---------------------------------------------------------------

    def _flag(self, rule: str, detail: str) -> None:
        self.violations.append(Violation(self.sim.now, rule, detail))

    def check_conservation(self, result) -> None:
        """Post-run balance check (call with the RunResult).

        Exact accounting: every offered packet must be delivered,
        dropped, queued somewhere, or demonstrably in flight — on a
        link, inside the EPS (pipeline + output queues + drain), in the
        OCS transit stage, or serialising from a VOQ into the fabric.
        """
        fw = self.framework
        queued = (fw.processing.voqs.total_packets
                  + sum(len(q) for host in fw.hosts
                        for q in host._queues.values()))
        link_in_flight = sum(
            link.in_flight
            for link in fw.topology.uplinks + fw.topology.downlinks)
        # Inside the EPS: received but not yet pushed to its sink or
        # tail-dropped (covers pipeline, queues and the drain stage).
        eps = fw.eps
        eps_inside = (eps.received.count - eps.forwarded.count
                      - eps.drops_total())
        ocs = fw.ocs
        ocs_drops = ocs.dark_drops.count + ocs.misdirected_drops.count
        # Between VOQ dequeue and OCS arrival (fabric serialisation).
        draining = (fw.processing.to_ocs.count
                    - ocs.forwarded.count - ocs_drops)
        # Between fabric output and the downlink's accept (transit).
        downlink_accepted = sum(link.accepted.count
                                for link in fw.topology.downlinks)
        transit = (ocs.forwarded.count + eps.forwarded.count
                   - downlink_accepted)
        in_flight = (link_in_flight + eps_inside + draining + transit)
        accounted = (result.delivered_count + result.total_drops
                     + queued + in_flight)
        if accounted != result.offered_packets:
            self._flag(
                "conservation",
                f"offered={result.offered_packets} but accounted="
                f"{accounted} (delivered={result.delivered_count}, "
                f"drops={result.total_drops}, queued={queued}, "
                f"in_flight={in_flight})")

    def is_clean(self) -> bool:
        """True when no violations were observed."""
        return not self.violations

    def assert_clean(self) -> None:
        """Raise :class:`AuditError` listing any violations."""
        if self.violations:
            summary = "\n".join(str(v) for v in self.violations[:20])
            raise AuditError(
                f"{len(self.violations)} protocol violation(s):\n"
                f"{summary}")

    def report(self) -> str:
        """Human-readable audit summary."""
        status = ("CLEAN" if self.is_clean()
                  else f"{len(self.violations)} VIOLATIONS")
        return (f"audit: {status} — {self.configures_seen} configures, "
                f"{self.grants_seen} grants, {self.packets_seen} OCS "
                "packets")


__all__ = ["ProtocolAuditor", "Violation", "AuditError"]
