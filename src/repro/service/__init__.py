"""The always-on sweep service: ``repro serve`` and its clients.

Layering::

    protocol.py   length-prefixed JSON framing + addresses (shared)
    session.py    per-connection accounting and backpressure
    journal.py    write-ahead journal under the cache dir — crash
                  recovery for the daemon (``--resume`` replay)
    daemon.py     ReproDaemon — asyncio server owning the shared
                  ResultCache and the warm JobRunner/worker pool,
                  with in-flight cross-client dedup, a lease
                  scheduler over the local pool + registered remote
                  workers, persistent worker identity (reconnect
                  reclaims parked leases), fleet cache transport
                  (cache-lookup / cache-push) and graceful drain
    client.py     ServiceClient + execute_via_server (the CLI's
                  ``--server`` routing) with RetryPolicy backoff
    worker.py     ReproWorker — a remote node (``repro worker``)
                  that registers into the daemon's pool, executes
                  leased spec batches and uploads canonical reports;
                  survives flaps by buffering and reconnecting
    chaos.py      ChaosProxy — seeded fault injection between any
                  peer and the daemon (``repro chaos``), proving the
                  durability claims end to end
    standby.py    StandbyHub — a warm spare (``repro serve --standby
                  --follow ADDR``) mirroring the primary's journal
                  over the peer conversation and promoting itself on
                  primary loss
    supervisor.py Supervisor — the ``repro supervise`` control loop:
                  restart-with-budget, hung-hub detection and
                  queue-depth autoscaling over a hub + worker fleet

The daemon's contract mirrors the local runner's: a spec fully
determines its report, so routing a sweep through the service is
byte-identical to running it in process — the service only changes
*who pays* startup cost and *how often* a spec executes (at most once
fleet-wide, thanks to the shared cache plus in-flight coalescing).
The durability layer extends that contract across failures: daemon
death (journal replay), worker flaps (lease reclaim + cache-push) and
client drops (backoff + idempotent resubmit) all preserve it.  The
failover layer removes the last single point of failure: a standby
hub mirrors the journal live and takes over the fleet, multi-address
clients and workers rotate onto it, and the supervisor resurrects
whatever dies.
"""

from repro.service.chaos import ChaosConfig, ChaosProxy
from repro.service.client import (
    RetryPolicy,
    ServiceBusy,
    ServiceClient,
    ServiceError,
    execute_via_server,
)
from repro.service.daemon import DaemonStats, ReproDaemon, WorkerState
from repro.service.journal import ServiceJournal, journal_path
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    parse_address,
    parse_address_list,
)
from repro.service.standby import StandbyError, StandbyHub
from repro.service.supervisor import Supervisor, SupervisorError
from repro.service.worker import ReproWorker, WorkerError

__all__ = [
    "ReproDaemon",
    "DaemonStats",
    "WorkerState",
    "ReproWorker",
    "WorkerError",
    "ServiceClient",
    "ServiceError",
    "ServiceBusy",
    "RetryPolicy",
    "execute_via_server",
    "ServiceJournal",
    "journal_path",
    "ChaosProxy",
    "ChaosConfig",
    "StandbyHub",
    "StandbyError",
    "Supervisor",
    "SupervisorError",
    "ProtocolError",
    "parse_address",
    "parse_address_list",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
]
