"""The runner's job model: one experiment run, fully specified.

A :class:`RunSpec` is the unit of work the orchestrator plans, shards,
executes and caches: *experiment id × scheduler × config overrides ×
seed*.  Because the experiment entry points are pure (see
``repro.experiments.base``), a spec fully determines its report — which
is what makes the spec's content hash a valid cache key and makes
parallel execution bit-identical to sequential.

Two job families share the model: the paper experiments (``e1``..``e8``)
and declarative scenarios (``scenario:<name>``, resolved against the
``repro.scenario`` registry).  Scenario jobs are specified by exactly
the same axes — overrides become dotted-path scenario edits — so
sweeps, caching and sharding work unchanged over either family.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.experiments.base import ExperimentConfig
from repro.sim.errors import ConfigurationError

#: Bump when the spec semantics change in a way that invalidates old
#: cached reports (the version participates in the content hash).
#: 2: scenario job family added; reports grew a ``warnings`` section.
SPEC_FORMAT = 2

#: Prefix marking a spec as a scenario job rather than an experiment.
SCENARIO_PREFIX = "scenario:"


def jsonable(value: Any) -> Any:
    """``value`` converted to plain JSON types, recursively.

    Tuples become lists and numpy scalars/arrays become Python numbers/
    lists, so report data and spec overrides serialize canonically.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    # Numpy scalars and arrays, without importing numpy here.
    if hasattr(value, "tolist"):
        return jsonable(value.tolist())
    if hasattr(value, "item"):
        return jsonable(value.item())
    raise TypeError(f"cannot canonicalise {type(value).__name__} "
                    f"for a RunSpec/report: {value!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON text (sorted keys, no whitespace drift)."""
    return json.dumps(jsonable(value), sort_keys=True,
                      separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one experiment run.

    Attributes
    ----------
    experiment_id:
        "e1".."e8" (anything in ``repro.experiments.ENTRY_POINTS``).
    quick:
        Reduced problem sizes.
    seed:
        Base seed handed to the experiment (``None`` = historical
        defaults; sweeps derive one per replica, see ``runner.plan``).
    scheduler:
        Registry-name override for the experiment's framework
        scheduler, where the experiment supports one.
    overrides:
        Experiment-specific knob overrides (``n_ports`` ...).  Values
        must be JSON-representable — they participate in the cache key.
    measure_wallclock:
        Opt back in to non-deterministic extras (e7's Python
        wall-clock series).  Off by default: such reports are not
        reproducible, so they only make sense for ad hoc inspection.
        The flag participates in the cache key, so wall-clock runs
        never pollute (or get served from) pure entries — but note a
        cached wall-clock report replays the *recorded* timings.
    """

    experiment_id: str
    quick: bool = False
    seed: Optional[int] = None
    scheduler: Optional[str] = None
    overrides: Mapping[str, Any] = field(default_factory=dict)
    measure_wallclock: bool = False

    @property
    def scenario_name(self) -> Optional[str]:
        """The scenario name for ``scenario:<name>`` jobs, else None."""
        if self.experiment_id.startswith(SCENARIO_PREFIX):
            return self.experiment_id[len(SCENARIO_PREFIX):]
        return None

    def validate(self) -> "RunSpec":
        """Raise :class:`ConfigurationError` on an unknown job id."""
        scenario_name = self.scenario_name
        if scenario_name is not None:
            from repro.scenario import get_scenario

            get_scenario(scenario_name)  # raises with the catalogue
            return self
        from repro.experiments import ENTRY_POINTS

        if self.experiment_id not in ENTRY_POINTS:
            raise ConfigurationError(
                f"unknown experiment {self.experiment_id!r}; "
                f"available: {sorted(ENTRY_POINTS)} or "
                f"'{SCENARIO_PREFIX}<name>'")
        return self

    def to_config(self) -> ExperimentConfig:
        """The :class:`ExperimentConfig` this spec denotes."""
        return ExperimentConfig(
            quick=self.quick,
            seed=self.seed,
            scheduler=self.scheduler,
            measure_wallclock=self.measure_wallclock,
            overrides=dict(self.overrides),
        )

    def canonical(self) -> Dict[str, Any]:
        """The spec as plain JSON types, including the format version."""
        return {
            "format": SPEC_FORMAT,
            "experiment_id": self.experiment_id,
            "quick": self.quick,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "overrides": jsonable(dict(self.overrides)),
            "measure_wallclock": self.measure_wallclock,
        }

    def key(self) -> str:
        """Content address: ``<experiment_id>-<sha256 prefix>``.

        Scenario ids contain a ``:``; keys are used as file names, so
        the separator is flattened to ``-``.
        """
        digest = hashlib.sha256(
            canonical_json(self.canonical()).encode("utf-8")).hexdigest()
        safe_id = self.experiment_id.replace(":", "-")
        return f"{safe_id}-{digest[:24]}"

    @classmethod
    def from_canonical(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`canonical` (cache files, manifests)."""
        return cls(
            experiment_id=payload["experiment_id"],
            quick=bool(payload["quick"]),
            seed=payload["seed"],
            scheduler=payload["scheduler"],
            overrides=dict(payload.get("overrides", {})),
            measure_wallclock=bool(
                payload.get("measure_wallclock", False)),
        )

    def describe(self) -> str:
        """Short human label (manifest rows, progress lines)."""
        parts = [self.experiment_id]
        if self.scheduler:
            parts.append(self.scheduler)
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        parts.extend(f"{k}={v}" for k, v in sorted(self.overrides.items()))
        if self.quick:
            parts.append("quick")
        return " ".join(parts)


__all__ = ["RunSpec", "SPEC_FORMAT", "SCENARIO_PREFIX", "jsonable",
           "canonical_json"]
