"""Parallel Iterative Matching (PIM).

Anderson et al.'s randomised three-phase matcher (request / grant /
accept), the ancestor of iSLIP and the canonical "easy in hardware"
crossbar scheduler:

1. **Request** — every unmatched input sends a request to every output
   it has demand for.
2. **Grant** — every unmatched output picks one requesting input
   uniformly at random.
3. **Accept** — every input that received grants accepts one uniformly
   at random.

Repeat for ``iterations`` rounds.  One round converges to ~63 % matched
under full uniform load (the classic 1 − 1/e result, which our E5 bench
confirms); O(log n) rounds approach a maximal matching.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class PimScheduler(Scheduler):
    """Randomised parallel iterative matching.

    Parameters
    ----------
    n_ports:
        Port count.
    iterations:
        Matching rounds per schedule (k in PIM-k).
    rng:
        Randomness source; pass a seeded ``random.Random`` for
        reproducibility (the framework provides a named stream).
    """

    name = "pim"

    def __init__(self, n_ports: int, iterations: int = 1,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(n_ports)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self.rng = rng or random.Random(0)

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        matched_out: Dict[int, int] = {}   # input -> output
        matched_in: Dict[int, int] = {}    # output -> input
        rounds_used = 0
        for _round in range(self.iterations):
            rounds_used += 1
            progress = False
            # Phase 1: requests from unmatched inputs to unmatched outputs.
            requests: Dict[int, List[int]] = {}
            for out in range(n):
                if out in matched_in:
                    continue
                requesters = [
                    inp for inp in range(n)
                    if inp not in matched_out and demand[inp, out] > 0
                ]
                if requesters:
                    requests[out] = requesters
            # Phase 2: each output grants one requester at random.
            grants: Dict[int, List[int]] = {}
            for out, requesters in requests.items():
                chosen = self.rng.choice(requesters)
                grants.setdefault(chosen, []).append(out)
            # Phase 3: each input accepts one grant at random.
            for inp, granted_outputs in grants.items():
                accepted = self.rng.choice(granted_outputs)
                matched_out[inp] = accepted
                matched_in[accepted] = inp
                progress = True
            if not progress:
                break
        out_of: List[Optional[int]] = [matched_out.get(i) for i in range(n)]
        self.last_stats = {"iterations": rounds_used, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])


__all__ = ["PimScheduler"]
