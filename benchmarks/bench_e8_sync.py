"""Bench E8 — sensitivity to host-switch clock skew."""

from conftest import run_and_report

from repro.experiments.e8_sync import run_e8


def test_bench_e8_sync_sensitivity(benchmark):
    report = run_and_report(benchmark, run_e8)
    slow = report.data["slow_delivery_ratio"]
    fast = report.data["fast_delivery_ratio"]
    assert slow[-1] < slow[0]                 # skew hurts slow mode
    assert max(fast) - min(fast) < 0.05       # fast mode indifferent
