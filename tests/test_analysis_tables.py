"""Tests for table rendering and sweeps."""

import pytest

from repro.analysis.sweep import sweep
from repro.analysis.tables import render_series, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["a", "bbb"], [["1", "2"], ["10", "20"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]
        # Right-justified columns: the widths line up.
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_title_prepended(self):
        text = render_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_wide_cells_stretch_column(self):
        text = render_table(["h"], [["wide-cell-content"]])
        assert "wide-cell-content" in text

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_pairs(self):
        text = render_series("x", "y", [1, 2], [10, 20])
        assert "10" in text and "20" in text


class TestSweep:
    def test_collects_pairs(self):
        assert sweep([1, 2, 3], lambda x: x * x) == \
            [(1, 1), (2, 4), (3, 9)]

    def test_failure_names_the_point(self):
        def boom(x):
            if x == 2:
                raise ValueError("inner")
            return x

        with pytest.raises(RuntimeError, match="point 2"):
            sweep([1, 2], boom)
