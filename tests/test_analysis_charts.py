"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import line_chart, sparkline
from repro.sim.errors import ConfigurationError


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▅█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_preserved(self):
        values = list(range(37))
        assert len(sparkline(values)) == 37

    def test_extremes_hit_extreme_glyphs(self):
        text = sparkline([0, 10, 5])
        assert text[0] == "▁"
        assert text[1] == "█"


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = line_chart([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]},
                          width=30, height=8)
        assert "*" in text and "o" in text
        assert "*=a" in text and "o=b" in text

    def test_axis_labels_present(self):
        text = line_chart([0, 10], {"s": [5, 6]},
                          x_label="load", y_label="delay",
                          width=20, height=5)
        assert "load" in text
        assert "delay" in text

    def test_title(self):
        text = line_chart([0, 1], {"s": [1, 2]}, title="My Chart",
                          width=20, height=5)
        assert text.splitlines()[0] == "My Chart"

    def test_log_scale(self):
        text = line_chart([1, 2, 3], {"s": [1, 100, 10_000]},
                          log_y=True, width=20, height=5)
        assert "1e+04" in text or "10000" in text or "1e4" in text.lower()

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"s": [0, 1]}, log_y=True)

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart([1], {"s": [1]}, width=2, height=2)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"s": [1]})

    def test_empty_axis(self):
        with pytest.raises(ConfigurationError):
            line_chart([], {})

    def test_flat_series_renders(self):
        text = line_chart([1, 2, 3], {"s": [7, 7, 7]},
                          width=20, height=5)
        assert "*" in text
