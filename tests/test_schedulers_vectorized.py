"""Vectorised schedulers vs their scalar reference implementations.

The vector rewrites of iSLIP, greedy-MWM and Solstice must be *drop-in
identical*: same matchings, same pointer evolution, same ``last_stats``
on every demand matrix — the scalar loops in
:mod:`repro.schedulers.reference` are the executable specification.
Also covers the ``compute_trusted`` contract and the trusted
:class:`Matching` constructor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.matching import Matching
from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler
from repro.schedulers.reference import (
    ReferenceGreedyMwmScheduler,
    ReferenceIslipScheduler,
    ReferenceSolsticeScheduler,
)
from repro.schedulers.solstice import SolsticeScheduler
from repro.sim.errors import SchedulingError
from repro.sim.time import MICROSECONDS


@st.composite
def demand_matrices(draw, max_n=10, max_value=50):
    n = draw(st.integers(min_value=2, max_value=max_n))
    cells = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                  st.integers(1, max_value)),
        max_size=n * n))
    demand = np.zeros((n, n))
    for src, dst, value in cells:
        demand[src, dst] = value  # diagonal allowed: algorithms must cope
    return demand


class TestIslipEquivalence:
    @given(demand_matrices())
    @settings(max_examples=60, deadline=None)
    def test_single_compute_identical(self, demand):
        n = demand.shape[0]
        scalar = ReferenceIslipScheduler(n, iterations=2)
        vector = IslipScheduler(n, iterations=2)
        a = scalar.compute(demand)
        b = vector.compute(demand)
        assert a.first == b.first
        assert scalar.grant_ptr == vector.grant_ptr
        assert scalar.accept_ptr == vector.accept_ptr
        assert scalar.last_stats == vector.last_stats

    @given(st.integers(2, 8), st.integers(1, 4), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_pointer_evolution_identical_over_sequences(self, n, iterations,
                                                        seed):
        # Pointers persist across calls; a whole demand *sequence* must
        # drive both implementations through identical states.
        rng = np.random.default_rng(seed)
        scalar = ReferenceIslipScheduler(n, iterations=iterations)
        vector = IslipScheduler(n, iterations=iterations)
        for __ in range(12):
            demand = rng.integers(0, 4, (n, n)).astype(float)
            a = scalar.compute(demand)
            b = vector.compute(demand)
            assert a.first == b.first
            assert scalar.grant_ptr == vector.grant_ptr
            assert scalar.accept_ptr == vector.accept_ptr

    def test_trusted_accepts_integer_demand(self):
        # The fabric hands over int64 VOQ counts; results must match
        # the float path exactly.
        demand = np.array([[0, 3, 1], [2, 0, 0], [0, 5, 0]])
        checked = IslipScheduler(3).compute(demand.astype(float))
        trusted = IslipScheduler(3).compute_trusted(demand)
        assert checked.first == trusted.first


class TestGreedyMwmEquivalence:
    @given(demand_matrices(max_n=12))
    @settings(max_examples=60, deadline=None)
    def test_identical_matching(self, demand):
        n = demand.shape[0]
        a = ReferenceGreedyMwmScheduler(n).compute(demand)
        b = GreedyMwmScheduler(n).compute(demand)
        assert a.first == b.first

    @given(st.integers(2, 10), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_heavy_ties_identical(self, n, seed):
        # Small integer weights force many equal-weight edges; the
        # (src, dst) tie-break must match the sequential loop exactly.
        rng = np.random.default_rng(seed)
        demand = rng.integers(0, 3, (n, n)).astype(float)
        np.fill_diagonal(demand, 0.0)
        a = ReferenceGreedyMwmScheduler(n).compute(demand)
        b = GreedyMwmScheduler(n).compute(demand)
        assert a.first == b.first

    def test_trusted_integer_demand(self):
        demand = np.array([[0, 7, 7], [7, 0, 7], [7, 7, 0]])
        checked = GreedyMwmScheduler(3).compute(demand.astype(float))
        trusted = GreedyMwmScheduler(3).compute_trusted(demand)
        assert checked.first == trusted.first


class TestSolsticeEquivalence:
    @given(st.integers(2, 8), st.integers(0, 2**16),
           st.sampled_from([0, 20 * MICROSECONDS]))
    @settings(max_examples=25, deadline=None)
    def test_identical_plans(self, n, seed, reconfig_ps):
        rng = np.random.default_rng(seed)
        demand = np.round(
            rng.exponential(20_000, (n, n)) * (rng.random((n, n)) < 0.6))
        np.fill_diagonal(demand, 0.0)
        scalar = ReferenceSolsticeScheduler(n, reconfig_ps=reconfig_ps)
        vector = SolsticeScheduler(n, reconfig_ps=reconfig_ps)
        a = scalar.compute(demand)
        b = vector.compute(demand)
        assert [(m, h) for m, h in a.matchings] == \
            [(m, h) for m, h in b.matchings]
        assert np.array_equal(a.eps_residue, b.eps_residue)
        assert scalar.last_stats == vector.last_stats


class TestComputeTrustedContract:
    def test_base_class_falls_back_to_compute(self):
        calls = []

        class Probe(Scheduler):
            name = "probe"

            def compute(self, demand):
                calls.append(demand)
                return ScheduleResult(
                    matchings=[(Matching.empty(self.n_ports), 0)])

        demand = np.zeros((4, 4))
        Probe(4).compute_trusted(demand)
        assert len(calls) == 1 and calls[0] is demand

    def test_mwm_trusted_matches_checked(self):
        demand = np.array([[0, 9, 1], [4, 0, 2], [8, 3, 0]])
        checked = MwmScheduler(3).compute(demand.astype(float))
        trusted = MwmScheduler(3).compute_trusted(demand)
        assert checked.first == trusted.first

    @pytest.mark.parametrize("scheduler", [
        ReferenceIslipScheduler(4),
        ReferenceGreedyMwmScheduler(4),
        ReferenceSolsticeScheduler(4),
    ])
    def test_reference_trusted_still_validates(self, scheduler):
        # Reference classes route compute_trusted through the checked
        # scalar path, so even "trusted" bad input is caught there.
        with pytest.raises(SchedulingError):
            scheduler.compute_trusted(np.zeros((3, 3)))


class TestTrustedMatchingConstructor:
    def test_equivalent_to_validating_constructor(self):
        array = np.array([2, -1, 0], dtype=np.int64)
        trusted = Matching.from_output_array(array)
        validated = Matching([2, None, 0])
        assert trusted == validated
        assert hash(trusted) == hash(validated)
        assert list(trusted.pairs()) == [(0, 2), (2, 0)]
        assert trusted.size == 2
        assert trusted.output_for(1) is None

    def test_adopts_array_as_cache(self):
        array = np.array([1, 0], dtype=np.int64)
        matching = Matching.from_output_array(array)
        assert matching.as_array() is array
        assert not matching.as_array().flags.writeable

    def test_as_array_roundtrip_from_validating_path(self):
        matching = Matching([None, 2, 0])
        array = matching.as_array()
        assert array.tolist() == [-1, 2, 0]
        assert matching.as_array() is array  # cached


class TestPimEquivalence:
    @given(demand_matrices(), st.integers(0, 2**16), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_single_compute_identical(self, demand, seed, iterations):
        import random

        from repro.schedulers.pim import PimScheduler
        from repro.schedulers.reference import ReferencePimScheduler

        n = demand.shape[0]
        scalar = ReferencePimScheduler(n, iterations=iterations,
                                       rng=random.Random(seed))
        vector = PimScheduler(n, iterations=iterations,
                              rng=random.Random(seed))
        a = scalar.compute(demand)
        b = vector.compute(demand)
        assert a.first == b.first
        assert scalar.last_stats == vector.last_stats
        # The vector path must consume the RNG stream identically, or
        # subsequent draws would diverge.
        assert scalar.rng.getstate() == vector.rng.getstate()

    @given(st.integers(2, 8), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_stream_identical_over_sequences(self, n, seed):
        import random

        from repro.schedulers.pim import PimScheduler
        from repro.schedulers.reference import ReferencePimScheduler

        rng = np.random.default_rng(seed)
        scalar = ReferencePimScheduler(n, iterations=2,
                                       rng=random.Random(seed))
        vector = PimScheduler(n, iterations=2, rng=random.Random(seed))
        for __ in range(10):
            demand = rng.integers(0, 3, (n, n)).astype(float)
            assert scalar.compute(demand).first \
                == vector.compute(demand).first


class TestWfaEquivalence:
    @given(demand_matrices())
    @settings(max_examples=60, deadline=None)
    def test_single_compute_identical(self, demand):
        from repro.schedulers.reference import ReferenceWfaScheduler
        from repro.schedulers.wfa import WfaScheduler

        n = demand.shape[0]
        scalar = ReferenceWfaScheduler(n)
        vector = WfaScheduler(n)
        a = scalar.compute(demand)
        b = vector.compute(demand)
        assert a.first == b.first
        assert scalar._priority == vector._priority
        assert scalar.last_stats == vector.last_stats

    @given(st.integers(2, 8), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_priority_rotation_identical_over_sequences(self, n, seed):
        # The rotating priority diagonal persists across calls; a
        # demand sequence must drive both through identical states.
        from repro.schedulers.reference import ReferenceWfaScheduler
        from repro.schedulers.wfa import WfaScheduler

        rng = np.random.default_rng(seed)
        scalar = ReferenceWfaScheduler(n)
        vector = WfaScheduler(n)
        for __ in range(2 * n + 3):
            demand = rng.integers(0, 2, (n, n)).astype(float)
            assert scalar.compute(demand).first \
                == vector.compute(demand).first
            assert scalar._priority == vector._priority


class TestBvnEquivalence:
    @given(demand_matrices(max_n=8, max_value=40_000),
           st.sampled_from([0, 1_000, 50_000]))
    @settings(max_examples=30, deadline=None)
    def test_identical_plans(self, demand, min_hold_ps):
        from repro.schedulers.bvn import BvnScheduler
        from repro.schedulers.reference import ReferenceBvnScheduler

        n = demand.shape[0]
        scalar = ReferenceBvnScheduler(n, min_hold_ps=min_hold_ps)
        vector = BvnScheduler(n, min_hold_ps=min_hold_ps)
        a = scalar.compute(demand)
        b = vector.compute(demand)
        assert [(m, h) for m, h in a.matchings] \
            == [(m, h) for m, h in b.matchings]
        assert np.array_equal(a.eps_residue, b.eps_residue)
        assert scalar.last_stats == vector.last_stats

    def test_decomposition_loop_identical(self):
        from repro.schedulers.bvn import birkhoff_von_neumann, stuff_matrix
        from repro.schedulers.reference import (
            reference_birkhoff_von_neumann,
        )

        rng = np.random.default_rng(5)
        demand = np.round(rng.exponential(10_000, (6, 6)))
        np.fill_diagonal(demand, 0.0)
        stuffed = stuff_matrix(demand)
        assert birkhoff_von_neumann(stuffed) \
            == reference_birkhoff_von_neumann(stuffed)


class TestEclipseEquivalence:
    @given(st.integers(2, 7), st.integers(0, 2**16),
           st.sampled_from([0, 20 * MICROSECONDS]))
    @settings(max_examples=25, deadline=None)
    def test_identical_plans(self, n, seed, reconfig_ps):
        from repro.schedulers.eclipse import EclipseScheduler
        from repro.schedulers.reference import ReferenceEclipseScheduler

        rng = np.random.default_rng(seed)
        demand = np.round(
            rng.exponential(20_000, (n, n)) * (rng.random((n, n)) < 0.6))
        np.fill_diagonal(demand, 0.0)
        scalar = ReferenceEclipseScheduler(n, reconfig_ps=reconfig_ps)
        vector = EclipseScheduler(n, reconfig_ps=reconfig_ps)
        a = scalar.compute(demand)
        b = vector.compute(demand)
        assert [(m, h) for m, h in a.matchings] \
            == [(m, h) for m, h in b.matchings]
        assert np.array_equal(a.eps_residue, b.eps_residue)
        assert scalar.last_stats == vector.last_stats


class TestNewTrustedEntries:
    @pytest.mark.parametrize("pair", [
        ("pim", "ReferencePimScheduler"),
        ("wfa", "ReferenceWfaScheduler"),
        ("bvn", "ReferenceBvnScheduler"),
        ("eclipse", "ReferenceEclipseScheduler"),
    ])
    def test_reference_trusted_still_validates(self, pair):
        import repro.schedulers.reference as reference

        scheduler = getattr(reference, pair[1])(4)
        with pytest.raises(SchedulingError):
            scheduler.compute_trusted(np.zeros((3, 3)))

    def test_trusted_accepts_integer_demand(self):
        from repro.schedulers.bvn import BvnScheduler
        from repro.schedulers.eclipse import EclipseScheduler
        from repro.schedulers.wfa import WfaScheduler

        demand = np.array([[0, 40_000, 9_000],
                           [12_000, 0, 0],
                           [0, 25_000, 0]])
        for cls in (BvnScheduler, EclipseScheduler, WfaScheduler):
            checked = cls(3).compute(demand.astype(float))
            trusted = cls(3).compute_trusted(demand)
            assert [(m, h) for m, h in checked.matchings] \
                == [(m, h) for m, h in trusted.matchings]
