"""Exception hierarchy for the simulation substrate and framework.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with one clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped, re-entrant ``run`` calls.
    """


class ConfigurationError(ReproError):
    """A model or framework was configured with invalid parameters."""


class CapacityError(ReproError):
    """A finite resource (queue, buffer memory, port) overflowed in a
    context where overflow is a hard error rather than a drop."""


class SchedulingError(ReproError):
    """A scheduler produced an invalid result (e.g. a grant matrix that
    is not a partial permutation) or was driven out of protocol order."""
