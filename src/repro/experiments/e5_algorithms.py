"""E5 — scheduling-algorithm study on the cell fabric.

§3 positions the framework as an enabler for "rapid prototyping,
exploration and evaluation of novel hybrid schedulers".  This experiment
is the evaluation such a user would run first: the textbook crossbar
curves, throughput and mean delay vs offered load, for the algorithm
library, under uniform and adversarial (diagonal) traffic.

Expected shapes (the literature's, which our implementations must hit):

* Under uniform traffic iSLIP reaches ~100 % throughput; PIM-1
  saturates near 63 % (the 1 − 1/e limit); TDMA also serves uniform
  load perfectly (it *is* the uniform schedule).
* Under diagonal traffic TDMA collapses (it wastes slots on pairs with
  no demand), PIM/iSLIP-1 degrade, iSLIP-4 recovers much of it, and
  MWM stays near the admissible bound.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import random

from repro.analysis.charts import line_chart
from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import diagonal_rates, uniform_rates
from repro.schedulers.fixed import RoundRobinTdma
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.mwm import MwmScheduler
from repro.schedulers.pim import PimScheduler
from repro.schedulers.wfa import WfaScheduler

N_PORTS = 16

#: Overrides this experiment honours (``repro run e5 --set ...``).
KNOWN_OVERRIDES = frozenset({"loads", "slots", "warmup", "n_ports"})


def _make_schedulers(n_ports: int,
                     pim_seed: int) -> List[Tuple[str, object]]:
    return [
        ("tdma", RoundRobinTdma(n_ports)),
        ("pim-1", PimScheduler(n_ports, iterations=1,
                               rng=random.Random(pim_seed))),
        ("islip-1", IslipScheduler(n_ports, iterations=1)),
        ("islip-4", IslipScheduler(n_ports, iterations=4)),
        ("wfa", WfaScheduler(n_ports)),
        ("mwm", MwmScheduler(n_ports)),
    ]


def _curve(workload, loads, slots, warmup, seed: int, n_ports: int,
           pim_seed: int) -> Dict[str, List[Tuple[float, float, float]]]:
    """name -> [(load, throughput, mean delay)] per algorithm."""
    curves: Dict[str, List[Tuple[float, float, float]]] = {}
    for load in loads:
        rates = workload(n_ports, load)
        for name, scheduler in _make_schedulers(n_ports, pim_seed):
            sim = CellFabricSim(scheduler, rates, seed=seed)
            stats = sim.run(slots=slots, warmup=warmup)
            curves.setdefault(name, []).append(
                (load, stats.throughput, stats.mean_delay_slots))
    return curves


def _table_for(curves, loads, metric_index: int, metric: str,
               title: str) -> str:
    names = list(curves)
    rows = []
    for i, load in enumerate(loads):
        row = [f"{load:.2f}"]
        for name in names:
            row.append(f"{curves[name][i][metric_index]:.3f}")
        rows.append(row)
    return render_table(["load"] + names, rows, title=f"{title} — {metric}")


def _sizes(config: ExperimentConfig):
    """(loads, slots, warmup, n_ports) for one config."""
    loads = list(config.get(
        "loads", [0.3, 0.6, 0.9] if config.quick
        else [0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95]))
    slots = config.get("slots", 1_500 if config.quick else 8_000)
    warmup = config.get("warmup", 300 if config.quick else 1_500)
    n_ports = config.get("n_ports", N_PORTS)
    return loads, slots, warmup, n_ports


def run(config: ExperimentConfig) -> ExperimentReport:
    """Throughput & delay vs load, uniform and diagonal workloads."""
    loads, slots, warmup, n_ports = _sizes(config)
    seed = config.derive_seed(2)
    pim_seed = config.derive_seed(5)
    uniform_curves = _curve(uniform_rates, loads, slots, warmup,
                            seed=seed, n_ports=n_ports, pim_seed=pim_seed)
    diagonal_curves = _curve(diagonal_rates, loads, slots, warmup,
                             seed=seed, n_ports=n_ports, pim_seed=pim_seed)
    return _build_report(config, loads, n_ports, uniform_curves,
                         diagonal_curves)


def _curves_batch(workload, loads, slots, warmup, seeds, n_ports,
                  pim_seeds):
    """Per-replica curves, all replicas simulated in one batched pass.

    Returns one ``{name: [(load, throughput, delay)]}`` dict per
    replica, bit-identical to calling :func:`_curve` with that
    replica's seeds (the replica-batched kernel guarantees it).
    """
    from repro.fabric.replicas import run_replicas

    replicas = len(seeds)
    curves: List[Dict[str, List[Tuple[float, float, float]]]] = [
        {} for __ in range(replicas)]
    for load in loads:
        rates = workload(n_ports, load)
        # Fresh schedulers per (load, replica), exactly as the solo
        # path builds them per load.
        per_replica = [_make_schedulers(n_ports, pim_seeds[r])
                       for r in range(replicas)]
        for position, (name, __) in enumerate(per_replica[0]):
            instances = iter(
                [per_replica[r][position][1] for r in range(replicas)])
            stats_list = run_replicas(lambda: next(instances), rates,
                                      seeds, slots, warmup=warmup)
            for replica, stats in enumerate(stats_list):
                curves[replica].setdefault(name, []).append(
                    (load, stats.throughput, stats.mean_delay_slots))
    return curves


def run_batch(configs) -> List[ExperimentReport]:
    """Replica-batched entry: one report per config, byte-identical.

    The configs must agree on everything but ``seed`` (the runner's
    replica-batch grouping guarantees this); the whole replica axis is
    then simulated through :func:`repro.fabric.replicas.run_replicas`
    in stacked numpy state instead of one fabric run per replica.
    """
    from repro.sim.errors import ConfigurationError

    configs = list(configs)
    if not configs:
        return []
    head = configs[0]
    for config in configs[1:]:
        if (config.quick, config.scheduler, config.measure_wallclock,
                dict(config.overrides)) != (
                head.quick, head.scheduler, head.measure_wallclock,
                dict(head.overrides)):
            raise ConfigurationError(
                "e5 replica batch needs configs identical except seed")
    loads, slots, warmup, n_ports = _sizes(head)
    seeds = [config.derive_seed(2) for config in configs]
    pim_seeds = [config.derive_seed(5) for config in configs]
    uniform = _curves_batch(uniform_rates, loads, slots, warmup, seeds,
                            n_ports, pim_seeds)
    diagonal = _curves_batch(diagonal_rates, loads, slots, warmup,
                             seeds, n_ports, pim_seeds)
    return [
        _build_report(config, loads, n_ports, uniform[replica],
                      diagonal[replica])
        for replica, config in enumerate(configs)
    ]


def _build_report(config: ExperimentConfig, loads, n_ports,
                  uniform_curves, diagonal_curves) -> ExperimentReport:
    """Tables, chart, data and paper-shape checks for one run."""
    report = ExperimentReport(
        experiment_id="e5",
        title="scheduler-algorithm study (the framework's purpose)",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    report.tables.append(_table_for(
        uniform_curves, loads, 1, "throughput",
        f"uniform traffic, {n_ports} ports"))
    report.tables.append(_table_for(
        uniform_curves, loads, 2, "mean delay (slots)",
        f"uniform traffic, {n_ports} ports"))
    report.tables.append(_table_for(
        diagonal_curves, loads, 1, "throughput",
        f"diagonal traffic, {n_ports} ports"))
    report.tables.append(_table_for(
        diagonal_curves, loads, 2, "mean delay (slots)",
        f"diagonal traffic, {n_ports} ports"))
    report.tables.append(line_chart(
        loads,
        {name: [point[1] for point in series]
         for name, series in diagonal_curves.items()},
        width=48, height=12,
        x_label="offered load", y_label="throughput",
        title="diagonal traffic — throughput vs load (figure form)"))
    report.data["uniform"] = uniform_curves
    report.data["diagonal"] = diagonal_curves
    # Paper-shape checks at the heaviest common load.
    last = len(loads) - 1
    islip_uniform = uniform_curves["islip-1"][last][1]
    pim_uniform = uniform_curves["pim-1"][last][1]
    if islip_uniform > pim_uniform:
        report.expectations.append(
            f"uniform@{loads[last]:.2f}: iSLIP-1 throughput "
            f"{islip_uniform:.3f} > PIM-1 {pim_uniform:.3f} "
            "(pointer desynchronisation beats random)")
    mwm_diag = diagonal_curves["mwm"][last][1]
    tdma_diag = diagonal_curves["tdma"][last][1]
    if mwm_diag > tdma_diag:
        report.expectations.append(
            f"diagonal@{loads[last]:.2f}: MWM throughput {mwm_diag:.3f} "
            f"> TDMA {tdma_diag:.3f} (demand-aware beats oblivious on "
            "skew)")
    islip4_diag = diagonal_curves["islip-4"][last][1]
    islip1_diag = diagonal_curves["islip-1"][last][1]
    if islip4_diag >= islip1_diag:
        report.expectations.append(
            f"diagonal@{loads[last]:.2f}: iSLIP-4 ({islip4_diag:.3f}) "
            f">= iSLIP-1 ({islip1_diag:.3f}) — iterations help on skew")
    return report


def run_e5(quick: bool = False) -> ExperimentReport:
    """Historical entry point; see :func:`run`."""
    return run(ExperimentConfig(quick=quick))


__all__ = ["run", "run_batch", "run_e5", "N_PORTS", "KNOWN_OVERRIDES"]
