"""Tests for Hopcroft–Karp, cross-checked against networkx."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.bipartite import (
    hopcroft_karp,
    perfect_matching_on_support,
)


def _matching_size(match):
    return sum(1 for m in match if m is not None)


def _networkx_max_matching_size(adjacency, n_right):
    graph = nx.Graph()
    n_left = len(adjacency)
    graph.add_nodes_from(range(n_left), bipartite=0)
    graph.add_nodes_from(range(n_left, n_left + n_right), bipartite=1)
    for u, neighbours in enumerate(adjacency):
        for v in neighbours:
            graph.add_edge(u, n_left + v)
    matching = nx.bipartite.maximum_matching(
        graph, top_nodes=range(n_left))
    return sum(1 for k in matching if k < n_left)


class TestHopcroftKarp:
    def test_simple_perfect(self):
        match = hopcroft_karp([[0], [1]], 2)
        assert match == [0, 1]

    def test_requires_augmenting_path(self):
        # Both prefer 0; one must settle for 1.
        match = hopcroft_karp([[0], [0, 1]], 2)
        assert _matching_size(match) == 2

    def test_unmatchable_vertex(self):
        match = hopcroft_karp([[0], []], 2)
        assert match[0] == 0
        assert match[1] is None

    def test_empty_graph(self):
        assert hopcroft_karp([], 0) == []

    def test_returns_consistent_matching(self):
        adjacency = [[0, 1], [1, 2], [0, 2], [2, 3]]
        match = hopcroft_karp(adjacency, 4)
        taken = [m for m in match if m is not None]
        assert len(taken) == len(set(taken))
        for u, v in enumerate(match):
            if v is not None:
                assert v in adjacency[u]

    @given(st.integers(2, 7), st.data())
    @settings(max_examples=40, deadline=None)
    def test_maximum_cardinality_matches_networkx(self, n, data):
        adjacency = []
        for __ in range(n):
            neighbours = data.draw(st.lists(
                st.integers(0, n - 1), max_size=n, unique=True))
            adjacency.append(neighbours)
        ours = _matching_size(hopcroft_karp(adjacency, n))
        reference = _networkx_max_matching_size(adjacency, n)
        assert ours == reference


class TestPerfectMatchingOnSupport:
    def test_identity_support(self):
        support = np.eye(3, dtype=bool)
        assert perfect_matching_on_support(support.tolist()) == [0, 1, 2]

    def test_full_support(self):
        match = perfect_matching_on_support(np.ones((4, 4), bool).tolist())
        assert sorted(match) == [0, 1, 2, 3]

    def test_hall_violation_returns_none(self):
        # Two rows can only use column 0.
        support = [[True, False], [True, False]]
        assert perfect_matching_on_support(support) is None

    def test_empty_row_returns_none(self):
        support = [[False, False], [True, True]]
        assert perfect_matching_on_support(support) is None
