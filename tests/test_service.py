"""Tests for the sweep service: framing, daemon, client, dedup.

The daemon under test runs in a background thread inside this process
(``jobs=1``, so execution happens in the daemon's worker thread too).
That keeps every test hermetic *and* lets a monkeypatched entry point
(``esvc``) gate execution on threading events, which is what makes
the concurrency-sensitive assertions — in-flight dedup, reconnect
resume, cancellation, backpressure — deterministic instead of racy.
"""

import collections
import json
import os
import pathlib
import random
import signal
import socket
import struct
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro import experiments
from repro.experiments.base import ExperimentReport
from repro.runner import JobRunner, ResultCache, RunSpec, execute
from repro.runner.cache import report_to_payload
from repro.service import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ReproDaemon,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceJournal,
    execute_via_server,
    journal_path,
    parse_address,
)
from repro.service.journal import replay
from repro.service.protocol import (
    connect,
    decode_payload,
    encode_frame,
    hello_frame,
    read_frame,
    register_frame,
    write_frame,
)
from repro.service.worker import ReproWorker, WorkerError


class TestFraming:
    def test_round_trip(self):
        message = {"type": "stats", "nested": {"a": [1, 2, {"b": None}]}}
        frame = encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == message

    def test_payload_must_be_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_payload(b"[1, 2, 3]")
        assert excinfo.value.code == "bad-message"

    def test_payload_must_be_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_payload(b"\xff\x00 not json")
        assert excinfo.value.code == "bad-json"

    def test_payload_needs_string_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_payload(b'{"no_type": 1}')
        assert excinfo.value.code == "bad-message"

    def test_parse_address_forms(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("relative.sock") == ("unix",
                                                  "relative.sock")
        assert parse_address("unix:whatever") == ("unix", "whatever")
        assert parse_address("127.0.0.1:9000") == \
            ("tcp", ("127.0.0.1", 9000))
        with pytest.raises(ValueError):
            parse_address("no-port-no-path")
        with pytest.raises(ValueError):
            parse_address("host:notaport")


@pytest.fixture
def start_daemon(tmp_path):
    """Factory: a live daemon thread on an ephemeral TCP port."""
    running = []

    def start(**kwargs):
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        kwargs.setdefault("quiet", True)
        daemon = ReproDaemon("127.0.0.1:0", **kwargs)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        assert daemon.wait_ready(10), "daemon never bound"
        running.append((daemon, thread))
        return daemon

    yield start
    for daemon, thread in running:
        daemon.request_shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive(), "daemon failed to drain"


@pytest.fixture
def fake_experiment(monkeypatch):
    """A gated in-process entry point registered as ``esvc``.

    ``gate`` starts open; tests close it to hold executions in
    flight, and ``entered`` signals that a job reached the entry
    point.  ``calls`` counts executions per seed, which is how the
    dedup/resume tests assert "exactly once".
    """

    class Fake:
        def __init__(self):
            self.calls = collections.Counter()
            self.lock = threading.Lock()
            self.gate = threading.Event()
            self.gate.set()
            self.entered = threading.Event()

        def __call__(self, config):
            with self.lock:
                self.calls[config.seed] += 1
            self.entered.set()
            assert self.gate.wait(timeout=30), "test forgot the gate"
            return ExperimentReport(
                experiment_id="esvc", title="service test",
                data={"seed": config.seed},
                expectations=[f"seed {config.seed} ok"])

        def spec(self, seed=0):
            return RunSpec("esvc", seed=seed)

    fake = Fake()
    monkeypatch.setitem(experiments.ENTRY_POINTS, "esvc", fake)
    return fake


def _handshake(address, timeout=10.0):
    sock = connect(address, timeout=timeout)
    write_frame(sock, hello_frame())
    reply = read_frame(sock)
    assert reply["type"] == "welcome"
    return sock


class TestHandshake:
    def test_hello_welcome(self, start_daemon):
        daemon = start_daemon()
        sock = _handshake(daemon.bound_address)
        write_frame(sock, {"type": "stats"})
        stats = read_frame(sock)
        assert stats["type"] == "stats"
        assert stats["version"] == PROTOCOL_VERSION
        assert stats["sessions"] == 1
        sock.close()

    def test_version_mismatch_rejected(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10.0)
        write_frame(sock, {"type": "hello", "version": 999})
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "version-mismatch"
        sock.close()

    def test_frame_before_hello_rejected(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10.0)
        write_frame(sock, {"type": "stats"})
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "bad-handshake"
        sock.close()

    def test_client_class_raises_on_mismatch(self, start_daemon,
                                             monkeypatch):
        daemon = start_daemon()
        monkeypatch.setattr("repro.service.client.hello_frame",
                            lambda: {"type": "hello", "version": -1})
        with pytest.raises(ServiceError, match="version-mismatch"):
            ServiceClient(daemon.bound_address, timeout=10.0).connect()


class TestHostileFrames:
    """Framing abuse must never take the daemon down."""

    def _daemon_survives(self, daemon):
        sock = _handshake(daemon.bound_address)
        write_frame(sock, {"type": "stats"})
        assert read_frame(sock)["type"] == "stats"
        sock.close()

    def test_oversized_frame(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10.0)
        sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "frame-too-large"
        # ... and the connection is closed after a framing violation.
        assert read_frame(sock) is None
        sock.close()
        self._daemon_survives(daemon)

    def test_zero_length_frame(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10.0)
        sock.sendall(struct.pack(">I", 0))
        reply = read_frame(sock)
        assert reply["code"] == "bad-frame"
        self._daemon_survives(daemon)

    def test_malformed_json_frame(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10.0)
        garbage = b"\x00{]this is not json"
        sock.sendall(struct.pack(">I", len(garbage)) + garbage)
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "bad-json"
        self._daemon_survives(daemon)

    def test_truncated_frame_then_disconnect(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10.0)
        sock.sendall(struct.pack(">I", 100) + b"only a few bytes")
        sock.close()
        self._daemon_survives(daemon)

    def test_unknown_frame_type_keeps_connection(self, start_daemon):
        daemon = start_daemon()
        sock = _handshake(daemon.bound_address)
        write_frame(sock, {"type": "frobnicate"})
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "unknown-type"
        write_frame(sock, {"type": "stats"})
        assert read_frame(sock)["type"] == "stats"
        sock.close()


class TestSubmitValidation:
    def test_unknown_experiment_rejected(self, start_daemon):
        daemon = start_daemon()
        sock = _handshake(daemon.bound_address)
        bogus = RunSpec("e1").canonical()
        bogus["experiment_id"] = "not-an-experiment"
        write_frame(sock, {"type": "submit", "submit_id": "s1",
                           "specs": [bogus]})
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "bad-spec"
        sock.close()

    def test_submit_needs_specs(self, start_daemon):
        daemon = start_daemon()
        sock = _handshake(daemon.bound_address)
        write_frame(sock, {"type": "submit", "submit_id": "s1",
                           "specs": []})
        assert read_frame(sock)["code"] == "bad-submit"
        sock.close()

    def test_submit_cap(self, start_daemon, fake_experiment):
        daemon = start_daemon(max_submit=2)
        sock = _handshake(daemon.bound_address)
        specs = [fake_experiment.spec(seed).canonical()
                 for seed in range(3)]
        write_frame(sock, {"type": "submit", "submit_id": "s1",
                           "specs": specs})
        assert read_frame(sock)["code"] == "submit-too-large"
        sock.close()

    def test_duplicate_submit_id(self, start_daemon, fake_experiment):
        fake_experiment.gate.clear()  # keep s1 live
        daemon = start_daemon()
        sock = _handshake(daemon.bound_address)
        payload = [fake_experiment.spec(0).canonical()]
        write_frame(sock, {"type": "submit", "submit_id": "s1",
                           "specs": payload})
        assert read_frame(sock)["type"] == "accepted"
        write_frame(sock, {"type": "submit", "submit_id": "s1",
                           "specs": payload})
        assert read_frame(sock)["code"] == "duplicate-submit"
        fake_experiment.gate.set()
        sock.close()


class TestExecution:
    def test_submit_roundtrip_and_cache(self, start_daemon,
                                        fake_experiment):
        daemon = start_daemon()
        specs = [fake_experiment.spec(seed) for seed in range(3)]
        outcomes = execute_via_server(daemon.bound_address, specs)
        assert [o.spec for o in outcomes] == specs
        assert all(o.error is None and not o.cached for o in outcomes)
        assert [o.report.data["seed"] for o in outcomes] == [0, 1, 2]
        # Resubmission is served from the shared cache: zero re-runs.
        again = execute_via_server(daemon.bound_address, specs)
        assert all(o.cached for o in again)
        assert sum(fake_experiment.calls.values()) == 3
        assert [report_to_payload(o.report) for o in outcomes] == \
            [report_to_payload(o.report) for o in again]

    def test_streaming_on_outcome(self, start_daemon, fake_experiment):
        daemon = start_daemon()
        seen = []
        execute_via_server(daemon.bound_address,
                           [fake_experiment.spec(7)],
                           on_outcome=seen.append)
        assert len(seen) == 1 and seen[0].report.data["seed"] == 7

    def test_concurrent_clients_one_execution(self, start_daemon,
                                              fake_experiment):
        daemon = start_daemon()
        fake_experiment.gate.clear()
        spec = fake_experiment.spec(seed=42)
        client_a = ServiceClient(daemon.bound_address,
                                 timeout=30.0).connect()
        client_b = ServiceClient(daemon.bound_address,
                                 timeout=30.0).connect()
        try:
            id_a = client_a.submit([spec])
            # The job is now *in flight* (the entry point has been
            # entered and is blocked on the gate)...
            assert fake_experiment.entered.wait(10)
            # ... so a second client's identical submission must
            # coalesce onto it, not queue a second execution.
            id_b = client_b.submit([spec])
            fake_experiment.gate.set()
            frame_a = client_a._read()
            frame_b = client_b._read()
            assert frame_a["type"] == frame_b["type"] == "result"
            assert frame_a["submit_id"] == id_a
            assert frame_b["submit_id"] == id_b
            assert frame_a["report"] == frame_b["report"]
            assert frame_a["coalesced"] and frame_b["coalesced"]
        finally:
            client_a.close()
            client_b.close()
        assert fake_experiment.calls[42] == 1
        with ServiceClient(daemon.bound_address, timeout=10.0) as c:
            stats = c.stats()
        assert stats["executed"] == 1
        assert stats["coalesced"] == 1
        assert stats["results_streamed"] == 2

    def test_reconnect_resumes_via_cache(self, start_daemon,
                                         fake_experiment):
        daemon = start_daemon()
        specs = [fake_experiment.spec(seed) for seed in range(4)]
        # First client: submit the sweep, read one result, vanish.
        client = ServiceClient(daemon.bound_address,
                               timeout=30.0).connect()
        stream = client.submit_stream(specs)
        next(stream)
        client.close()  # dropped mid-sweep
        # Second attempt resubmits everything; whatever already ran
        # (all of it — the batch had started) comes from the cache.
        outcomes = execute_via_server(daemon.bound_address, specs)
        assert [o.report.data["seed"] for o in outcomes] == [0, 1, 2, 3]
        assert all(o.error is None for o in outcomes)
        # The resume property: nothing ever executed twice.
        assert sum(fake_experiment.calls.values()) == 4
        assert all(count == 1
                   for count in fake_experiment.calls.values())

    def test_cancel_detaches_submission(self, start_daemon,
                                        fake_experiment):
        daemon = start_daemon()
        fake_experiment.gate.clear()
        spec = fake_experiment.spec(seed=9)
        client = ServiceClient(daemon.bound_address,
                               timeout=30.0).connect()
        try:
            submit_id = client.submit([spec])
            assert fake_experiment.entered.wait(10)
            assert client.cancel(submit_id) == 1
            fake_experiment.gate.set()
            # No result frame may arrive for the cancelled submit:
            # the next reply on this ordered connection is the stats
            # answer, not a stale result.
            stats = client.stats()
            assert stats["type"] == "stats"
        finally:
            fake_experiment.gate.set()
            client.close()

    def test_job_exception_fails_visibly_daemon_survives(
            self, start_daemon, monkeypatch):
        def explode(config):
            raise RuntimeError("boom from the entry point")

        monkeypatch.setitem(experiments.ENTRY_POINTS, "esvc", explode)
        daemon = start_daemon()
        outcomes = execute_via_server(daemon.bound_address,
                                      [RunSpec("esvc")])
        assert outcomes[0].error is not None
        assert "boom" in outcomes[0].error
        # The daemon must outlive a poisonous job.
        with ServiceClient(daemon.bound_address, timeout=10.0) as c:
            assert c.stats()["failed"] == 1


class TestBackpressure:
    def test_reader_pauses_over_watermark(self, start_daemon,
                                          fake_experiment):
        daemon = start_daemon(high_watermark=2, low_watermark=1)
        fake_experiment.gate.clear()
        sock = _handshake(daemon.bound_address)
        specs = [fake_experiment.spec(seed).canonical()
                 for seed in range(4)]
        write_frame(sock, {"type": "submit", "submit_id": "s1",
                           "specs": specs})
        assert read_frame(sock)["type"] == "accepted"
        # 4 outstanding > high watermark 2: the daemon stops reading
        # this connection, so a stats request goes unanswered...
        write_frame(sock, {"type": "stats"})
        sock.settimeout(0.8)
        with pytest.raises(socket.timeout):
            sock.recv(1)
        # ... until results drain the session below the low mark.
        fake_experiment.gate.set()
        sock.settimeout(30.0)
        kinds = collections.Counter(
            read_frame(sock)["type"] for _ in range(6))
        assert kinds == {"result": 4, "done": 1, "stats": 1}
        sock.close()


class TestShutdown:
    def test_graceful_drain_streams_inflight_results(
            self, start_daemon, fake_experiment):
        daemon = start_daemon()
        fake_experiment.gate.clear()
        client = ServiceClient(daemon.bound_address,
                               timeout=30.0).connect()
        client.submit([fake_experiment.spec(seed=5)])
        assert fake_experiment.entered.wait(10)
        # Ask for shutdown while the job is mid-execution; the drain
        # must finish it, stream the result, then say bye.
        daemon.request_shutdown()
        fake_experiment.gate.set()
        frames = []
        while True:
            frame = read_frame(client._sock)
            if frame is None:
                break
            frames.append(frame["type"])
            if frame["type"] == "bye":
                break
        assert frames == ["result", "done", "bye"]
        client.close()

    def test_draining_daemon_rejects_new_submits(self, start_daemon,
                                                 fake_experiment):
        daemon = start_daemon()
        fake_experiment.gate.clear()
        client = ServiceClient(daemon.bound_address,
                               timeout=30.0).connect()
        client.submit([fake_experiment.spec(seed=1)])
        assert fake_experiment.entered.wait(10)
        daemon.request_shutdown()
        with pytest.raises(ServiceError, match="draining"):
            client.submit([fake_experiment.spec(seed=2)])
        fake_experiment.gate.set()
        client.close()

    def test_shutdown_frame(self, start_daemon):
        daemon = start_daemon()
        with ServiceClient(daemon.bound_address, timeout=30.0) as c:
            c.shutdown(wait_bye=True)
        assert daemon.wait_ready(0.01) is False  # no longer listening


class TestByteIdentity:
    """The acceptance property: --server output == local output."""

    def test_real_experiment_identical_reports(self, start_daemon,
                                               tmp_path):
        daemon = start_daemon(cache_dir=str(tmp_path / "svc-cache"))
        specs = [RunSpec("e4", quick=True)]
        via_server = execute_via_server(daemon.bound_address, specs)
        local = execute(specs, jobs=1)
        assert report_to_payload(via_server[0].report) == \
            report_to_payload(local[0].report)

    def test_unix_socket_transport(self, start_daemon, tmp_path,
                                   fake_experiment):
        # Everything else runs over TCP; prove the unix path works
        # end to end too (it is the CLI default).
        import tempfile

        with tempfile.TemporaryDirectory(dir="/tmp") as short_dir:
            path = f"{short_dir}/svc.sock"
            daemon = ReproDaemon(path, jobs=1, quiet=True,
                                 cache_dir=str(tmp_path / "c"))
            thread = threading.Thread(target=daemon.run, daemon=True)
            thread.start()
            try:
                assert daemon.wait_ready(10)
                outcomes = execute_via_server(
                    path, [fake_experiment.spec(3)])
                assert outcomes[0].report.data["seed"] == 3
            finally:
                daemon.request_shutdown()
                thread.join(timeout=15)
            assert not thread.is_alive()


class TestJobRunnerSeam:
    def test_runner_serves_successive_batches(self, tmp_path):
        cache = ResultCache(tmp_path / "jr-cache")
        runner = JobRunner(jobs=1, cache=cache)
        first = runner.run([RunSpec("e4", quick=True)])
        second = runner.run([RunSpec("e4", quick=True)])
        assert not first[0].cached and second[0].cached
        assert report_to_payload(first[0].report) == \
            report_to_payload(second[0].report)

    def test_runner_validates_jobs(self):
        with pytest.raises(ValueError):
            JobRunner(jobs=0)

    def test_runner_serialises_concurrent_callers(self,
                                                  fake_experiment):
        runner = JobRunner(jobs=1)
        results = []
        threads = [
            threading.Thread(target=lambda seed=seed: results.append(
                runner.run([fake_experiment.spec(seed)])))
            for seed in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 3
        assert sum(fake_experiment.calls.values()) == 3


class _WorkerHandle:
    """A ReproWorker on a thread, with its exit code captured."""

    def __init__(self, worker: ReproWorker):
        self.worker = worker
        self.exit_codes = []
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.exit_codes.append(self.worker.run())

    def kill(self):
        """Abrupt death: the socket just closes mid-conversation,
        exactly what the daemon sees from a SIGKILLed process."""
        self.worker.stop()


@pytest.fixture
def start_worker():
    """Factory: a live in-process worker thread dialed at an address
    (in-process so it shares monkeypatched entry points)."""
    running = []

    def start(address, **kwargs):
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("quiet", True)
        handle = _WorkerHandle(ReproWorker(address, **kwargs))
        handle.thread.start()
        assert handle.worker.wait_registered(10), \
            "worker never registered"
        running.append(handle)
        return handle

    yield start
    for handle in running:
        handle.worker.stop()
        handle.thread.join(timeout=15)
        assert not handle.thread.is_alive(), "worker failed to stop"


def _wait_until(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestWorkerFleet:
    def test_register_and_stats_rows(self, start_daemon,
                                     start_worker):
        daemon = start_daemon()
        start_worker(daemon.bound_address, jobs=2, name="nodeA")
        sock = _handshake(daemon.bound_address)
        write_frame(sock, {"type": "stats"})
        stats = read_frame(sock)
        assert stats["workers_registered"] == 1
        (row,) = stats["workers"]
        assert row["name"] == "nodeA"
        assert row["jobs"] == 2
        assert row["leased"] == 0
        assert row["completed"] == 0
        assert row["heartbeat_age_s"] >= 0.0
        assert row["address"]
        sock.close()

    def test_remote_only_execution(self, start_daemon, start_worker,
                                   fake_experiment):
        daemon = start_daemon(local_execution=False)
        start_worker(daemon.bound_address)
        specs = [fake_experiment.spec(seed) for seed in range(4)]
        outcomes = execute_via_server(daemon.bound_address, specs)
        assert [o.report.data["seed"] for o in outcomes] == [0, 1, 2, 3]
        assert all(o.error is None and not o.cached for o in outcomes)
        assert daemon.stats.remote_executed == 4
        assert daemon.stats.executed == 4
        assert sum(fake_experiment.calls.values()) == 4

    def test_remote_byte_identity_real_experiment(
            self, start_daemon, start_worker, tmp_path):
        # The acceptance property with the fleet in the path: a spec
        # executed on a remote worker produces the byte-identical
        # canonical report payload of local execute().
        daemon = start_daemon(local_execution=False,
                              cache_dir=str(tmp_path / "fleet"))
        start_worker(daemon.bound_address)
        specs = [RunSpec("e4", quick=True)]
        via_fleet = execute_via_server(daemon.bound_address, specs)
        local = execute(specs, jobs=1)
        assert report_to_payload(via_fleet[0].report) == \
            report_to_payload(local[0].report)
        assert daemon.stats.remote_executed == 1
        # ... and the upload landed in the daemon's shared cache.
        again = execute_via_server(daemon.bound_address, specs)
        assert again[0].cached

    def test_worker_death_mid_lease_reassigned(
            self, start_daemon, start_worker, fake_experiment):
        fake_experiment.gate.clear()
        # A short lease timeout: the flap-parking grace must expire
        # before the daemon declares the worker gone and reassigns.
        daemon = start_daemon(local_execution=False,
                              lease_timeout_s=0.5)
        first = start_worker(daemon.bound_address)
        specs = [fake_experiment.spec(seed) for seed in range(2)]
        results = []
        client = threading.Thread(
            target=lambda: results.append(
                execute_via_server(daemon.bound_address, specs)),
            daemon=True)
        client.start()
        assert fake_experiment.entered.wait(10), \
            "first worker never started executing"
        first.kill()  # dies holding both leases, mid-execution
        _wait_until(lambda: daemon.stats.workers_lost == 1,
                    what="the daemon to notice the death")
        start_worker(daemon.bound_address)
        fake_experiment.gate.set()
        client.join(timeout=30)
        assert not client.is_alive(), "client never got its results"
        (outcomes,) = results
        # The client saw no gap: every spec has a clean result.
        assert [o.report.data["seed"] for o in outcomes] == [0, 1]
        assert all(o.error is None for o in outcomes)
        assert daemon.stats.leases_reassigned >= 1

    def test_partitioned_worker_reaped_by_lease_timeout(
            self, start_daemon, fake_experiment):
        # A worker that registers, absorbs leases, then goes silent
        # (no heartbeats, no uploads — the network-partition case).
        daemon = start_daemon(lease_timeout_s=0.5)
        sock = connect(daemon.bound_address, timeout=10.0)
        write_frame(sock, register_frame(jobs=8, replica_batch=False,
                                         name="zombie"))
        assert read_frame(sock)["type"] == "registered"
        # jobs=8 out-bids the daemon's own pool for leases, so the
        # zombie wins the specs... and sits on them.
        specs = [fake_experiment.spec(seed) for seed in range(2)]
        outcomes = execute_via_server(daemon.bound_address, specs)
        assert [o.report.data["seed"] for o in outcomes] == [0, 1]
        assert all(o.error is None for o in outcomes)
        assert daemon.stats.workers_lost == 1
        assert daemon.stats.leases_reassigned == 2
        assert sum(fake_experiment.calls.values()) == 2
        with ServiceClient(daemon.bound_address, timeout=10.0) as c:
            assert c.stats()["workers"] == []
        sock.close()

    def test_drain_sends_bye_to_workers(self, start_daemon,
                                        start_worker,
                                        fake_experiment):
        daemon = start_daemon(local_execution=False)
        handle = start_worker(daemon.bound_address)
        outcomes = execute_via_server(daemon.bound_address,
                                      [fake_experiment.spec(5)])
        assert outcomes[0].report.data["seed"] == 5
        daemon.request_shutdown()
        handle.thread.join(timeout=15)
        assert handle.exit_codes == [0]

    def test_register_while_draining_refused(self, start_daemon,
                                             fake_experiment):
        fake_experiment.gate.clear()
        daemon = start_daemon()
        results = []
        client = threading.Thread(
            target=lambda: results.append(execute_via_server(
                daemon.bound_address, [fake_experiment.spec(0)])),
            daemon=True)
        client.start()
        assert fake_experiment.entered.wait(10)
        daemon.request_shutdown()
        _wait_until(lambda: daemon._draining, what="the drain flag")
        worker = ReproWorker(daemon.bound_address, jobs=1, quiet=True,
                             timeout=10.0)
        with pytest.raises(WorkerError, match="draining"):
            worker.run()
        fake_experiment.gate.set()
        client.join(timeout=15)
        assert results and results[0][0].error is None

    def test_drain_fails_stranded_jobs_without_executor(
            self, start_daemon, fake_experiment):
        # --no-local with an empty fleet: queued jobs can never run,
        # and a draining daemon refuses new worker registrations —
        # the drain must fail the stranded jobs to their subscribers
        # instead of hanging the shutdown on an empty-queue wait.
        daemon = start_daemon(local_execution=False)
        results = []
        client = threading.Thread(
            target=lambda: results.append(execute_via_server(
                daemon.bound_address,
                [fake_experiment.spec(seed) for seed in range(2)])),
            daemon=True)
        client.start()
        _wait_until(lambda: daemon.stats.submitted == 2,
                    what="the submit to land")
        daemon.request_shutdown()
        client.join(timeout=15)
        assert not client.is_alive(), "client hung on stranded jobs"
        (outcomes,) = results
        assert len(outcomes) == 2
        assert all("no eligible executor" in o.error
                   for o in outcomes)
        assert daemon.stats.failed == 2
        assert sum(fake_experiment.calls.values()) == 0

    def test_drain_fails_leases_of_worker_lost_mid_drain(
            self, start_daemon, start_worker, fake_experiment):
        # Leases requeued off a worker that dies *during* the drain
        # have no executor left (--no-local, fleet now empty); the
        # drain fails them visibly instead of waiting forever.  The
        # short lease timeout bounds the flap-parking window the
        # drain honours before giving the worker up for gone.
        fake_experiment.gate.clear()
        daemon = start_daemon(local_execution=False,
                              lease_timeout_s=0.5)
        handle = start_worker(daemon.bound_address)
        results = []
        client = threading.Thread(
            target=lambda: results.append(execute_via_server(
                daemon.bound_address, [fake_experiment.spec(3)])),
            daemon=True)
        client.start()
        assert fake_experiment.entered.wait(10), \
            "the worker never started executing"
        daemon.request_shutdown()
        _wait_until(lambda: daemon._draining, what="the drain flag")
        handle.kill()  # dies holding its lease, mid-drain
        client.join(timeout=15)
        fake_experiment.gate.set()  # release the dead worker's runner
        assert not client.is_alive(), "client hung on the lost lease"
        (outcomes,) = results
        assert outcomes[0].error is not None
        assert "no eligible executor" in outcomes[0].error
        assert daemon.stats.workers_lost == 1
        assert daemon.stats.leases_reassigned == 1

    def test_cancel_wakes_scheduler_to_drop_orphans(
            self, start_daemon, fake_experiment):
        # A queued job whose last subscriber cancels must be dropped
        # on a prompt dispatch pass, not whenever unrelated traffic
        # happens to wake the scheduler (during a drain that wait
        # could be indefinite).
        daemon = start_daemon(local_execution=False)
        spec = fake_experiment.spec(seed=11)
        sock = _handshake(daemon.bound_address)
        write_frame(sock, {"type": "submit", "submit_id": "s1",
                           "specs": [spec.canonical()]})
        assert read_frame(sock)["type"] == "accepted"
        write_frame(sock, {"type": "cancel", "submit_id": "s1"})
        assert read_frame(sock)["type"] == "cancelled"
        _wait_until(lambda: daemon.stats.dropped == 1,
                    what="the orphaned job to be dropped")
        assert sum(fake_experiment.calls.values()) == 0
        sock.close()


class TestHostileWorkers:
    """Fleet abuse fails only the abuser's leases, never the daemon
    and never the submitting client."""

    def _daemon_alive(self, daemon):
        sock = _handshake(daemon.bound_address)
        write_frame(sock, {"type": "stats"})
        assert read_frame(sock)["type"] == "stats"
        sock.close()

    def _register_hostile(self, daemon, jobs=8):
        """A raw socket registered as a worker wide enough to out-bid
        the daemon's local pool for every lease."""
        sock = connect(daemon.bound_address, timeout=10.0)
        write_frame(sock, register_frame(jobs=jobs,
                                         replica_batch=False,
                                         name="hostile"))
        reply = read_frame(sock)
        assert reply["type"] == "registered"
        return sock

    def _submit_in_background(self, daemon, spec):
        results = []
        thread = threading.Thread(
            target=lambda: results.append(execute_via_server(
                daemon.bound_address, [spec])),
            daemon=True)
        thread.start()
        return thread, results

    def test_register_version_mismatch_names_both(self,
                                                  start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10.0)
        frame = register_frame(jobs=1, replica_batch=False,
                               name="old-node")
        frame["version"] = 999
        write_frame(sock, frame)
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "version-mismatch"
        assert "999" in reply["message"]
        assert str(PROTOCOL_VERSION) in reply["message"]
        sock.close()
        self._daemon_alive(daemon)

    def test_register_bad_jobs_rejected(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10.0)
        frame = register_frame(jobs=1, replica_batch=False, name="x")
        frame["jobs"] = "lots"
        write_frame(sock, frame)
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "bad-register"
        sock.close()
        self._daemon_alive(daemon)

    def test_malformed_upload_expels_and_reassigns(
            self, start_daemon, fake_experiment):
        daemon = start_daemon()
        sock = self._register_hostile(daemon)
        thread, results = self._submit_in_background(
            daemon, fake_experiment.spec(0))
        lease = read_frame(sock)
        assert lease["type"] == "lease"
        key = RunSpec.from_canonical(lease["specs"][0]).key()
        write_frame(sock, {"type": "upload",
                           "lease_id": lease["lease_id"],
                           "key": key, "elapsed_s": 0.0,
                           "error": None,
                           "report": "not an object"})
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "bad-upload"
        # The spec re-ran on the local pool; the client never knew.
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert results[0][0].error is None
        assert results[0][0].report.data["seed"] == 0
        assert daemon.stats.workers_lost == 1
        assert daemon.stats.leases_reassigned >= 1
        sock.close()
        self._daemon_alive(daemon)

    def test_upload_for_unheld_key_expels(self, start_daemon,
                                          fake_experiment):
        daemon = start_daemon()
        sock = self._register_hostile(daemon)
        thread, results = self._submit_in_background(
            daemon, fake_experiment.spec(1))
        lease = read_frame(sock)
        assert lease["type"] == "lease"
        write_frame(sock, {"type": "upload",
                           "lease_id": lease["lease_id"],
                           "key": "never-leased-to-me",
                           "elapsed_s": 0.0, "error": None,
                           "report": {}})
        reply = read_frame(sock)
        assert reply["code"] == "bad-upload"
        thread.join(timeout=30)
        assert results[0][0].error is None
        sock.close()
        self._daemon_alive(daemon)

    def test_oversized_frame_from_worker(self, start_daemon,
                                         fake_experiment):
        daemon = start_daemon()
        sock = self._register_hostile(daemon)
        thread, results = self._submit_in_background(
            daemon, fake_experiment.spec(2))
        assert read_frame(sock)["type"] == "lease"
        sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        reply = read_frame(sock)
        assert reply["code"] == "frame-too-large"
        assert read_frame(sock) is None  # connection closed
        thread.join(timeout=30)
        assert results[0][0].error is None
        assert daemon.stats.leases_reassigned >= 1
        sock.close()
        self._daemon_alive(daemon)

    def test_truncated_frame_from_worker_mid_lease(
            self, start_daemon, fake_experiment):
        daemon = start_daemon()
        sock = self._register_hostile(daemon)
        thread, results = self._submit_in_background(
            daemon, fake_experiment.spec(3))
        assert read_frame(sock)["type"] == "lease"
        sock.sendall(struct.pack(">I", 100) + b"only a few bytes")
        sock.close()
        thread.join(timeout=30)
        assert results[0][0].error is None
        assert daemon.stats.leases_reassigned >= 1
        self._daemon_alive(daemon)


class TestRetryPolicy:
    def test_delays_bounded_by_exponential_cap(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.1,
                             max_delay_s=0.4, jitter=0.5)
        delays = list(policy.delays(random.Random(7)))
        assert len(delays) == 6
        for attempt, delay in enumerate(delays):
            cap = min(0.4, 0.1 * (2 ** attempt))
            assert cap * 0.5 <= delay <= cap

    def test_deterministic_given_seeded_rng(self):
        policy = RetryPolicy(max_attempts=4)
        assert list(policy.delays(random.Random(3))) == \
            list(policy.delays(random.Random(3)))

    def test_zero_attempts_means_no_delays(self):
        assert list(RetryPolicy(max_attempts=0)
                    .delays(random.Random(0))) == []

    def test_jitter_bounds_hold_across_seeded_policies(self):
        # Property-style: for a grid of policies and many seeded
        # draws, every delay lands in [cap·(1-jitter), cap] and the
        # deterministic floor never collapses to zero.  No sleeps —
        # delays are computed, not waited on.
        rng = random.Random(0xC0FFEE)
        for _ in range(200):
            policy = RetryPolicy(
                max_attempts=rng.randrange(1, 9),
                base_delay_s=rng.uniform(0.01, 2.0),
                max_delay_s=rng.uniform(2.0, 20.0),
                jitter=rng.uniform(0.0, 1.0))
            draw = random.Random(rng.randrange(1 << 30))
            delays = list(policy.delays(draw))
            assert len(delays) == policy.max_attempts
            for attempt, delay in enumerate(delays):
                cap = min(policy.max_delay_s,
                          policy.base_delay_s * (2.0 ** attempt))
                floor = cap * (1.0 - min(1.0, policy.jitter))
                assert floor - 1e-9 <= delay <= cap + 1e-9
                assert delay > 0.0

    def test_no_jitter_is_exactly_the_cap(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.5,
                             max_delay_s=3.0, jitter=0.0)
        assert list(policy.delays(random.Random(1))) == \
            [0.5, 1.0, 2.0, 3.0, 3.0]


class TestReconnectClient:
    def test_client_retries_connection_refused(self, tmp_path):
        # Nothing is listening: the client must retry with backoff,
        # then raise a ServiceError (not a bare socket error) that
        # names how many tries it burned.
        started = time.monotonic()
        with pytest.raises(ServiceError, match="reconnect") as excinfo:
            execute_via_server(
                str(tmp_path / "nobody-home.sock"),
                [RunSpec("e4", quick=True)],
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.05,
                                  max_delay_s=0.1))
        assert "3 tries total" in str(excinfo.value)
        assert time.monotonic() - started < 30


class TestJournal:
    """The write-ahead journal as a data structure."""

    def test_replay_is_queued_minus_settled(self, tmp_path):
        path = journal_path(tmp_path)
        journal = ServiceJournal(path)
        spec_a = RunSpec("e4", quick=True)
        spec_b = RunSpec("e4", quick=True, seed=1)
        journal.record_queued(spec_a.key(), spec_a.canonical())
        journal.record_queued(spec_b.key(), spec_b.canonical())
        journal.record_leased(spec_a.key(), "local")
        journal.record_settled(spec_a.key(), None)
        journal.close()
        debt = replay(path)
        assert set(debt) == {spec_b.key()}
        assert debt[spec_b.key()] == spec_b.canonical()

    def test_drained_marker_wipes_the_slate(self, tmp_path):
        path = journal_path(tmp_path)
        journal = ServiceJournal(path)
        spec = RunSpec("e4", quick=True)
        journal.record_queued(spec.key(), spec.canonical())
        journal.record_drained()
        journal.close()
        assert replay(path) == {}

    def test_torn_tail_keeps_everything_before_the_tear(self,
                                                        tmp_path):
        path = journal_path(tmp_path)
        journal = ServiceJournal(path)
        spec = RunSpec("e4", quick=True)
        journal.record_queued(spec.key(), spec.canonical())
        journal.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"op": "settled", "key": "' + spec.key())
        # The settled record was torn mid-write: it must not count,
        # and the queued record before the tear must survive.
        assert set(replay(path)) == {spec.key()}

    def test_recover_compacts_to_the_live_set(self, tmp_path):
        path = journal_path(tmp_path)
        journal = ServiceJournal(path)
        live = RunSpec("e4", quick=True)
        dead = RunSpec("e4", quick=True, seed=9)
        journal.record_queued(dead.key(), dead.canonical())
        journal.record_settled(dead.key(), None)
        journal.record_queued(live.key(), live.canonical())
        journal.close()
        reopened, debt = ServiceJournal.recover(tmp_path)
        reopened.close()
        assert set(debt) == {live.key()}
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1  # compacted: the dead pair is gone
        assert json.loads(lines[0])["key"] == live.key()

    def test_compaction_interleaved_with_quarantines(self, tmp_path):
        # Quarantine records interleaved with queue/settle churn must
        # survive every compaction — compaction rewrites the file and
        # a lost quarantine would let a restart re-run a poison spec.
        from repro.service.journal import replay_full

        path = journal_path(tmp_path)
        journal = ServiceJournal(path)
        live = {}
        for round_no in range(3):
            for i in range(4):
                spec = RunSpec("e4", quick=True,
                               seed=round_no * 10 + i)
                journal.record_queued(spec.key(), spec.canonical())
                live[spec.key()] = spec.canonical()
                if i % 2 == 0:
                    journal.record_settled(spec.key(), None)
                    live.pop(spec.key())
            poison = RunSpec("e4", quick=True,
                             seed=1000 + round_no)
            journal.record_queued(poison.key(), poison.canonical())
            journal.record_quarantined(poison.key(), "TIMEOUT",
                                       f"round {round_no}")
            journal.quarantined[poison.key()] = {
                "kind": "TIMEOUT", "error": f"round {round_no}"}
            # Compact mid-campaign, exactly as a long-lived daemon
            # would once the dead-record count crosses the threshold.
            journal.compact(live)
        journal.close()
        recovered_live, recovered_quarantined = replay_full(path)
        assert recovered_live == live
        assert set(recovered_quarantined) == {
            RunSpec("e4", quick=True, seed=1000 + r).key()
            for r in range(3)}
        assert recovered_quarantined[
            RunSpec("e4", quick=True, seed=1002).key()]["error"] == \
            "round 2"
        # Quarantine lines are written ahead of live ones, so a torn
        # compaction can only ever lose runnable work, never a lock.
        first = json.loads(path.read_text().splitlines()[0])
        assert first["op"] == "quarantined"

    def test_mirror_matches_record_methods(self, tmp_path):
        # The standby's mirror() path and the primary's record_*
        # methods must produce byte-identical journals for the same
        # stream of operations — that is what makes promotion exactly
        # --resume.
        spec = RunSpec("e4", quick=True)
        primary_path = journal_path(tmp_path / "primary")
        mirror_path = journal_path(tmp_path / "mirror")
        primary = ServiceJournal(primary_path)
        mirror = ServiceJournal(mirror_path)
        primary.on_append = mirror.mirror
        primary.record_queued(spec.key(), spec.canonical())
        primary.record_leased(spec.key(), "local")
        primary.record_quarantined(spec.key(), "OOM", "boom")
        primary.record_drained()
        primary.close()
        mirror.close()
        assert primary_path.read_bytes() == mirror_path.read_bytes()
        assert mirror.quarantined[spec.key()]["kind"] == "OOM"


class TestDaemonRecovery:
    """Crash recovery: ``--resume`` replays the journal's debt."""

    def test_resume_requeues_and_runs_journal_debt(
            self, start_daemon, fake_experiment, tmp_path):
        cache_root = tmp_path / "recover-cache"
        specs = [fake_experiment.spec(seed) for seed in range(2)]
        journal = ServiceJournal(journal_path(cache_root))
        for spec in specs:
            journal.record_queued(spec.key(), spec.canonical())
        journal.close()
        # The restarted daemon owes these specs to clients that have
        # not reconnected yet: they must run with zero subscribers.
        daemon = start_daemon(cache_dir=str(cache_root))
        assert daemon.stats.recovered_jobs == 2
        _wait_until(lambda: daemon.stats.executed == 2,
                    what="recovered jobs to execute")
        # A reconnecting client resubmits and reads pure cache hits:
        # zero client-visible loss, nothing ran twice.
        outcomes = execute_via_server(daemon.bound_address, specs)
        assert all(o.cached and o.error is None for o in outcomes)
        assert [o.report.data["seed"] for o in outcomes] == [0, 1]
        assert all(count == 1
                   for count in fake_experiment.calls.values())

    def test_no_resume_forgets_the_journal(self, start_daemon,
                                           fake_experiment, tmp_path):
        cache_root = tmp_path / "fresh-cache"
        spec = fake_experiment.spec(7)
        journal = ServiceJournal(journal_path(cache_root))
        journal.record_queued(spec.key(), spec.canonical())
        journal.close()
        daemon = start_daemon(cache_dir=str(cache_root), resume=False)
        assert daemon.stats.recovered_jobs == 0
        assert replay(journal_path(cache_root)) == {}  # wiped
        assert sum(fake_experiment.calls.values()) == 0

    def test_garbage_in_journal_is_skipped(self, start_daemon,
                                           tmp_path):
        cache_root = tmp_path / "garbage-cache"
        journal = ServiceJournal(journal_path(cache_root))
        journal.record_queued("bogus-key", {"not": "a spec"})
        journal.close()
        daemon = start_daemon(cache_dir=str(cache_root))
        assert daemon.stats.recovered_jobs == 0
        assert daemon.wait_ready(1)  # the daemon survived the replay

    def test_clean_drain_leaves_no_debt(self, tmp_path,
                                        fake_experiment):
        cache_root = tmp_path / "drain-cache"
        daemon = ReproDaemon("127.0.0.1:0", jobs=1, quiet=True,
                             cache_dir=str(cache_root))
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        try:
            assert daemon.wait_ready(10)
            outcomes = execute_via_server(daemon.bound_address,
                                          [fake_experiment.spec(4)])
            assert outcomes[0].error is None
        finally:
            daemon.request_shutdown()
            thread.join(timeout=15)
        assert not thread.is_alive()
        assert replay(journal_path(cache_root)) == {}

    def test_journal_retires_settled_keys_live(self, start_daemon,
                                               fake_experiment,
                                               tmp_path):
        cache_root = tmp_path / "live-cache"
        daemon = start_daemon(cache_dir=str(cache_root))
        execute_via_server(daemon.bound_address,
                           [fake_experiment.spec(2)])
        # Crash *now* and nothing would be owed: the settle record
        # followed the queued record into the journal.
        assert replay(journal_path(cache_root)) == {}


class TestWorkerReconnect:
    """Reconnect-without-requeue: a flap costs zero re-executions."""

    def test_flap_reclaims_leases_and_flushes_results(
            self, start_daemon, start_worker, fake_experiment):
        fake_experiment.gate.clear()
        daemon = start_daemon(local_execution=False,
                              lease_timeout_s=10.0)
        handle = start_worker(
            daemon.bound_address,
            retry=RetryPolicy(max_attempts=40, base_delay_s=0.05,
                              max_delay_s=0.1))
        specs = [fake_experiment.spec(seed) for seed in range(2)]
        results = []
        client = threading.Thread(
            target=lambda: results.append(
                execute_via_server(daemon.bound_address, specs)),
            daemon=True)
        client.start()
        assert fake_experiment.entered.wait(10), \
            "the worker never started executing"
        # Sever the connection out from under the worker — the
        # network flap, not a death: execution keeps running.
        sock = handle.worker._sock
        sock.shutdown(socket.SHUT_RDWR)
        _wait_until(lambda: daemon.stats.workers_flapped == 1,
                    what="the daemon to park the flapped worker")
        assert daemon.stats.leases_reassigned == 0
        fake_experiment.gate.set()
        client.join(timeout=30)
        assert not client.is_alive(), "client never got its results"
        (outcomes,) = results
        assert [o.report.data["seed"] for o in outcomes] == [0, 1]
        assert all(o.error is None for o in outcomes)
        # The reclaim did all the work: nothing was requeued, nothing
        # ran twice, and the flap-finished result arrived hub-ward as
        # a cache-push.
        assert daemon.stats.workers_reconnected == 1
        assert daemon.stats.leases_reclaimed >= 1
        assert daemon.stats.leases_reassigned == 0
        assert daemon.stats.cache_pushes >= 1
        assert handle.worker.reconnects == 1
        assert all(count == 1
                   for count in fake_experiment.calls.values())

    def test_stats_row_flags_flapping_worker(self, start_daemon,
                                             start_worker,
                                             fake_experiment):
        fake_experiment.gate.clear()
        daemon = start_daemon(local_execution=False,
                              lease_timeout_s=10.0)
        handle = start_worker(
            daemon.bound_address,
            retry=RetryPolicy(max_attempts=40, base_delay_s=0.2,
                              max_delay_s=0.3))
        results = []
        client = threading.Thread(
            target=lambda: results.append(
                execute_via_server(daemon.bound_address,
                                   [fake_experiment.spec(6)])),
            daemon=True)
        client.start()
        assert fake_experiment.entered.wait(10)
        handle.worker._sock.shutdown(socket.SHUT_RDWR)
        _wait_until(lambda: daemon.stats.workers_flapped == 1,
                    what="the flap to be parked")
        with ServiceClient(daemon.bound_address, timeout=10.0) as c:
            rows = c.stats()["workers"]
        if rows:  # the worker may already have reconnected
            assert rows[0]["status"] in ("up", "flapping")
        fake_experiment.gate.set()
        client.join(timeout=30)
        assert not client.is_alive()
        assert results[0][0].error is None

    def test_worker_exhausts_reconnects_exit_1(self):
        # A one-shot fake daemon: registers the worker, then dies for
        # good.  The worker must retry per policy, then give up with
        # exit code 1 (not 0, not a traceback).
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def serve_once():
            conn, _ = listener.accept()
            assert read_frame(conn)["type"] == "register"
            write_frame(conn, {"type": "registered", "worker_id": 1,
                               "reclaimed": 0,
                               "heartbeat_interval_s": 5.0,
                               "lease_timeout_s": 30.0,
                               "credit_window": 2})
            conn.close()
            listener.close()

        fake = threading.Thread(target=serve_once, daemon=True)
        fake.start()
        worker = ReproWorker(
            f"{host}:{port}", jobs=1, quiet=True,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.02,
                              max_delay_s=0.05))
        assert worker.run() == 1
        fake.join(timeout=5)


class TestCacheTransport:
    """The fleet cache rides the protocol: lookups settle hub-side,
    pushes merge worker results in, corruption is caught in transit."""

    def test_midcampaign_worker_executes_zero_warm_specs(
            self, start_daemon, start_worker, fake_experiment):
        daemon = start_daemon()
        specs = [fake_experiment.spec(seed) for seed in range(4)]
        first = execute_via_server(daemon.bound_address, specs)
        assert sum(fake_experiment.calls.values()) == 4
        # A worker joining mid-campaign: wide enough to win every
        # lease, but the cache-lookup must drop the whole batch.
        handle = start_worker(daemon.bound_address, jobs=8)
        again = execute_via_server(daemon.bound_address, specs)
        assert all(o.cached and o.error is None for o in again)
        assert [report_to_payload(o.report) for o in first] == \
            [report_to_payload(o.report) for o in again]
        assert daemon.stats.cache_lookup_hits == 4
        # The same counter must surface over the wire (what
        # `repro service stats --json` prints).
        with ServiceClient(daemon.bound_address) as client:
            assert client.stats()["cache_lookup_hits"] == 4
        # The daemon settles hits before the worker even reads the
        # cache-result, so the client can finish first — wait for the
        # worker's side of the story.
        _wait_until(lambda: handle.worker.specs_skipped_warm == 4,
                    what="the worker to drop the warm batch")
        # The acceptance criterion: zero executions anywhere.
        assert sum(fake_experiment.calls.values()) == 4

    def test_corrupted_cache_payload_evicted_and_reexecuted(
            self, start_daemon, start_worker, fake_experiment):
        daemon = start_daemon()
        spec = fake_experiment.spec(33)
        execute_via_server(daemon.bound_address, [spec])
        assert fake_experiment.calls[33] == 1
        # Bit-rot the stored report payload without touching the spec
        # half, so the digest check (not the spec check) must fire.
        path = daemon.cache.path_for(spec)
        entry = json.loads(path.read_text())
        entry["report"]["data"]["seed"] = 9999
        path.write_text(json.dumps(entry))
        handle = start_worker(daemon.bound_address, jobs=8)
        outcomes = execute_via_server(daemon.bound_address, [spec])
        # The corrupt entry was caught at cache-lookup time, evicted,
        # and the spec transparently re-executed on the worker.
        assert outcomes[0].error is None
        assert outcomes[0].report.data["seed"] == 33
        assert not outcomes[0].cached
        assert daemon.cache.stats.evictions >= 1
        assert daemon.stats.cache_lookup_misses >= 1
        assert fake_experiment.calls[33] == 2
        assert handle.worker.specs_completed >= 1
        # ... and the re-executed result healed the cache.
        healed = execute_via_server(daemon.bound_address, [spec])
        assert healed[0].cached
        assert healed[0].report.data["seed"] == 33

    def test_worker_local_cache_pushes_hub_ward(
            self, start_daemon, start_worker, fake_experiment,
            tmp_path):
        # A worker with a private cache full of history ships hits
        # into the hub as `cached` uploads (remote_cache_hits).
        spec = fake_experiment.spec(21)
        worker_cache = ResultCache(tmp_path / "worker-cache")
        runner = JobRunner(jobs=1, cache=worker_cache)
        runner.run([spec])
        assert fake_experiment.calls[21] == 1
        daemon = start_daemon(local_execution=False,
                              cache_dir=str(tmp_path / "hub-cache"))
        start_worker(daemon.bound_address,
                     cache_dir=str(tmp_path / "worker-cache"))
        outcomes = execute_via_server(daemon.bound_address, [spec])
        assert outcomes[0].error is None
        assert outcomes[0].report.data["seed"] == 21
        assert fake_experiment.calls[21] == 1  # served from the cache
        assert daemon.stats.remote_cache_hits == 1
        # The hub now owns the payload too: a fleetless resubmit hits.
        assert daemon.cache.load(spec) is not None


class TestWorkerSigterm:
    """Satellite: SIGTERM mid-lease exits fast; the daemon reassigns."""

    def test_sigterm_mid_lease_exits_within_5s(
            self, start_daemon, start_worker, fake_experiment,
            tmp_path):
        daemon = start_daemon(local_execution=False,
                              lease_timeout_s=1.0)
        address = daemon.bound_address
        script = textwrap.dedent("""
            import sys, time
            import repro.experiments as experiments
            from repro.experiments.base import ExperimentReport

            def slow(config):
                time.sleep(60)
                return ExperimentReport(experiment_id="esvc",
                                        title="slow", data={})

            experiments.ENTRY_POINTS["esvc"] = slow
            from repro.cli import main
            sys.exit(main(["worker", "--connect", sys.argv[1],
                           "--quiet"]))
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            pathlib.Path(__file__).parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, address],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            _wait_until(
                lambda: daemon.stats.workers_registered == 1,
                timeout=30, what="the subprocess worker to register")
            results = []
            client = threading.Thread(
                target=lambda: results.append(execute_via_server(
                    address, [fake_experiment.spec(0)])),
                daemon=True)
            client.start()
            _wait_until(
                lambda: any(w.leased
                            for w in daemon._workers.values()),
                what="the lease to land on the subprocess worker")
            started = time.monotonic()
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=5)
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, \
                f"worker took {elapsed:.1f}s to die on SIGTERM"
            assert code == 143, proc.stderr.read()
            # The daemon parks, times the flap out, and reassigns.
            _wait_until(
                lambda: daemon.stats.leases_reassigned >= 1,
                timeout=10, what="the lease to be reassigned")
            # An in-process worker (sharing the fixture's fast entry
            # point) picks the requeued spec up end-to-end.
            start_worker(address)
            client.join(timeout=30)
            assert not client.is_alive(), "client never completed"
            assert results[0][0].error is None
            assert results[0][0].report.data["seed"] == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
