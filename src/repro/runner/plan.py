"""Deterministic sweep planning and sharding.

The planner expands a sweep request — experiments × parameter grid ×
replicas — into a flat, deterministically ordered list of independent
:class:`~repro.runner.spec.RunSpec` jobs.  Determinism matters twice:

* the *same request always yields the same specs in the same order*, so
  cache keys are stable across machines and CI runs;
* per-replica seeds are *derived, not drawn*: replica ``i`` of an
  experiment gets the same seed whether it runs first or last, in this
  process or a worker — which is what makes ``--jobs N`` bit-identical
  to sequential execution.
"""

from __future__ import annotations

import hashlib
from itertools import product
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.runner.spec import RunSpec


def derive_seed(base_seed: int, experiment_id: str, replica: int) -> int:
    """A stable per-job seed.

    Hashing (rather than ``base_seed + replica``) keeps neighbouring
    replicas' RNG streams uncorrelated, the same discipline as the
    per-stream seeded generators in ``repro.sim.random``.
    """
    token = f"repro/{base_seed}/{experiment_id}/{replica}"
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def _grid_points(
        grid: Optional[Mapping[str, Sequence[Any]]]) -> List[Dict[str, Any]]:
    """Cartesian product of a parameter grid, deterministically ordered.

    Axes iterate in sorted-key order; values keep their given order.
    An empty/absent grid yields one empty point (the experiment's
    defaults).
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    return [dict(zip(keys, values))
            for values in product(*(list(grid[k]) for k in keys))]


def plan_runs(
    experiment_ids: Iterable[str],
    *,
    quick: bool = False,
    scheduler: Optional[str] = None,
    base_seed: Optional[int] = None,
    replicas: int = 1,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
) -> List[RunSpec]:
    """Expand a sweep into independent jobs.

    With ``replicas == 1`` and no ``base_seed`` each spec keeps
    ``seed=None`` (the experiment's historical default seeds — a plain
    ``repro run`` is the degenerate sweep).  Asking for several
    replicas, or naming a base seed, switches to derived per-replica
    seeds.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    specs: List[RunSpec] = []
    for experiment_id in experiment_ids:
        for point in _grid_points(grid):
            for replica in range(replicas):
                if base_seed is None and replicas == 1:
                    seed = None
                else:
                    seed = derive_seed(base_seed or 0, experiment_id,
                                       replica)
                specs.append(RunSpec(
                    experiment_id=experiment_id,
                    quick=quick,
                    seed=seed,
                    scheduler=scheduler,
                    overrides=point,
                ).validate())
    return specs


def shard(specs: Sequence[RunSpec], n_shards: int,
          shard_index: int) -> List[RunSpec]:
    """Round-robin shard ``shard_index`` of ``n_shards``.

    Striding (rather than chunking) balances shards when job cost
    correlates with plan position (e.g. e7 is always the slow tail).
    Every spec appears in exactly one shard; concatenating the shards
    in index-major order is a permutation of ``specs``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if not 0 <= shard_index < n_shards:
        raise ValueError(
            f"shard_index must be in [0, {n_shards}), got {shard_index}")
    return list(specs[shard_index::n_shards])


__all__ = ["plan_runs", "shard", "derive_seed"]
