"""Governance probe: an entry point that misbehaves on demand.

Resource governance (deadlines, memory ceilings, the hang watchdog,
quarantine) can only be tested against jobs that actually hang, bloat,
and die.  This module is that fault injector: a registered entry point
whose single ``behavior`` override selects a pathology, so chaos-style
tests and the CI ``governance-smoke`` drill can mix one poisoned spec
into an otherwise healthy sweep and assert the typed FAIL row.

Behaviors (``--set behavior=...``):

* ``ok`` (default) — a tiny deterministic report; the healthy control.
* ``hang`` — spins in short sleeps forever.  Interruptible: Python
  runs between sleeps, so the in-worker ``SIGALRM`` deadline lands.
* ``hang-hard`` — blocks ``SIGALRM`` first, then spins.  Models a hang
  inside a C extension where signal delivery never happens; only the
  supervisor-side watchdog (kill + requeue) can clear it.
* ``alloc`` — allocation bomb: hoards 1 MiB bytearrays up to
  ``alloc_cap_mb`` (default 2048).  Under a memory ceiling this raises
  ``MemoryError`` almost immediately; without one it stops at the cap
  and reports survival, so an ungoverned run still terminates.
* ``crash`` — ``os._exit(13)``: kills the worker process outright,
  exercising the crash-isolation requeue path.
* ``raise`` — an ordinary entry-point exception (``RuntimeError``).

Registered in ``ENTRY_POINTS`` only — deliberately absent from the
legacy ``EXPERIMENTS`` table so ``repro run all`` never trips it.
"""

from __future__ import annotations

import os
import time

from repro.experiments.base import ExperimentConfig, ExperimentReport

KNOWN_OVERRIDES = {"behavior", "alloc_cap_mb"}

#: Hoard growth unit for the allocation bomb.
_ALLOC_CHUNK_BYTES = 1024 * 1024


def run(config: ExperimentConfig) -> ExperimentReport:
    behavior = str(config.get("behavior", "ok"))
    if behavior == "hang":
        while True:
            time.sleep(0.05)
    if behavior == "hang-hard":
        import signal
        signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        try:
            while True:
                time.sleep(0.05)
        finally:  # pragma: no cover — only reached if somehow unwound
            signal.pthread_sigmask(signal.SIG_UNBLOCK, {signal.SIGALRM})
    if behavior == "crash":
        os._exit(13)
    if behavior == "raise":
        raise RuntimeError("probe raised on request")
    if behavior == "alloc":
        cap_mb = int(config.get("alloc_cap_mb", 2048))
        hoard = []
        for _ in range(cap_mb):
            # bytearray is written on construction: real pages, not a
            # lazy reservation — RLIMIT_AS trips deterministically.
            hoard.append(bytearray(_ALLOC_CHUNK_BYTES))
        del hoard
        return _report(config, behavior,
                       note=f"hoarded {cap_mb}MiB and survived")
    if behavior != "ok":
        raise ValueError(f"unknown probe behavior {behavior!r}")
    return _report(config, behavior, note="no fault injected")


def _report(config: ExperimentConfig, behavior: str,
            note: str) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="probe",
        title="governance probe (fault injector)",
        data={"behavior": behavior, "seed": config.seed,
              "quick": config.quick},
        expectations=[f"probe completed: {note}"],
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    return report
