"""Scenario registry and the library of named workloads.

The registry is the workload twin of the scheduler registry: register a
:class:`~repro.scenario.spec.Scenario` under its name and every
experiment, sweep and CLI invocation can select it with a string —
``repro scenario run incast --quick`` needs no Python.

The library covers the workload families the paper's motivation and the
related traffic studies name: benign uniform load, circuit-friendly
permutations, skewed hotspots and Zipf popularity (scale-free
bottlenecks), synchronized incast, the all-to-all shuffle of
partition/aggregate jobs, diurnal load swings, and a fault storm for
transient analysis.  Each entry is a plain frozen value — derive from
it (``get_scenario("incast").derive(n_ports=16)``) rather than editing
it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenario.spec import FaultEvent, Scenario, TrafficPhase
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario,
                      replace: bool = False) -> Scenario:
    """Register ``scenario`` under its name.

    Re-registering a name raises unless ``replace=True`` — silent
    replacement hides typos in sweep definitions.
    """
    if scenario.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> bool:
    """Remove a registration; returns whether ``name`` was registered."""
    return _REGISTRY.pop(name, None) is not None


def get_scenario(name: str) -> Scenario:
    """The scenario registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: "
            f"{sorted(_REGISTRY)}") from None


def available_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def scenario_summaries() -> Dict[str, str]:
    """``name -> one-line description`` for every registered scenario."""
    return {name: _REGISTRY[name].description
            for name in sorted(_REGISTRY)}


def _register_library() -> None:
    # A shared operating point: Mordia-class optics, FPGA scheduler
    # timing, a thin electrical residual path — the hybrid regime where
    # workload shape actually decides who carries the bytes.
    base = dict(
        n_ports=8,
        switching_time_ps=20 * MICROSECONDS,
        timing_preset="netfpga_sume",
        epoch_ps=200 * MICROSECONDS,
        default_slot_ps=160 * MICROSECONDS,
        eps_rate_bps=2.5 * GIGABIT,
        duration_ps=12 * MILLISECONDS,
        quick_duration_ps=3 * MILLISECONDS,
        seed=42,
    )

    register_scenario(Scenario(
        name="uniform",
        description="benign uniform Poisson load — the EPS-friendly "
                    "baseline every skewed workload is judged against",
        scheduler="islip",
        traffic=(TrafficPhase(pattern="uniform", source="poisson",
                              load=0.5),),
        **base))

    register_scenario(Scenario(
        name="hotspot",
        description="bursty ON/OFF elephants, 80% of each host's bytes "
                    "on one hot partner — circuits capture the bursts",
        scheduler="hotspot",
        scheduler_kwargs={"threshold_bytes": 20_000.0},
        traffic=(TrafficPhase(
            pattern="hotspot", source="onoff", load=0.45,
            pattern_kwargs={"skew": 0.8},
            source_kwargs={"mean_on_ps": 200 * MICROSECONDS,
                           "mean_off_ps": 250 * MICROSECONDS}),),
        **base))

    register_scenario(Scenario(
        name="permutation",
        description="every host streams to one fixed partner — the "
                    "pattern a circuit switch serves with one matching",
        scheduler="hotspot",
        traffic=(TrafficPhase(pattern="permutation", source="poisson",
                              load=0.7),),
        **base))

    register_scenario(Scenario(
        name="incast",
        description="7-to-1 fan-in onto host 0 — synchronized "
                    "partition/aggregate responses crushing one port",
        scheduler="hotspot",
        traffic=(TrafficPhase(
            pattern="incast", source="poisson", load=0.25,
            pattern_kwargs={"target": 0}),),
        **base))

    register_scenario(Scenario(
        name="all-to-all-shuffle",
        description="deterministic round-robin shuffle at high load — "
                    "the map/reduce exchange phase, dense demand",
        scheduler="solstice",
        scheduler_kwargs={"reconfig_ps": 20 * MICROSECONDS,
                          "min_slice_factor": 2.0,
                          "max_matchings": 4},
        traffic=(TrafficPhase(pattern="round-robin", source="poisson",
                              load=0.65),),
        **base))

    register_scenario(Scenario(
        name="skewed-zipf",
        description="Zipf(1.3) destination popularity — the scale-free "
                    "skew web/DC object traffic exhibits",
        scheduler="hotspot",
        traffic=(TrafficPhase(
            pattern="zipf", source="poisson", load=0.5,
            pattern_kwargs={"exponent": 1.3}),),
        **base))

    register_scenario(Scenario(
        name="diurnal",
        description="three-phase load swing (0.15 -> 0.65 -> 0.35 of "
                    "line rate) — web-conferencing-style daily cycle",
        scheduler="islip",
        traffic=(
            TrafficPhase(pattern="uniform", source="poisson",
                         load=0.15, streams="night",
                         until_ps=4 * MILLISECONDS),
            TrafficPhase(pattern="hotspot", source="onoff", load=0.65,
                         streams="day",
                         start_ps=4 * MILLISECONDS,
                         until_ps=8 * MILLISECONDS,
                         pattern_kwargs={"skew": 0.6},
                         source_kwargs={
                             "mean_on_ps": 150 * MICROSECONDS,
                             "mean_off_ps": 100 * MICROSECONDS}),
            TrafficPhase(pattern="uniform", source="poisson",
                         load=0.35, streams="evening",
                         start_ps=8 * MILLISECONDS),
        ),
        **base))

    register_scenario(Scenario(
        name="failure-storm",
        description="healthy uniform load hit by a link flap, a "
                    "scheduler stall and an OCS config corruption",
        scheduler="hotspot",
        traffic=(TrafficPhase(pattern="uniform", source="poisson",
                              load=0.35),),
        faults=(
            FaultEvent(kind="link-flap", at_ps=2 * MILLISECONDS,
                       duration_ps=1 * MILLISECONDS, target=0,
                       direction="up"),
            FaultEvent(kind="sched-stall", at_ps=5 * MILLISECONDS,
                       duration_ps=1500 * MICROSECONDS),
            FaultEvent(kind="ocs-corrupt",
                       at_ps=8 * MILLISECONDS + 40 * MICROSECONDS),
            FaultEvent(kind="link-flap", at_ps=9 * MILLISECONDS,
                       duration_ps=500 * MICROSECONDS, target=3,
                       direction="down"),
        ),
        **base))

    register_scenario(Scenario(
        name="datacenter-mix",
        description="elephants on circuits, web-search mice on the "
                    "EPS, a VOIP stream riding along — the paper's "
                    "introductory workload",
        scheduler="hotspot",
        scheduler_kwargs={"threshold_bytes": 50_000.0},
        traffic=(
            TrafficPhase(pattern="fixed", source="cbr", load=1.0,
                         hosts=(0,), pattern_kwargs={"dst": 4},
                         source_kwargs={"packet_bytes": 200,
                                        "period_ps": 200 * MICROSECONDS}),
            TrafficPhase(pattern="hotspot", source="onoff", load=0.21,
                         streams="elephant",
                         pattern_kwargs={"skew": 0.8},
                         source_kwargs={
                             "burst_fraction": 0.5,
                             "mean_on_ps": 300 * MICROSECONDS,
                             "mean_off_ps": 400 * MICROSECONDS}),
            TrafficPhase(pattern="uniform", source="flows", load=0.05,
                         streams="mice",
                         source_kwargs={"mix": "websearch"}),
        ),
        **{**base, "duration_ps": 10 * MILLISECONDS, "seed": 21}))


_register_library()

__all__ = [
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "scenario_summaries",
]
