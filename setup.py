"""Setuptools shim.

The pyproject.toml carries all metadata; this file exists so the package
installs in environments whose setuptools predates PEP 660 editable
wheels (``pip install -e . --no-build-isolation`` or
``python setup.py develop`` both work).
"""

from setuptools import setup

setup()
