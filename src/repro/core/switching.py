"""Switching logic: the OCS + EPS pair behind the processing logic.

Figure 2, right block.  The scheduling logic "sends the grant matrix to
the switching logic to configure the circuits in the OCS to match the
grant matrix"; granted traffic then rides the circuits while "residual
traffic can be sent through the EPS".

Both fabrics share the egress downlinks: an OCS-delivered and an
EPS-delivered packet to the same host interleave on the same wire, with
the link model serialising them FIFO.
"""

from __future__ import annotations

from typing import List

from repro.core.messages import CircuitConfig
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.trace import Counter
from repro.switches.eps import ElectricalPacketSwitch
from repro.switches.ocs import OpticalCircuitSwitch


class SwitchingLogic:
    """Owns the two fabrics and their shared egress links."""

    def __init__(self, sim: Simulator, ocs: OpticalCircuitSwitch,
                 eps: ElectricalPacketSwitch,
                 downlinks: List[Link]) -> None:
        if ocs.n_ports != eps.n_ports or ocs.n_ports != len(downlinks):
            raise ConfigurationError(
                f"port-count mismatch: ocs={ocs.n_ports} eps={eps.n_ports} "
                f"downlinks={len(downlinks)}")
        self.sim = sim
        self.ocs = ocs
        self.eps = eps
        self.downlinks = downlinks
        self.configs_applied = Counter("switching.configs")
        for port, link in enumerate(downlinks):
            ocs.connect_output(port, link.send)
            eps.connect_output(port, link.send)

    @property
    def n_ports(self) -> int:
        """Switch radix."""
        return self.ocs.n_ports

    # -- control plane -------------------------------------------------------

    def configure(self, config: CircuitConfig) -> int:
        """Apply a circuit configuration; returns the OCS-ready time."""
        self.configs_applied.add(1)
        return self.ocs.configure(config.matching)

    # -- data plane -----------------------------------------------------------

    def send_ocs(self, packet: Packet) -> bool:
        """Inject a packet into the optical fabric."""
        return self.ocs.receive(packet)

    def send_ocs_batch(self, packets: List[Packet],
                       times: List[int]) -> bool:
        """Inject a batched drain run into the optical fabric."""
        return self.ocs.receive_batch(packets, times)

    def send_eps(self, packet: Packet) -> bool:
        """Inject a packet into the electrical fabric."""
        return self.eps.receive(packet)


__all__ = ["SwitchingLogic"]
