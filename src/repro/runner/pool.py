"""Persistent warm-worker pool: spawn once, stream jobs forever.

The PR-1 executor paid one ``multiprocessing.Pool`` construction —
process spawn plus a full ``import repro`` — per ``execute()`` call.
For sweep workloads (many short jobs per CLI invocation, many
invocations per study) that overhead rivals the work.  This module
keeps one pool of warm workers alive for the whole process, grown to
the largest parallelism requested (smaller ``--jobs`` values use a
subset of it):

* **Warm workers** — each worker preloads ``repro.experiments`` and
  ``repro.scenario`` once at startup, then loops on its task queue.
* **Batched dispatch** — items are grouped into contiguous chunks
  (dynamic: ~4 chunks per worker, capped) so queue round-trips are
  amortised over several jobs; a credit scheme (at most two chunks in
  flight per worker) keeps late stragglers load-balanced.
* **Zero-copy result transport** — results above a size threshold
  travel through ``multiprocessing.shared_memory`` instead of the
  result pipe: the worker writes the pickle into a shared segment and
  sends only its name; the parent unpickles straight out of the mapped
  buffer and unlinks it, so large report payloads never stream through
  the pipe's chunked writes.
* **Deterministic teardown** — workers ignore SIGINT (the parent owns
  interrupts and force-terminates the pool on ``KeyboardInterrupt``); a
  *crashed* worker's in-flight chunks are re-dispatched item-by-item
  exactly once, so a poisonous item is isolated and surfaced as a
  :class:`WorkerCrashError` carrying its index while every other item
  still completes.  Nothing hangs and nothing is silently dropped.
* **Resource governance** — an ``imap`` stream may carry
  :class:`~repro.runner.governance.ResourceLimits`: each job then runs
  under a wall-clock alarm and a lowered ``RLIMIT_AS`` inside the
  worker, returning typed ``GovernedFailure`` values (TIMEOUT/OOM)
  in-band instead of results.  A supervisor-side **hang watchdog**
  backstops the alarm: a worker silent past ``deadline × grace`` for a
  chunk (a job hung in a C loop where signals never land) is SIGKILLed
  and its chunk requeued through the crash-isolation path, with the
  isolated poison surfaced as a TIMEOUT instead of a CRASH.

Ordinary Python exceptions raised by a job do **not** kill workers:
they are pickled back and re-raised in the parent at the failing item's
position in the stream, preserving the PR-1 contract that results
yielded before the raise were already consumed (e.g. cached).
"""

from __future__ import annotations

import atexit
import itertools
import pickle
import queue
import signal
import sys
import time
import traceback
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.runner.governance import (
    FAIL_CRASH,
    FAIL_TIMEOUT,
    ResourceLimits,
    governed_call,
)

#: ``fork`` keeps worker start cheap and — unlike ``spawn`` — does not
#: re-execute ``__main__``, so on Linux the pool is safe to start from
#: any host program (REPLs, pytest, piped scripts).  Everywhere else we
#: follow CPython's own default: macOS offers fork but is fork-unsafe
#: once BLAS/framework threads exist in the parent (the reason 3.8
#: switched darwin to spawn), and Windows has no fork.  Under
#: ``spawn``, callers need the standard ``if __name__ == "__main__"``
#: guard.
_START_METHOD = "fork" if sys.platform == "linux" else "spawn"

#: Pickled results at least this large travel via shared memory.
SHM_THRESHOLD_BYTES = 256 * 1024

#: Maximum chunks in flight per worker (credit scheme).
_CREDITS_PER_WORKER = 2

#: Upper bound on items per dispatched chunk.
_MAX_CHUNK = 16

#: Total teardown budget for :meth:`WarmWorkerPool.shutdown` — one
#: bounded deadline for the whole pool, not stacked per-worker joins.
SHUTDOWN_DEADLINE_S = 5.0


class WorkerCrashError(RuntimeError):
    """A worker process died executing one specific item.

    Raised only after the crash has been isolated to a single item by
    the retry protocol (chunk crash → per-item re-dispatch → second
    crash).  ``item_index`` is the position of the poisonous item in
    the ``imap`` input sequence.  ``kind`` is the failure-taxonomy tag:
    ``CRASH`` for a genuine worker death, ``TIMEOUT`` when the hang
    watchdog shot the worker for exceeding the chunk deadline.
    """

    def __init__(self, message: str, item_index: int,
                 kind: str = FAIL_CRASH) -> None:
        super().__init__(message)
        self.item_index = item_index
        self.kind = kind


def _dumps_exception(exc: BaseException) -> bytes:
    """Round-trip-checked pickle of an exception (fallback: repr)."""
    try:
        payload = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.loads(payload)  # some exceptions pickle but not load
        return payload
    except Exception:
        return pickle.dumps(
            RuntimeError(f"{type(exc).__name__}: {exc}"),
            protocol=pickle.HIGHEST_PROTOCOL)


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: preload the heavy imports once, then serve chunks."""
    # The parent owns interrupt handling; a ^C must tear the pool down
    # from one place instead of racing n KeyboardInterrupts.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # fork() copies the parent's Python-level SIGTERM handler (a CLI
    # entry point like ``serve --standby`` installs one); inherited,
    # it would swallow the SIGTERM multiprocessing sends daemonic
    # children at exit and deadlock the parent's untimed join.  A
    # pool worker must stay plainly killable.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    import repro.experiments  # noqa: F401  (warm the entry points)
    import repro.scenario  # noqa: F401

    from multiprocessing import shared_memory

    while True:
        task = task_queue.get()
        if task is None:
            break
        task_id, fn, items, limits = task
        governed = limits is not None and limits.enabled
        results: List[Any] = []
        failure: Optional[Tuple[int, bytes, str]] = None
        for index, item in enumerate(items):
            try:
                if governed:
                    # TIMEOUT/OOM come back as in-band GovernedFailure
                    # values — the chunk keeps going, one job pays.
                    results.append(governed_call(fn, item, limits))
                else:
                    results.append(fn(item))
            except BaseException as exc:  # noqa: BLE001 — forwarded
                failure = (index, _dumps_exception(exc),
                           traceback.format_exc())
                break
        payload = pickle.dumps((results, failure),
                               protocol=pickle.HIGHEST_PROTOCOL)
        # Windows destroys a named segment when its last handle closes,
        # so the close-then-attach handoff below would race the parent;
        # results take the pipe there instead.
        if (len(payload) >= SHM_THRESHOLD_BYTES
                and sys.platform != "win32"):
            segment = shared_memory.SharedMemory(create=True,
                                                 size=len(payload))
            segment.buf[:len(payload)] = payload
            segment.close()
            result_queue.put(("shm", task_id, segment.name,
                              len(payload)))
        else:
            result_queue.put(("inline", task_id, payload))


class WarmWorkerPool:
    """A growable pool of persistent workers (see module docstring).

    Use :func:`get_pool` rather than constructing directly: one pool
    is cached process-wide and lives until process exit, which is the
    whole point — the second sweep of a session pays zero spawn or
    import cost.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        import multiprocessing

        self._ctx = multiprocessing.get_context(_START_METHOD)
        # Make sure the shared-memory resource tracker exists *before*
        # workers fork, so parent and children talk to one tracker and
        # a parent-side unlink fully retires a worker-created segment.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover — tracker is best-effort
            pass
        self.workers = workers
        self._result_queue = self._ctx.Queue()
        self._task_ids = itertools.count()
        self._procs: List[Any] = []
        self._task_queues: List[Any] = []
        self._outstanding: List[Set[int]] = []
        #: task_id -> (fn, items, start index, attempt)
        self._tasks: Dict[int, Tuple[Callable, List[Any], int, int]] = {}
        #: task ids whose results should be dropped (abandoned imap).
        self._discard: Set[int] = set()
        #: task_id -> monotonic dispatch time (hang-watchdog clock).
        self._task_started: Dict[int, float] = {}
        #: task ids whose worker the watchdog killed (overdue chunks).
        self._watchdog_killed: Set[int] = set()
        #: worker indices the watchdog killed — their *other* chunks
        #: are innocent bystanders and requeue with attempt preserved.
        self._watchdog_victims: Set[int] = set()
        self._streaming = False
        self._closed = False
        for __ in range(workers):
            self._spawn_worker()

    # -- worker lifecycle -------------------------------------------------------

    def _spawn_worker(self, index: Optional[int] = None) -> None:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main, args=(task_queue, self._result_queue),
            daemon=True)
        process.start()
        if index is None:
            self._procs.append(process)
            self._task_queues.append(task_queue)
            self._outstanding.append(set())
        else:
            self._procs[index] = process
            self._task_queues[index] = task_queue
            self._outstanding[index] = set()

    @property
    def alive(self) -> bool:
        """True while the pool is usable (a dead worker is replaced on
        the fly, so only a shutdown pool is dead)."""
        return not self._closed

    def shutdown(self, force: bool = False,
                 deadline_s: float = SHUTDOWN_DEADLINE_S) -> None:
        """Stop the workers: join → terminate → kill under one budget.

        Teardown escalates against a single total deadline for the
        whole pool instead of stacking per-worker timeouts: the polite
        sentinel drain gets the first half of the budget, terminate
        gets the rest, and any worker still alive after that (hung in
        uninterruptible state) is SIGKILLed.  Worst case a 16-worker
        pool tears down in ~``deadline_s``, not 16 × 3s.
        """
        if self._closed:
            return
        self._closed = True
        start = time.monotonic()
        for index, process in enumerate(self._procs):
            if force:
                process.terminate()
            else:
                try:
                    self._task_queues[index].put(None)
                except Exception:
                    process.terminate()
        # Phase 1: polite join, capped at half the budget so a worker
        # mid-job cannot eat the terminate phase's share.
        self._join_until(start + deadline_s / 2)
        stubborn = [p for p in self._procs if p.is_alive()]
        if stubborn:
            for process in stubborn:
                process.terminate()
            self._join_until(start + deadline_s)
        for process in self._procs:
            if not process.is_alive():
                continue
            # Beyond SIGTERM's reach: SIGKILL cannot be ignored.
            kill = getattr(process, "kill", process.terminate)
            kill()
            process.join(timeout=1.0)

    def _join_until(self, deadline: float) -> None:
        """Join every live worker against one shared deadline."""
        for process in self._procs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            if process.is_alive():
                process.join(timeout=remaining)

    # -- dispatch ---------------------------------------------------------------

    def grow_to(self, workers: int) -> None:
        """Spawn additional workers so at least ``workers`` exist."""
        while len(self._procs) < workers:
            self._spawn_worker()
        self.workers = len(self._procs)

    def _pick_worker(self, limit: int) -> Optional[int]:
        """Least-loaded alive worker (among the first ``limit``) with a
        free credit, or None."""
        best = None
        best_load = _CREDITS_PER_WORKER
        for index, process in enumerate(self._procs[:limit]):
            if not process.is_alive():
                continue
            load = len(self._outstanding[index])
            if load < best_load:
                best = index
                best_load = load
        return best

    def _dispatch_backlog(self, backlog: deque, active: Set[int],
                          limit: int,
                          limits: Optional[ResourceLimits] = None) -> None:
        """Hand backlog chunks to free credits (front of queue first)."""
        while backlog:
            worker = self._pick_worker(limit)
            if worker is None:
                return
            fn, items, start, attempt = backlog.popleft()
            task_id = next(self._task_ids)
            self._tasks[task_id] = (fn, items, start, attempt)
            self._outstanding[worker].add(task_id)
            active.add(task_id)
            self._task_started[task_id] = time.monotonic()
            self._task_queues[worker].put((task_id, fn, items, limits))

    def _settle(self, task_id: int) -> Tuple[Callable, List[Any], int, int]:
        for outstanding in self._outstanding:
            outstanding.discard(task_id)
        self._task_started.pop(task_id, None)
        # A result that raced the watchdog's kill still counts: drop
        # the stale kill mark so the reap doesn't mistype survivors.
        self._watchdog_killed.discard(task_id)
        return self._tasks.pop(task_id)

    def _watchdog_sweep(self, limits: Optional[ResourceLimits]) -> None:
        """Kill workers whose oldest chunk is past ``deadline × grace``.

        The in-worker alarm normally converts an overrun into an
        in-band TIMEOUT; a worker still silent past the watchdog
        deadline is hung where signals cannot reach (C inner loop,
        blocked SIGALRM) and only SIGKILL clears it.  The kill routes
        the chunk through :meth:`_reap_crashed_workers`, which types
        the isolated poison as TIMEOUT rather than CRASH.
        """
        if limits is None or limits.timeout_s is None:
            return
        now = time.monotonic()
        for index, process in enumerate(self._procs):
            if not process.is_alive():
                continue
            for task_id in self._outstanding[index]:
                started = self._task_started.get(task_id)
                task = self._tasks.get(task_id)
                if started is None or task is None:
                    continue
                deadline = limits.watchdog_deadline_s(len(task[1]))
                if now - started <= deadline:
                    continue
                self._watchdog_killed.add(task_id)
                self._watchdog_victims.add(index)
                kill = getattr(process, "kill", process.terminate)
                kill()
                break  # the worker is gone; its other chunks reap too

    def _load_payload(self, message) -> Tuple[List[Any], Optional[tuple]]:
        if message[0] == "inline":
            return pickle.loads(message[2])
        from multiprocessing import shared_memory

        name, size = message[2], message[3]
        segment = shared_memory.SharedMemory(name=name)
        try:
            # Unpickle straight from the mapped buffer — the payload
            # never travels through the result pipe.
            return pickle.loads(segment.buf[:size])
        finally:
            segment.close()
            segment.unlink()

    def _reap_crashed_workers(self, backlog: deque,
                              crashes: Dict[int, Tuple[str, str]]) -> None:
        """Requeue dead workers' chunks; record isolated poison items.

        First crash of a chunk: split into single-item chunks at the
        *front* of the backlog (deterministic isolation).  Crash of an
        isolation retry: that item is the poison — recorded in
        ``crashes`` as ``(kind, message)`` for the stream to raise at
        its position.  Watchdog kills are typed TIMEOUT; chunks that
        merely shared a watchdog-killed worker are innocent and
        requeue intact with their attempt count preserved.
        """
        for index, process in enumerate(self._procs):
            if process.is_alive():
                continue
            died = sorted(self._outstanding[index])
            victim = index in self._watchdog_victims
            self._watchdog_victims.discard(index)
            self._spawn_worker(index)
            for task_id in reversed(died):
                fn, items, start, attempt = self._tasks.pop(task_id)
                self._task_started.pop(task_id, None)
                timed_out = task_id in self._watchdog_killed
                self._watchdog_killed.discard(task_id)
                if task_id in self._discard:
                    self._discard.discard(task_id)
                    continue
                if timed_out:
                    if len(items) == 1:
                        crashes[start] = (FAIL_TIMEOUT, (
                            f"watchdog killed job #{start}: no result "
                            "past deadline × grace (job hung beyond "
                            "signal reach)"))
                        continue
                    # Isolate: one of these items is the hang.
                    for offset in reversed(range(len(items))):
                        backlog.appendleft(
                            (fn, items[offset:offset + 1],
                             start + offset, attempt))
                    continue
                if victim:
                    # Bystander chunk on a watchdog-killed worker —
                    # replay unchanged, no attempt charged.
                    backlog.appendleft((fn, items, start, attempt))
                    continue
                if attempt > 0:
                    crashes[start] = (FAIL_CRASH, (
                        "worker process died twice executing job "
                        f"#{start}"))
                    continue
                for offset in reversed(range(len(items))):
                    backlog.appendleft(
                        (fn, items[offset:offset + 1],
                         start + offset, 1))

    def imap(self, fn: Callable, items: Sequence,
             chunk_size: Optional[int] = None,
             limit: Optional[int] = None,
             limits: Optional[ResourceLimits] = None) -> Iterator[Any]:
        """Ordered, streaming parallel map over the warm workers.

        Results are yielded in item order as chunks complete.  An
        ordinary exception in ``fn`` re-raises at its item's position
        (everything before it has been yielded).  A worker crash
        re-raises :class:`WorkerCrashError` at the poisonous item's
        position after the isolation retry; items before it have been
        yielded, items after it are recoverable by re-mapping the tail.
        ``limit`` caps how many of the pool's workers this stream may
        use (``--jobs`` smaller than the pool size).  ``limits``
        enables per-job governance: deadline overruns and memory-
        ceiling hits are *yielded* as in-band ``GovernedFailure``
        values at the job's position, and the hang watchdog converts a
        silent worker into a TIMEOUT instead of letting the stream
        stall forever.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        if self._streaming:
            raise RuntimeError("one imap stream at a time per pool")
        items = list(items)
        if not items:
            return
        limit = self.workers if limit is None \
            else max(1, min(limit, self.workers))
        if chunk_size is None:
            chunk_size = max(1, min(
                _MAX_CHUNK,
                (len(items) + 4 * limit - 1) // (4 * limit)))
        backlog: deque = deque(
            (fn, items[start:start + chunk_size], start, 0)
            for start in range(0, len(items), chunk_size))
        results: Dict[int, Any] = {}
        errors: Dict[int, Tuple[BaseException, str]] = {}
        crashes: Dict[int, Tuple[str, str]] = {}
        active: Set[int] = set()
        self._streaming = True
        try:
            self._dispatch_backlog(backlog, active, limit, limits)
            next_index = 0
            while next_index < len(items):
                if next_index in results:
                    value = results.pop(next_index)
                    next_index += 1
                    yield value
                    continue
                if next_index in crashes:
                    kind, message_text = crashes[next_index]
                    raise WorkerCrashError(message_text, next_index,
                                           kind=kind)
                if next_index in errors:
                    exc, text = errors[next_index]
                    raise exc from RuntimeError(
                        f"worker traceback:\n{text}")
                try:
                    message = self._result_queue.get(timeout=0.25)
                except queue.Empty:
                    self._watchdog_sweep(limits)
                    self._reap_crashed_workers(backlog, crashes)
                    self._dispatch_backlog(backlog, active, limit,
                                           limits)
                    continue
                task_id = message[1]
                if task_id in self._discard:
                    # Stale result of an abandoned stream: release any
                    # shared segment, free the credit, move on.
                    self._discard.discard(task_id)
                    self._settle(task_id)
                    self._load_payload(message)
                    self._dispatch_backlog(backlog, active, limit,
                                           limits)
                    continue
                __, chunk, start, __attempt = self._settle(task_id)
                active.discard(task_id)
                chunk_results, failure = self._load_payload(message)
                for offset, value in enumerate(chunk_results):
                    results[start + offset] = value
                if failure is not None:
                    fail_offset, exc_payload, text = failure
                    errors[start + fail_offset] = (
                        pickle.loads(exc_payload), text)
                self._dispatch_backlog(backlog, active, limit, limits)
        except KeyboardInterrupt:
            # Deterministic teardown: no orphaned workers, no hang on
            # a queue feeder thread mid-^C.
            self.shutdown(force=True)
            _forget_pool(self)
            raise
        finally:
            self._streaming = False
            # An abandoned generator (consumer raised or closed early)
            # leaves its in-flight results to be drained lazily by the
            # next stream.
            self._discard.update(active & set(self._tasks))


_POOL: Optional[WarmWorkerPool] = None


def get_pool(workers: int) -> WarmWorkerPool:
    """The process-wide warm pool, grown to ``workers`` parallelism.

    One pool serves every ``--jobs`` value: it grows to the largest
    parallelism ever requested (smaller requests are enforced by
    ``imap``'s ``limit``), so varying ``--jobs`` in one process never
    accumulates duplicate worker fleets.  A dead pool (e.g. after a
    forced shutdown) is replaced transparently.
    """
    global _POOL
    if _POOL is None or not _POOL.alive:
        _POOL = WarmWorkerPool(workers)
    else:
        _POOL.grow_to(workers)
    return _POOL


def _forget_pool(pool: WarmWorkerPool) -> None:
    global _POOL
    if _POOL is pool:
        _POOL = None


def shutdown_pools(force: bool = False) -> None:
    """Shut down the cached pool (atexit, and tests)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(force=force)
        _POOL = None


atexit.register(shutdown_pools, True)

__all__ = [
    "WarmWorkerPool",
    "WorkerCrashError",
    "get_pool",
    "shutdown_pools",
    "SHM_THRESHOLD_BYTES",
    "SHUTDOWN_DEADLINE_S",
]
