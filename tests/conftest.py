"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.net.packet import reset_packet_ids
from repro.sim.engine import Simulator


@pytest.fixture()
def sim() -> Simulator:
    """Fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    """Reset the global packet-id counter per test for stable asserts."""
    reset_packet_ids()
    yield


def make_packet(src=0, dst=1, size=1500, created_ps=0, flow_id=0,
                priority=0):
    """Loose helper used across test modules."""
    from repro.net.packet import Packet

    return Packet(src=src, dst=dst, size=size, created_ps=created_ps,
                  flow_id=flow_id, priority=priority)
