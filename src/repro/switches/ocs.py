"""Optical Circuit Switch model.

The OCS is a crossbar of light paths: once configured with a (partial)
permutation it forwards at line rate with essentially zero added latency
(light in, light out — only propagation).  Its defining cost is the
**reconfiguration blackout**: "during the switching time ... no packets
can be sent through the switch and hence need to be buffered" (§2).

The switching time is the paper's central swept parameter — from
milliseconds (3D-MEMS, c-Through/Helios era) through microseconds
(Mordia-class) down to nanoseconds (the PLZT switch the paper cites).

Model contract
--------------

* :meth:`configure` starts a blackout of ``switching_time_ps``; the new
  circuits carry traffic only after it ends.  Packets arriving during a
  blackout, or at an input whose circuit does not lead to their
  destination, are *dark drops* — a real OCS would misdeliver or lose
  them.  The framework's processing logic is responsible for never
  letting that happen (that is exactly the synchronisation problem the
  paper describes); the drop counters exist to expose protocol bugs and
  to measure the cost of clock skew in E8.
* Transit delay through the configured crossbar is ``transit_ps``
  (pure propagation, default 10 ns).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.schedulers.matching import Matching
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.time import NANOSECONDS
from repro.sim.trace import Counter


class OpticalCircuitSwitch:
    """Circuit crossbar with reconfiguration blackout.

    Parameters
    ----------
    sim, n_ports:
        Simulator and port count.
    switching_time_ps:
        Blackout duration for every reconfiguration.
    transit_ps:
        Propagation through the device once circuits are up.
    output_sinks:
        ``output_sinks[j]`` receives packets leaving output j; the
        framework connects these to the egress downlinks.
    """

    def __init__(self, sim: Simulator, n_ports: int,
                 switching_time_ps: int,
                 transit_ps: int = 10 * NANOSECONDS,
                 output_sinks: Optional[
                     List[Callable[[Packet], None]]] = None) -> None:
        if n_ports < 2:
            raise ConfigurationError(f"OCS needs >= 2 ports, got {n_ports}")
        if switching_time_ps < 0:
            raise ConfigurationError("switching time must be >= 0")
        self.sim = sim
        self.n_ports = n_ports
        self.switching_time_ps = switching_time_ps
        self.transit_ps = transit_ps
        self._sinks = output_sinks or [_unconnected] * n_ports
        self._circuits = Matching.empty(n_ports)
        self._dark_until = 0
        self._pending: Optional[Matching] = None
        # Eager transit (fast lane): commit the egress-link send at
        # receive time instead of scheduling a per-packet transit event.
        self._eager_links = None
        self._eager_guard: Optional[Callable[[int], bool]] = None
        #: Set by injectors that may reconfigure the device at
        #: arbitrary instants; disables future-committing fast paths.
        self.unstable = False
        self._committed_until = 0
        self.reconfigurations = 0
        self.forwarded = Counter("ocs.forwarded")
        self.dark_drops = Counter("ocs.dark_drops")
        self.misdirected_drops = Counter("ocs.misdirected_drops")
        #: Total picoseconds spent dark (for duty-cycle accounting).
        self.blackout_ps = 0

    def connect_output(self, port: int, sink: Callable[[Packet], None]) -> None:
        """Attach the consumer of output ``port``."""
        if self._sinks is None or len(self._sinks) != self.n_ports:
            self._sinks = [_unconnected] * self.n_ports
        self._sinks[port] = sink

    def enable_eager_transit(self, links,
                             guard: Callable[[int], bool]) -> None:
        """Commit egress sends at receive time when provably exact.

        ``links[j]`` must be the egress :class:`~repro.net.link.Link`
        behind output ``j``'s sink.  The transit stage is a pure fixed
        delay, so the send at ``now + transit_ps`` can be applied early
        via :meth:`Link.send_at` — *provided* no other sender can slip
        onto the same link inside the transit window.  ``guard(j)``
        answers that per packet (the framework passes "the EPS is not
        draining output ``j``"; any EPS send it could newly originate
        is at least a pipeline + serialisation away, which exceeds the
        transit window).  Unreliable links and unbounded runs fall back
        to the event path.
        """
        self._eager_links = list(links)
        self._eager_guard = guard

    def mark_unstable(self) -> None:
        """Declare that reconfigurations may arrive at arbitrary times.

        Future-committing fast paths (batched injection, and their
        assumption that circuits hold for a whole grant window) must
        stay off such a device.  Fault injectors that corrupt the
        configuration call this at arm time.
        """
        self.unstable = True

    # -- control plane ----------------------------------------------------------

    def configure(self, matching: Matching) -> int:
        """Begin reconfiguring to ``matching``; returns ready time.

        The blackout starts immediately: circuits drop *now* and the new
        matching is live at ``now + switching_time_ps``.  Re-configuring
        while a previous blackout is still in progress restarts the
        blackout (the device can only slew to one target at a time).

        A zero switching time applies instantaneously — the idealised
        fast path of Figure 1.
        """
        if matching.n != self.n_ports:
            raise ConfigurationError(
                f"matching is {matching.n}-port, switch is {self.n_ports}")
        if self.sim.now < self._committed_until:
            raise SimulationError(
                f"OCS reconfigured at {self.sim.now}ps while batched "
                f"injections are committed through "
                f"{self._committed_until}ps; call mark_unstable() "
                "before the run (fault injectors do) so the fast lane "
                "stays off this device")
        self.reconfigurations += 1
        if self.switching_time_ps == 0:
            self._circuits = matching
            return self.sim.now
        self.blackout_ps += max(
            0, self.sim.now + self.switching_time_ps - max(self.sim.now,
                                                           self._dark_until))
        self._dark_until = self.sim.now + self.switching_time_ps
        self._pending = matching
        ready_at = self._dark_until

        def commit() -> None:
            # A later configure() may have superseded this one.
            if self._pending is matching and self.sim.now >= self._dark_until:
                self._circuits = matching
                self._pending = None

        self.sim.at(ready_at, commit, label="ocs.commit")
        return ready_at

    @property
    def is_dark(self) -> bool:
        """True while a reconfiguration blackout is in progress."""
        return self.sim.now < self._dark_until

    @property
    def circuits(self) -> Matching:
        """The currently live matching (empty during first blackout)."""
        return self._circuits

    def circuit_for(self, input_port: int) -> Optional[int]:
        """Live output for ``input_port`` or None (dark or unmatched)."""
        if self.is_dark:
            return None
        return self._circuits.output_for(input_port)

    # -- data plane ------------------------------------------------------------------

    def receive(self, packet: Packet, input_port: Optional[int] = None) -> bool:
        """Accept a packet at an input port; returns True if forwarded.

        The packet rides the live circuit from ``input_port`` (default:
        ``packet.src``).  Dark switch → dark drop.  Circuit leading to a
        different output than ``packet.dst`` → misdirected drop.
        """
        port = packet.src if input_port is None else input_port
        if self.is_dark:
            self.dark_drops.add(1, packet.size)
            return False
        out = self._circuits.output_for(port)
        if out is None:
            self.dark_drops.add(1, packet.size)
            return False
        if out != packet.dst:
            self.misdirected_drops.add(1, packet.size)
            return False
        self.forwarded.add(1, packet.size)
        packet.via = "ocs"
        if self._eager_links is not None:
            when = self.sim.now + self.transit_ps
            horizon = self.sim.run_until
            link = self._eager_links[out]
            if (horizon is not None and when <= horizon
                    and link.can_presend() and self._eager_guard(out)):
                link.send_at(packet, when)
                return True
        sink = self._sinks[out]
        self.sim.schedule(self.transit_ps, lambda: sink(packet),
                          label="ocs.transit")
        return True

    def receive_batch(self, packets: List[Packet],
                      times: List[int]) -> bool:
        """Accept a drain run of same-(src, dst) packets at ``times``.

        Exactly :meth:`receive` applied at each injection instant,
        evaluated at the first.  Caller contract (the batched drain):
        the device is stable (no reconfiguration can land inside an
        open grant window — enforced by :meth:`configure`'s committed
        guard), not dark at any of the times (windows open at
        OCS-ready), and eager transit is armed with the egress link
        reliable.  Under that contract the circuit decision is uniform
        across the run, so it is taken once and the egress sends are
        committed in one pass.
        """
        first = packets[0]
        if self.sim.now < self._dark_until or self.unstable:
            raise SimulationError(
                "OCS receive_batch outside its stability contract")
        count = len(packets)
        nbytes = 0
        for packet in packets:
            nbytes += packet.size
        out = self._circuits.output_for(first.src)
        if out is None:
            self.dark_drops.add(count, nbytes)
            return False
        if out != first.dst:
            self.misdirected_drops.add(count, nbytes)
            return False
        self.forwarded.add(count, nbytes)
        link = self._eager_links[out]
        transit = self.transit_ps
        # Only the *injections* depend on circuit state; a transit
        # already in flight survives a reconfiguration on the
        # reference path too, so the commitment ends at the last
        # injection instant — a configure() exactly at the window edge
        # (the scheduler's next slot) must stay legal.
        if times[-1] > self._committed_until:
            self._committed_until = times[-1]
        for packet in packets:
            packet.via = "ocs"
        link.send_presend(packets, [t + transit for t in times])
        return True


def _unconnected(packet: Packet) -> None:
    raise ConfigurationError(
        f"OCS output for packet {packet.packet_id} is not connected")


__all__ = ["OpticalCircuitSwitch"]
