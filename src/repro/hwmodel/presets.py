"""Named timing presets used throughout the benchmarks.

========================  ====================================================
``netfpga_sume``          200 MHz FPGA fabric — the paper's target platform
``asic_1ghz``             1 GHz ASIC implementation of the same pipeline
``cpu_helios``            Helios-class software loop (fast LAN polling)
``cpu_cthrough``          c-Through-class software loop (host-buffer polling,
                          long sync guard)
``ideal``                 zero-latency reference
========================  ====================================================

The two CPU presets differ in how demand reaches the scheduler: Helios
polls switch counters (fewer, faster reads); c-Through polls every
host's socket occupancy (per-host cost, bigger sync guard).  Both land
in the milliseconds the paper quotes; the FPGA presets land in the
hundreds of nanoseconds.  E2 prints the exact numbers.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.hwmodel.hardware import HardwareSchedulerTiming
from repro.hwmodel.software import SoftwareSchedulerTiming
from repro.hwmodel.timing import IdealTiming, SchedulerTiming
from repro.sim.errors import ConfigurationError
from repro.sim.time import MICROSECONDS, NANOSECONDS


def _netfpga_sume() -> SchedulerTiming:
    timing = HardwareSchedulerTiming(
        clock_hz=200e6, pipeline_depth=4, bus_bits=256,
        propagation_ps=5 * NANOSECONDS)
    timing.name = "netfpga_sume"
    return timing


def _asic_1ghz() -> SchedulerTiming:
    timing = HardwareSchedulerTiming(
        clock_hz=1e9, pipeline_depth=6, bus_bits=512,
        propagation_ps=2 * NANOSECONDS)
    timing.name = "asic_1ghz"
    return timing


def _cpu_helios() -> SchedulerTiming:
    timing = SoftwareSchedulerTiming(
        poll_rtt_ps=100 * MICROSECONDS,
        per_host_poll_ps=5 * MICROSECONDS,
        ns_per_op=2.0,
        io_ps=30 * MICROSECONDS,
        propagation_ps=5 * MICROSECONDS,
        sync_guard_ps=100 * MICROSECONDS)
    timing.name = "cpu_helios"
    return timing


def _cpu_cthrough() -> SchedulerTiming:
    timing = SoftwareSchedulerTiming(
        poll_rtt_ps=200 * MICROSECONDS,
        per_host_poll_ps=20 * MICROSECONDS,
        ns_per_op=2.0,
        io_ps=50 * MICROSECONDS,
        propagation_ps=10 * MICROSECONDS,
        sync_guard_ps=500 * MICROSECONDS)
    timing.name = "cpu_cthrough"
    return timing


TIMING_PRESETS: Dict[str, Callable[[], SchedulerTiming]] = {
    "netfpga_sume": _netfpga_sume,
    "asic_1ghz": _asic_1ghz,
    "cpu_helios": _cpu_helios,
    "cpu_cthrough": _cpu_cthrough,
    "ideal": IdealTiming,
}


def make_timing(preset: str) -> SchedulerTiming:
    """Instantiate a timing model by preset name."""
    try:
        factory = TIMING_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown timing preset {preset!r}; available: "
            f"{sorted(TIMING_PRESETS)}") from None
    return factory()


__all__ = ["TIMING_PRESETS", "make_timing"]
