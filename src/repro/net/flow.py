"""Flow identity: five-tuples and the coarser keys the switch uses.

The processing logic of Figure 2 classifies packets "into flows based on
configurable look-up rules".  Two granularities appear in practice:

* :class:`FiveTuple` — transport-level flow identity used by the
  traffic generators and the classifier's match fields.
* :class:`FlowKey` — the (ingress port, egress port) pair that selects a
  VOQ.  The demand matrix the scheduler sees is indexed by flow keys.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FiveTuple:
    """Classic transport five-tuple.

    Addresses are plain ints (host ids) because the rack model has no
    IP layer; protocol is a short string ("tcp", "udp").
    """

    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    protocol: str = "tcp"

    def reversed(self) -> "FiveTuple":
        """The reverse-direction five-tuple (for bidirectional flows)."""
        return FiveTuple(self.dst_addr, self.src_addr,
                         self.dst_port, self.src_port, self.protocol)


@dataclass(frozen=True, order=True)
class FlowKey:
    """(ingress, egress) switch-port pair — one VOQ, one demand cell."""

    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"FlowKey src == dst == {self.src}")
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"FlowKey ports must be non-negative: {self}")


__all__ = ["FiveTuple", "FlowKey"]
