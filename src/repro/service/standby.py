"""Standby hub: ``repro serve --standby --follow ADDR``.

A :class:`StandbyHub` is the warm spare that removes the daemon as the
fleet's last single point of failure.  It dials the primary, opens the
``peer`` conversation (:mod:`repro.service.protocol`), receives a
digest-verified snapshot of the primary's journal state, and then
mirrors every subsequent journal append into its *own* write-ahead
journal under its *own* cache directory.  From that moment the
standby's disk always holds a state the primary already made durable
— the mirror trails, never leads.

Failure handling is deliberately asymmetric:

* **Clean drain** (the primary sends ``bye``, or a ``drained`` record
  arrives): the operator stopped the primary on purpose.  The standby
  marks its own mirror drained and exits 0 — promoting here would
  resurrect a campaign the operator just ended.
* **Loss** (EOF without ``bye``, a read timeout with no ``sync-ping``,
  a connection error): re-dial under the retry policy.  Only when
  every attempt fails does the standby **promote**: it replays its
  mirrored journal exactly as ``repro serve --resume`` does — via
  :class:`~repro.service.daemon.ReproDaemon` with ``resume=True`` and
  ``promoted=True`` — and starts serving on its own address.  The
  retry gauntlet is the split-brain guard: a primary that was merely
  slow gets the whole backoff window to prove it is alive.
* **Never synced**: a standby that could not complete even one
  snapshot handshake refuses to promote (that is an operator error —
  a typo'd ``--follow`` must not silently become a fresh empty hub)
  and raises :class:`StandbyError` instead, which the CLI maps to
  exit code 2.

Multi-address clients (``--server primary,standby``) and workers
(``--connect primary,standby``) rotate onto the promoted hub
automatically; in-flight dedup plus the shared-cache transport make
their resubmissions free, so a mid-campaign primary death costs the
campaign nothing but the failover latency.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
from typing import Any, Dict, Optional

from repro.runner.governance import ResourceLimits
from repro.service.client import RetryPolicy
from repro.service.daemon import ReproDaemon
from repro.service.journal import (
    ServiceJournal,
    apply_record,
    journal_path,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    connect,
    peer_frame,
    read_frame,
    sync_digest,
    write_frame,
)

#: Floor on the follower's read timeout; the primary pings every
#: lease_timeout/4, so a full lease timeout of silence means at least
#: four missed pings — a wedged or partitioned primary, not jitter.
MIN_READ_TIMEOUT_S = 1.0


class StandbyError(RuntimeError):
    """The standby cannot (or must not) do its job; the CLI reports
    one line and exits 2."""


class StandbyHub:
    """A warm-spare daemon that tails a primary's journal.

    Construct with the standby's *own* listen address plus the
    primary's address to follow, then call :meth:`run` (blocking; the
    CLI path) or hand :meth:`run` to a thread and use
    :meth:`wait_synced` / :meth:`stop` (tests).  ``daemon_kwargs``
    are held until promotion and passed to the
    :class:`~repro.service.daemon.ReproDaemon` constructor verbatim
    (jobs, limits, admission control, ...).

    The standby requires a cache directory of its own: the mirror
    journal lives there, and it must not be the primary's directory —
    two daemons appending to one ``service-journal.jsonl`` would
    corrupt both lifelines.
    """

    def __init__(self, address: str, follow: str, *,
                 cache_dir: str,
                 jobs: int = 1,
                 replica_batch: bool = False,
                 lease_timeout_s: float = 30.0,
                 local_execution: bool = True,
                 limits: Optional[ResourceLimits] = None,
                 max_queue: int = 4096,
                 busy_retry_s: float = 1.0,
                 min_free_mb: int = 64,
                 retry: Optional[RetryPolicy] = None,
                 name: Optional[str] = None,
                 dial_timeout: float = 10.0,
                 quiet: bool = False) -> None:
        if not cache_dir:
            raise ValueError(
                "--standby needs a --cache-dir of its own: the "
                "mirrored journal (and, after promotion, the result "
                "cache) live there")
        self.address = address
        self.follow = follow
        self.cache_dir = cache_dir
        self.name = name or f"standby-{socket.gethostname()}-{os.getpid()}"
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay_s=0.2, max_delay_s=2.0)
        self.dial_timeout = dial_timeout
        self.quiet = quiet
        self._daemon_kwargs: Dict[str, Any] = dict(
            jobs=jobs, replica_batch=replica_batch,
            lease_timeout_s=lease_timeout_s,
            local_execution=local_execution, limits=limits,
            max_queue=max_queue, busy_retry_s=busy_retry_s,
            min_free_mb=min_free_mb, quiet=quiet)
        self._journal: Optional[ServiceJournal] = None
        self._live: Dict[str, dict] = {}
        self._quarantined: Dict[str, Dict[str, str]] = {}
        self._sock: Optional[socket.socket] = None
        self._stop_event = threading.Event()
        self._synced = threading.Event()
        self.records_mirrored = 0
        self.resyncs = 0
        #: Set once promotion begins (test seam + stop() routing).
        self.promoted_daemon: Optional[ReproDaemon] = None

    # -- lifecycle -----------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro-standby] {message}", file=sys.stderr,
                  flush=True)

    def _banner(self, payload: Dict[str, Any]) -> None:
        print(json.dumps(payload, sort_keys=True), flush=True)

    def wait_synced(self, timeout: float = 10.0) -> bool:
        """Block until the first snapshot landed (thread-mode tests)."""
        return self._synced.wait(timeout)

    def stop(self) -> None:
        """Thread-safe clean-stop: ends the follow loop (exit 0) or,
        after promotion, drains the promoted daemon gracefully."""
        self._stop_event.set()
        daemon = self.promoted_daemon
        if daemon is not None:
            daemon.request_shutdown()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def run(self) -> int:
        """Follow until the primary drains (0), stop() (0), or loss —
        in which case promote and serve; raises :class:`StandbyError`
        when following was never possible at all."""
        self.log(f"standing by for {self.follow} "
                 f"(will serve on {self.address} if promoted)")
        self._banner({"event": "standby-following",
                      "follow": self.follow,
                      "address": self.address,
                      "pid": os.getpid()})
        try:
            while not self._stop_event.is_set():
                outcome = None
                try:
                    outcome = self._follow_once()
                except StandbyError:
                    raise
                except (ProtocolError, ConnectionError, OSError) as exc:
                    if self._stop_event.is_set():
                        return 0
                    self.log(f"lost the primary at {self.follow}: "
                             f"{exc}")
                if outcome == "drained":
                    if self._journal is not None:
                        self._journal.record_drained()
                    self.log("primary drained cleanly — standing down")
                    return 0
                if self._stop_event.is_set():
                    return 0
                if not self._redial():
                    if not self._synced.is_set():
                        raise StandbyError(
                            f"never completed a journal sync with "
                            f"{self.follow} and will not promote "
                            "from nothing — check --follow")
                    return self._promote()
            return 0
        finally:
            self._close_journal()

    # -- following -----------------------------------------------------------

    def _follow_once(self) -> Optional[str]:
        """One peer conversation: handshake, snapshot, mirror stream.

        Returns ``"drained"`` on a clean goodbye; raises on loss.
        """
        sock = connect(self.follow, timeout=self.dial_timeout)
        self._sock = sock
        read_timeout = MIN_READ_TIMEOUT_S
        try:
            write_frame(sock, peer_frame(self.name))
            reply = read_frame(sock)
            if reply is None:
                raise ConnectionError(
                    "primary closed the connection during the peer "
                    "handshake")
            if reply.get("type") == "error":
                code = reply.get("code")
                if code in ("no-journal", "version-mismatch"):
                    # Retrying cannot fix either; surface it as the
                    # operator error it is.
                    raise StandbyError(
                        f"primary at {self.follow} refused the peer "
                        f"handshake [{code}]: {reply.get('message')}")
                raise ConnectionError(
                    f"peer handshake refused [{code}]: "
                    f"{reply.get('message')}")
            if reply.get("type") != "peer-welcome":
                raise ProtocolError(
                    "bad-handshake",
                    f"expected peer-welcome, got "
                    f"{reply.get('type')!r}")
            self._adopt_snapshot(reply)
            lease_timeout = reply.get("lease_timeout_s")
            if isinstance(lease_timeout, (int, float)) \
                    and lease_timeout > 0:
                read_timeout = max(MIN_READ_TIMEOUT_S,
                                   float(lease_timeout))
            sock.settimeout(read_timeout)
            while True:
                try:
                    frame = read_frame(sock)
                except socket.timeout as exc:
                    raise ConnectionError(
                        f"no sync-ping from the primary for "
                        f"{read_timeout:.1f}s — presumed dead"
                    ) from exc
                if frame is None:
                    raise ConnectionError(
                        "primary closed the connection without a bye")
                kind = frame.get("type")
                if kind == "journal-sync":
                    if self._mirror_sync(frame):
                        return "drained"
                elif kind == "sync-ping":
                    continue
                elif kind == "bye":
                    return "drained"
                elif kind == "error":
                    raise ProtocolError(
                        str(frame.get("code") or "error"),
                        str(frame.get("message") or "peer error"))
                # anything else: ignore — forward-compatible
        finally:
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    def _adopt_snapshot(self, welcome: Dict[str, Any]) -> None:
        """Reset the mirror to the primary's snapshot, verified."""
        snapshot = welcome.get("snapshot")
        if not isinstance(snapshot, dict):
            raise ProtocolError(
                "bad-snapshot", "peer-welcome carries no snapshot")
        if sync_digest(snapshot) != welcome.get("digest"):
            raise ProtocolError(
                "digest-mismatch",
                "peer-welcome snapshot does not match its digest")
        live = snapshot.get("live")
        quarantined = snapshot.get("quarantined")
        if not isinstance(live, dict) \
                or not isinstance(quarantined, dict):
            raise ProtocolError(
                "bad-snapshot",
                "snapshot needs 'live' and 'quarantined' objects")
        self._live = {key: dict(spec) for key, spec in live.items()
                      if isinstance(key, str) and isinstance(spec, dict)}
        self._quarantined = {
            key: {"kind": str(record.get("kind") or "ERROR"),
                  "error": str(record.get("error") or "")}
            for key, record in quarantined.items()
            if isinstance(key, str) and isinstance(record, dict)}
        if self._journal is None:
            self._journal = ServiceJournal(journal_path(self.cache_dir))
        self._journal.quarantined = dict(self._quarantined)
        # A (re)sync replaces whatever the mirror held: compact the
        # file down to exactly the snapshot, atomically.
        self._journal.compact(self._live, self._quarantined)
        if self._synced.is_set():
            self.resyncs += 1
        self._synced.set()
        self.log(f"synced with {self.follow}: {len(self._live)} live, "
                 f"{len(self._quarantined)} quarantined")
        self._banner({"event": "standby-synced",
                      "follow": self.follow,
                      "live": len(self._live),
                      "quarantined": len(self._quarantined),
                      "resyncs": self.resyncs})

    def _mirror_sync(self, frame: Dict[str, Any]) -> bool:
        """Apply one journal-sync frame; True when it carried a drain."""
        records = frame.get("records")
        if not isinstance(records, list):
            raise ProtocolError(
                "bad-sync", "journal-sync carries no records list")
        if sync_digest(records) != frame.get("digest"):
            raise ProtocolError(
                "digest-mismatch",
                "journal-sync records do not match their digest")
        drained = False
        assert self._journal is not None
        for record in records:
            if not isinstance(record, dict):
                raise ProtocolError(
                    "bad-sync", "journal-sync record is not an object")
            apply_record(self._live, self._quarantined, record)
            self._journal.mirror(record)
            self.records_mirrored += 1
            if record.get("op") == "drained":
                drained = True
        if self._journal.wants_compaction:
            self._journal.compact(self._live, self._quarantined)
        return drained

    def _redial(self) -> bool:
        """Backoff-paced attempts to find the primary again.

        ``False`` once the policy is exhausted (the promotion
        trigger) or a stop was requested mid-backoff.
        """
        for attempt, delay in enumerate(self.retry.delays(), start=1):
            if self._stop_event.wait(delay):
                return False
            try:
                self._probe()
            except StandbyError:
                raise
            except (ProtocolError, ConnectionError, OSError) as exc:
                self.log(f"re-dial {attempt}/{self.retry.max_attempts} "
                         f"failed: {exc}")
                continue
            return True
        return False

    def _probe(self) -> None:
        """One cheap liveness check: can the primary still be dialed?

        The actual resync (snapshot + stream) happens in the next
        :meth:`_follow_once` pass; this just answers the promotion
        question without committing to a full handshake here.
        """
        sock = connect(self.follow, timeout=self.dial_timeout)
        try:
            sock.close()
        except OSError:
            pass

    # -- promotion -----------------------------------------------------------

    def _close_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def _promote(self) -> int:
        """The primary is gone: become the hub, exactly like --resume.

        The mirror journal is closed and handed to a fresh
        :class:`ReproDaemon` whose normal recovery path replays it —
        unsettled debt re-enters the queue, quarantines stay locked
        out, and reconnecting clients coalesce onto the recovered
        jobs.  ``promoted=True`` marks the takeover in its stats.
        """
        self._close_journal()
        self.log(f"primary at {self.follow} stayed gone through "
                 f"{self.retry.max_attempts} re-dial attempt(s) — "
                 f"promoting; serving on {self.address}")
        self._banner({"event": "standby-promoting",
                      "follow": self.follow,
                      "address": self.address,
                      "mirrored": self.records_mirrored,
                      "pid": os.getpid()})
        daemon = ReproDaemon(self.address, cache_dir=self.cache_dir,
                             resume=True, promoted=True,
                             **self._daemon_kwargs)
        self.promoted_daemon = daemon
        if self._stop_event.is_set():  # stop() raced the promotion
            return 0
        return daemon.run()


__all__ = ["StandbyHub", "StandbyError", "MIN_READ_TIMEOUT_S",
           "PROTOCOL_VERSION"]
