#!/usr/bin/env python3
"""Quickstart: run a hybrid EPS/OCS switch with an iSLIP scheduler.

Builds the paper's Figure 2 framework on an 8-host rack, offers Poisson
traffic at 40% load, and prints the run's headline numbers.

    python examples/quickstart.py
"""

from repro import FrameworkConfig, HybridSwitchFramework
from repro.sim.time import MICROSECONDS, MILLISECONDS, format_time
from repro.traffic.patterns import UniformDestination
from repro.traffic.sources import PoissonSource


def main() -> None:
    config = FrameworkConfig(
        n_ports=8,                          # 8 hosts on one rack
        port_rate_bps=10e9,                 # 10 Gbps per port
        switching_time_ps=1 * MICROSECONDS,  # fast optical switch
        scheduler="islip",                  # pluggable (see `repro list`)
        scheduler_kwargs={"iterations": 2},
        timing_preset="netfpga_sume",       # FPGA-class scheduler timing
        default_slot_ps=10 * MICROSECONDS,  # circuit hold per grant
        seed=42,
    )
    framework = HybridSwitchFramework(config)

    # Attach one Poisson source per host at 40% of line rate.
    for host in framework.hosts:
        PoissonSource(
            framework.sim, host,
            rate_bps=0.4 * config.port_rate_bps,
            chooser=UniformDestination(
                config.n_ports, host.host_id,
                framework.sim.streams.stream(f"dst{host.host_id}")),
            rng=framework.sim.streams.stream(f"src{host.host_id}"))

    result = framework.run(duration_ps=5 * MILLISECONDS)

    latency = result.latency()
    print(f"offered load        : {result.offered_load():.3f}")
    print(f"utilisation         : {result.utilisation():.3f}")
    print(f"delivered           : {result.delivered_count} packets "
          f"({result.delivery_ratio:.1%} of offered)")
    print(f"mean latency        : {format_time(round(latency.mean_ps))}")
    print(f"p99 latency         : {format_time(round(latency.p99_ps))}")
    print(f"peak switch buffer  : {result.switch_peak_buffer_bytes} bytes")
    print(f"scheduler loop      : "
          f"{format_time(round(result.mean_loop_latency_ps))} per epoch "
          f"({result.epochs_run} epochs)")
    print(f"drops               : {result.drops}")


if __name__ == "__main__":
    main()
