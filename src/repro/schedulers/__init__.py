"""Scheduling-algorithm library — the pluggable "scheduling logic".

This package is the paper's raison d'être: §3 argues for a framework in
which "users implement novel design in the scheduling logic module".
Every algorithm here implements the :class:`repro.schedulers.base.Scheduler`
interface and therefore drops into
:class:`repro.core.scheduling.SchedulingLogic` unchanged, exactly as an
RTL block would drop into the NetFPGA scheduling-logic partition.

Contents
--------

========================  ====================================================
:mod:`~repro.schedulers.fixed`     TDMA / fixed permutation sequences
:mod:`~repro.schedulers.pim`       Parallel Iterative Matching (randomised)
:mod:`~repro.schedulers.islip`     iSLIP with k iterations
:mod:`~repro.schedulers.mwm`       maximum-weight matching (exact + greedy)
:mod:`~repro.schedulers.bvn`       Birkhoff–von Neumann decomposition
:mod:`~repro.schedulers.solstice`  Solstice-style hybrid decomposition
:mod:`~repro.schedulers.hotspot`   c-Through-style hotspot scheduling
:mod:`~repro.schedulers.demand`    demand estimators (counters/EWMA/sketch)
:mod:`~repro.schedulers.registry`  name → factory registry
========================  ====================================================
"""

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.bvn import BvnScheduler, birkhoff_von_neumann
from repro.schedulers.demand import (
    CountMinSketch,
    DemandEstimator,
    EwmaEstimator,
    InstantEstimator,
    SketchEstimator,
)
from repro.schedulers.eclipse import EclipseScheduler
from repro.schedulers.fixed import FixedSequence, RoundRobinTdma
from repro.schedulers.hotspot import HotspotScheduler
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.matching import Matching
from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler
from repro.schedulers.pim import PimScheduler
from repro.schedulers.registry import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
    scheduler_summaries,
)
from repro.schedulers.solstice import SolsticeScheduler
from repro.schedulers.wfa import WfaScheduler

__all__ = [
    "Scheduler",
    "ScheduleResult",
    "Matching",
    "RoundRobinTdma",
    "FixedSequence",
    "PimScheduler",
    "IslipScheduler",
    "WfaScheduler",
    "MwmScheduler",
    "GreedyMwmScheduler",
    "BvnScheduler",
    "birkhoff_von_neumann",
    "SolsticeScheduler",
    "EclipseScheduler",
    "HotspotScheduler",
    "DemandEstimator",
    "InstantEstimator",
    "EwmaEstimator",
    "SketchEstimator",
    "CountMinSketch",
    "available_schedulers",
    "scheduler_summaries",
    "create_scheduler",
    "register_scheduler",
]
