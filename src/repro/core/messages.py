"""Control-plane message types of the Figure 2 protocol.

The paper's sequence is:

1. VOQ status changes → the processing logic "generates scheduling
   **requests**".
2. The scheduling logic computes and "sends the **grant matrix** to the
   switching logic to configure the circuits in the OCS".
3. "Once the **grant** message is received by the processing logic, it
   dequeues packets from the respective VOQ."

These dataclasses are those three messages.  They carry timestamps so
experiments can audit the control-loop latency packet by packet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedulers.matching import Matching


@dataclass(frozen=True)
class Request:
    """Scheduling request: VOQ (src, dst) now holds ``queued_bytes``."""

    src: int
    dst: int
    queued_bytes: int
    issued_ps: int


@dataclass(frozen=True)
class CircuitConfig:
    """Configure-the-OCS command (grant matrix → switching logic)."""

    matching: Matching
    issued_ps: int


@dataclass(frozen=True)
class Grant:
    """Transmission grant: matched pairs may send in the window.

    ``start_ps`` is when the circuits are live (post-blackout);
    ``duration_ps`` is the hold time.
    """

    matching: Matching
    start_ps: int
    duration_ps: int
    issued_ps: int

    @property
    def end_ps(self) -> int:
        """First instant the window is closed."""
        return self.start_ps + self.duration_ps


__all__ = ["Request", "CircuitConfig", "Grant"]
