"""Scheduler registry — the rapid-prototyping entry point.

The paper's framework exists so researchers can drop a new scheduling
algorithm into a fixed infrastructure.  The software equivalent of that
RTL slot is this registry: register a factory under a name, and every
experiment, benchmark and CLI invocation can select it with a string.

    @register_scheduler("my-sched")
    def _make(n_ports, **kwargs):
        return MyScheduler(n_ports, **kwargs)

    sched = create_scheduler("my-sched", n_ports=64)
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.schedulers.base import Scheduler
from repro.sim.errors import ConfigurationError

SchedulerFactory = Callable[..., Scheduler]

_REGISTRY: Dict[str, SchedulerFactory] = {}
_DOCS: Dict[str, str] = {}


def register_scheduler(name: str,
                       factory: SchedulerFactory = None, *,
                       doc: str = ""):
    """Register a scheduler factory under ``name``.

    Usable as a decorator (``@register_scheduler("x")``) or a plain
    call (``register_scheduler("x", factory)``).  Re-registering a name
    raises — silent replacement hides typos in experiment configs.
    ``doc`` is the one-line description ``repro list`` prints; when
    omitted it falls back to the factory's docstring first line.
    """

    def _register(func: SchedulerFactory) -> SchedulerFactory:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"scheduler {name!r} is already registered")
        _REGISTRY[name] = func
        line = doc or (func.__doc__ or "").strip().split("\n")[0]
        _DOCS[name] = line.rstrip(".")
        return func

    if factory is not None:
        return _register(factory)
    return _register


def unregister_scheduler(name: str) -> bool:
    """Remove a registration (tests cleaning up after themselves).

    Returns whether ``name`` was actually registered, so cleanup code
    can assert it removed what it meant to instead of silently
    misspelling a name into a no-op.
    """
    _DOCS.pop(name, None)
    return _REGISTRY.pop(name, None) is not None


def create_scheduler(name: str, n_ports: int, **kwargs) -> Scheduler:
    """Instantiate the scheduler registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: "
            f"{sorted(_REGISTRY)}") from None
    return factory(n_ports=n_ports, **kwargs)


def available_schedulers() -> List[str]:
    """Sorted names of every registered scheduler."""
    return sorted(_REGISTRY)


def scheduler_summaries() -> Dict[str, str]:
    """``name -> one-line description`` for every registered scheduler."""
    return {name: _DOCS.get(name, "") for name in sorted(_REGISTRY)}


def _class_doc(cls) -> str:
    """First docstring line of a scheduler class, for ``repro list``."""
    return (cls.__doc__ or "").strip().split("\n")[0].rstrip(".")


def _register_builtins() -> None:
    """Register the library's own algorithms under their canonical names."""
    from repro.schedulers.bvn import BvnScheduler
    from repro.schedulers.fixed import RoundRobinTdma
    from repro.schedulers.hotspot import HotspotScheduler
    from repro.schedulers.islip import IslipScheduler
    from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler
    from repro.schedulers.pim import PimScheduler
    from repro.schedulers.solstice import SolsticeScheduler

    register_scheduler("tdma", lambda n_ports, **kw:
                       RoundRobinTdma(n_ports, **kw),
                       doc=_class_doc(RoundRobinTdma))
    register_scheduler("pim", lambda n_ports, **kw:
                       PimScheduler(n_ports, **kw),
                       doc=_class_doc(PimScheduler))
    register_scheduler("islip", lambda n_ports, **kw:
                       IslipScheduler(n_ports, **kw),
                       doc=_class_doc(IslipScheduler))
    register_scheduler("mwm", lambda n_ports, **kw:
                       MwmScheduler(n_ports, **kw),
                       doc=_class_doc(MwmScheduler))
    register_scheduler("greedy-mwm", lambda n_ports, **kw:
                       GreedyMwmScheduler(n_ports, **kw),
                       doc=_class_doc(GreedyMwmScheduler))
    register_scheduler("bvn", lambda n_ports, **kw:
                       BvnScheduler(n_ports, **kw),
                       doc=_class_doc(BvnScheduler))
    register_scheduler("solstice", lambda n_ports, **kw:
                       SolsticeScheduler(n_ports, **kw),
                       doc=_class_doc(SolsticeScheduler))
    register_scheduler("hotspot", lambda n_ports, **kw:
                       HotspotScheduler(n_ports, **kw),
                       doc=_class_doc(HotspotScheduler))

    from repro.schedulers.eclipse import EclipseScheduler
    from repro.schedulers.wfa import WfaScheduler

    register_scheduler("wfa", lambda n_ports, **kw:
                       WfaScheduler(n_ports, **kw),
                       doc=_class_doc(WfaScheduler))
    register_scheduler("eclipse", lambda n_ports, **kw:
                       EclipseScheduler(n_ports, **kw),
                       doc=_class_doc(EclipseScheduler))

    # Imported lazily to avoid a package cycle (control -> schedulers).
    def _make_distributed(n_ports, **kw):
        from repro.control.distributed import DistributedGreedyScheduler

        return DistributedGreedyScheduler(n_ports, **kw)

    register_scheduler(
        "distributed-greedy", _make_distributed,
        doc="per-port greedy matching over a distributed control "
            "channel")


_register_builtins()

__all__ = [
    "register_scheduler",
    "unregister_scheduler",
    "create_scheduler",
    "available_schedulers",
    "scheduler_summaries",
]
