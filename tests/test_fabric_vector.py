"""Golden-equivalence and invariant tests for the vectorised fabric.

The vector engine must be *bit-identical* to the scalar reference
engine: same seed → same :class:`FabricStats`, field for field.  The
golden tests below hold the whole stack to that (vector kernel +
vectorised schedulers vs scalar kernel + scalar reference schedulers),
and the property tests check the physical invariants at n ∈ {4, 16, 64}.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import (
    hotspot_rates,
    incast_rates,
    uniform_rates,
)
from repro.schedulers.fixed import RoundRobinTdma
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler
from repro.schedulers.reference import (
    ReferenceGreedyMwmScheduler,
    ReferenceIslipScheduler,
)
from repro.sim.errors import ConfigurationError

WORKLOADS = {
    "uniform": lambda n: uniform_rates(n, 0.7),
    "hotspot": lambda n: hotspot_rates(n, 0.8, skew=0.6),
    "incast": lambda n: incast_rates(n, 0.9),
}

# (vector scheduler factory, scalar reference counterpart)
SCHEDULER_PAIRS = {
    "islip": (lambda n: IslipScheduler(n, iterations=2),
              lambda n: ReferenceIslipScheduler(n, iterations=2)),
    "greedy-mwm": (lambda n: GreedyMwmScheduler(n),
                   lambda n: ReferenceGreedyMwmScheduler(n)),
    "mwm": (lambda n: MwmScheduler(n), lambda n: MwmScheduler(n)),
    "tdma": (lambda n: RoundRobinTdma(n), lambda n: RoundRobinTdma(n)),
}


class TestGoldenEquivalence:
    """engine="vector" == engine="reference", field for field."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("sched", sorted(SCHEDULER_PAIRS))
    @pytest.mark.parametrize("n", [4, 16])
    def test_identical_stats_small_configs(self, n, sched, workload):
        make_vector, make_reference = SCHEDULER_PAIRS[sched]
        rates = WORKLOADS[workload](n)
        seed = hash((n, sched, workload)) % 10_000
        reference = CellFabricSim(make_reference(n), rates, seed=seed,
                                  engine="reference").run(300, warmup=40)
        vector = CellFabricSim(make_vector(n), rates, seed=seed,
                               engine="vector").run(300, warmup=40)
        assert reference == vector

    def test_identical_stats_64_ports_across_chunks(self):
        # At n=64 the memory budget bounds chunks to 244 slots, so 300
        # total slots forces a chunk boundary mid-run — the 64-port
        # acceptance path *and* the boundary carry are both covered.
        rates = uniform_rates(64, 0.8)
        reference = CellFabricSim(
            ReferenceIslipScheduler(64, iterations=1), rates, seed=3,
            engine="reference").run(280, warmup=20)
        vector = CellFabricSim(
            IslipScheduler(64, iterations=1), rates, seed=3,
            engine="vector").run(280, warmup=20)
        assert reference == vector

    def test_identical_across_many_chunk_boundaries(self, monkeypatch):
        # Shrink the chunk cap so a cheap run crosses dozens of chunk
        # boundaries (including a warmup→measuring flip mid-chunk and a
        # final partial chunk): any carry bug in the slot counter, RNG
        # stream, or ring state between chunks diverges from the
        # scalar reference here.
        import repro.fabric.cellsim as cellsim

        monkeypatch.setattr(cellsim, "_CHUNK_SLOTS", 7)
        rates = hotspot_rates(8, 0.8, skew=0.5)
        reference = CellFabricSim(
            ReferenceIslipScheduler(8, iterations=2), rates, seed=9,
            engine="reference").run(250, warmup=33)
        vector = CellFabricSim(
            IslipScheduler(8, iterations=2), rates, seed=9,
            engine="vector").run(250, warmup=33)
        assert reference == vector

    def test_identical_across_repeated_runs(self):
        # run() continues from live state; both engines must agree on
        # the continuation too, not just on a fresh start.
        rates = hotspot_rates(8, 0.8, skew=0.5)
        a = CellFabricSim(ReferenceIslipScheduler(8), rates, seed=5,
                          engine="reference")
        b = CellFabricSim(IslipScheduler(8), rates, seed=5,
                          engine="vector")
        for __ in range(3):
            assert a.run(150) == b.run(150)

    def test_deep_queue_growth_matches(self):
        # Incast at full load overflows the initial ring capacity many
        # times over; growth must not perturb FIFO order or delays.
        rates = incast_rates(8, 1.0)
        reference = CellFabricSim(RoundRobinTdma(8), rates, seed=11,
                                  engine="reference").run(600)
        vector = CellFabricSim(RoundRobinTdma(8), rates, seed=11,
                               engine="vector").run(600)
        assert reference == vector
        assert vector.backlog_cells > 8  # the growth path actually ran


class TestVectorEngineBasics:
    def test_vector_is_the_default(self):
        sim = CellFabricSim(IslipScheduler(4), uniform_rates(4, 0.5))
        assert sim.engine == "vector"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            CellFabricSim(IslipScheduler(4), uniform_rates(4, 0.5),
                          engine="turbo")

    @pytest.mark.parametrize("engine", CellFabricSim.ENGINES)
    def test_counts_are_integer(self, engine):
        sim = CellFabricSim(IslipScheduler(4), uniform_rates(4, 0.5),
                            seed=1, engine=engine)
        sim.run(slots=50)
        assert sim._counts.dtype == np.int64

    def test_run_parameter_validation(self):
        sim = CellFabricSim(IslipScheduler(4), uniform_rates(4, 0.5))
        with pytest.raises(ConfigurationError):
            sim.run(slots=0)
        with pytest.raises(ConfigurationError):
            sim.run(slots=10, warmup=-1)


class TestInvariants:
    """Physical invariants of the vector engine at n in {4, 16, 64}."""

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_conservation_and_bounds(self, n):
        slots = 200 if n == 64 else 400
        stats = CellFabricSim(IslipScheduler(n), uniform_rates(n, 0.6),
                              seed=n, engine="vector").run(slots)
        # No warmup: everything that arrived is either out or queued.
        assert stats.departures + stats.backlog_cells == stats.arrivals
        assert 0.0 <= stats.throughput <= stats.offered + 1e-12
        assert stats.offered <= 1.0 + 1e-12
        assert stats.backlog_cells <= stats.peak_backlog_cells
        assert stats.mean_delay_slots >= 0.0

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_light_load_fully_served(self, n):
        stats = CellFabricSim(
            IslipScheduler(n, iterations=2), uniform_rates(n, 0.2),
            seed=n + 1, engine="vector").run(500, warmup=100)
        assert stats.served_fraction > 0.9
        assert stats.mean_delay_slots < 5

    @given(n=st.sampled_from([4, 16]), load=st.floats(0.05, 0.95),
           seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_property_invariants_hold(self, n, load, seed):
        stats = CellFabricSim(IslipScheduler(n), uniform_rates(n, load),
                              seed=seed, engine="vector").run(120)
        assert stats.departures + stats.backlog_cells == stats.arrivals
        assert stats.throughput <= stats.offered + 1e-12

    @given(seed=st.integers(0, 2**16), warmup=st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_property_engines_agree(self, seed, warmup):
        rates = hotspot_rates(6, 0.75, skew=0.4)
        reference = CellFabricSim(
            ReferenceGreedyMwmScheduler(6), rates, seed=seed,
            engine="reference").run(100, warmup=warmup)
        vector = CellFabricSim(
            GreedyMwmScheduler(6), rates, seed=seed,
            engine="vector").run(100, warmup=warmup)
        assert reference == vector


class TestIncastWorkload:
    def test_admissible(self):
        rates = incast_rates(8, 0.9)
        assert (rates >= 0).all()
        assert (np.diagonal(rates) == 0).all()
        assert (rates.sum(axis=0) <= 0.9 + 1e-9).all()
        assert rates.sum() == pytest.approx(0.9)

    def test_hot_column_gets_everything(self):
        rates = incast_rates(4, 0.6, hot=2)
        assert rates[:, 2].sum() == pytest.approx(0.6)
        assert rates[2, 2] == 0.0
        other = np.delete(rates, 2, axis=1)
        assert (other == 0).all()

    def test_hot_validation(self):
        with pytest.raises(ConfigurationError):
            incast_rates(4, 0.5, hot=4)
