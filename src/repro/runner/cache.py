"""Content-addressed on-disk cache of experiment reports.

Layout::

    <root>/
      <experiment_id>/
        <spec key>.json     # {"format", "spec", "digest", "report"}

The file name is the spec's content hash, so a cache directory can be
shared between branches, machines and CI shards without coordination:
a hit is valid by construction (same spec ⇒ same report, because entry
points are pure), and any change to spec semantics bumps
``SPEC_FORMAT`` which changes every key.

``digest`` is the SHA-256 of the report payload's canonical JSON.  It
exists because cache entries now travel (rsync'd cache dirs, the
fleet's ``cache-lookup`` protocol frames), and a truncated or
bit-flipped payload must be *detected* rather than served: a mismatch
reads as a miss, the entry is evicted, and the spec simply re-executes.

One deliberate wrinkle: reports pass through JSON, so tuples inside
``ExperimentReport.data`` come back as lists and non-string dict keys
come back as strings.  Canonical comparisons (tests, ``--json-out``)
therefore go through :func:`repro.runner.spec.jsonable` on both sides.

**Bounded growth.**  A long-lived service writes the cache forever, so
it now carries an optional size budget and an LRU discipline: every
hit refreshes the entry's mtime, :meth:`ResultCache.index` lists
entries coldest-first, and :meth:`ResultCache.gc` evicts from the cold
end down to a target size — warm (recently served) entries are the
last to go, and a gc on an under-budget cache evicts nothing.
:meth:`ResultCache.verify` re-checks every entry's ``digest`` and spec
key on demand (the fsck for a cache dir that has travelled), and
:func:`free_disk_bytes` is what the daemon consults to refuse new work
before a full volume can corrupt the journal.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentReport
from repro.runner.spec import RunSpec, SPEC_FORMAT, jsonable


def report_to_payload(report: ExperimentReport) -> dict:
    """An :class:`ExperimentReport` as plain JSON types."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "tables": list(report.tables),
        "data": jsonable(report.data),
        "expectations": list(report.expectations),
        "warnings": list(report.warnings),
    }


def report_from_payload(payload: dict) -> ExperimentReport:
    """Inverse of :func:`report_to_payload`."""
    return ExperimentReport(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        tables=list(payload["tables"]),
        data=dict(payload["data"]),
        expectations=list(payload["expectations"]),
        warnings=list(payload.get("warnings", [])),
    )


def payload_digest(report_payload: dict) -> str:
    """SHA-256 over the canonical JSON of a report payload."""
    text = json.dumps(report_payload, sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache file, as the LRU index sees it."""

    path: Path
    size_bytes: int
    mtime: float


def free_disk_bytes(root) -> Optional[int]:
    """Free space on the volume holding ``root`` (best-effort).

    Walks up to the nearest existing ancestor so a cache directory
    that has not been created yet still reports its volume.  ``None``
    when the platform cannot answer — callers treat that as "enough".
    """
    probe = Path(root).resolve()
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            break
        probe = parent
    try:
        return shutil.disk_usage(probe).free
    except OSError:  # pragma: no cover — exotic filesystems
        return None


class ResultCache:
    """Spec-hash → report store under one root directory.

    ``budget_bytes`` is advisory: stores never fail, but
    :meth:`over_budget` reports the excess and :meth:`gc` (or the
    ``repro cache gc`` CLI) evicts coldest-first back under it.
    """

    def __init__(self, root,
                 budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(
                f"budget_bytes must be >= 0, got {budget_bytes}")
        self.root = Path(root)
        self.budget_bytes = budget_bytes
        self.stats = CacheStats()

    def path_for(self, spec: RunSpec) -> Path:
        # Scenario ids contain ':'; keep directory names portable.
        return (self.root / spec.experiment_id.replace(":", "-")
                / f"{spec.key()}.json")

    def load(self, spec: RunSpec) -> Optional[ExperimentReport]:
        """The cached report, or ``None`` on miss/corruption."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            # Unparseable bytes can only be torn/corrupt — drop them so
            # the next writer starts from a clean slate.
            self._evict(path)
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            return None
        # Defence in depth: the name already encodes spec + format,
        # but a truncated or hand-edited file must read as a miss.
        if (payload.get("format") != SPEC_FORMAT
                or payload.get("spec") != spec.canonical()):
            self.stats.misses += 1
            return None
        report_payload = payload.get("report")
        if (not isinstance(report_payload, dict)
                or payload.get("digest") != payload_digest(report_payload)):
            # Bit-flipped or truncated report body (or a pre-digest
            # entry): never serve it — evict and re-execute.
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        # LRU recency: a hit re-warms the entry, so gc evicts cold
        # entries first.  Best-effort — a read-only cache still serves.
        try:
            os.utime(path)
        except OSError:
            pass
        return report_from_payload(report_payload)

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self.stats.evictions += 1

    def store(self, spec: RunSpec, report: ExperimentReport) -> Path:
        """Persist ``report`` atomically; returns the cache path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        report_payload = report_to_payload(report)
        payload = {
            "format": SPEC_FORMAT,
            "spec": spec.canonical(),
            "digest": payload_digest(report_payload),
            "report": report_payload,
        }
        text = json.dumps(payload, sort_keys=True, indent=1)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)  # atomic: parallel writers can't tear
        self.stats.stores += 1
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    # -- governance: LRU index, fsck, GC ----------------------------------------

    def index(self) -> List[CacheEntry]:
        """Every entry, coldest (oldest mtime) first.

        Ties break on path so the ordering — and therefore gc's
        eviction choice — is deterministic.
        """
        if not self.root.is_dir():
            return []
        entries = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted/replaced under our feet
            entries.append(CacheEntry(path=path,
                                      size_bytes=stat.st_size,
                                      mtime=stat.st_mtime))
        entries.sort(key=lambda e: (e.mtime, str(e.path)))
        return entries

    def total_bytes(self) -> int:
        """Current on-disk footprint of all entries."""
        return sum(entry.size_bytes for entry in self.index())

    def over_budget(self) -> int:
        """Bytes above the configured budget (0 when unbudgeted/under)."""
        if self.budget_bytes is None:
            return 0
        return max(0, self.total_bytes() - self.budget_bytes)

    def verify(self) -> Tuple[int, int]:
        """Re-check every entry's digest and spec key; evict bad ones.

        Returns ``(valid, evicted)``.  This is the full fsck for a
        cache directory that has travelled (rsync, fleet pushes): the
        payload digest catches bit-flips and truncation, and the spec
        key is recomputed from the embedded canonical spec to catch an
        entry renamed or copied into the wrong slot.
        """
        valid = 0
        evicted = 0
        for entry in self.index():
            if self._verify_one(entry.path):
                valid += 1
            else:
                self._evict(entry.path)
                evicted += 1
        return valid, evicted

    def _verify_one(self, path: Path) -> bool:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            return False
        if payload.get("format") != SPEC_FORMAT:
            return False
        report_payload = payload.get("report")
        if (not isinstance(report_payload, dict)
                or payload.get("digest")
                != payload_digest(report_payload)):
            return False
        try:
            spec = RunSpec.from_canonical(payload.get("spec"))
        except Exception:
            return False
        return path.name == f"{spec.key()}.json"

    def gc(self, target_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Evict coldest entries until the cache fits ``target_bytes``.

        ``target_bytes`` defaults to the configured budget.  Returns
        ``(evicted, freed_bytes)``.  An under-target cache is left
        untouched — gc never discards warm entries it doesn't have to.
        """
        if target_bytes is None:
            target_bytes = self.budget_bytes
        if target_bytes is None:
            raise ValueError(
                "gc needs a target: pass target_bytes or construct "
                "the cache with budget_bytes")
        if target_bytes < 0:
            raise ValueError(
                f"target_bytes must be >= 0, got {target_bytes}")
        entries = self.index()
        total = sum(entry.size_bytes for entry in entries)
        evicted = 0
        freed = 0
        for entry in entries:  # coldest first
            if total <= target_bytes:
                break
            self._evict(entry.path)
            total -= entry.size_bytes
            freed += entry.size_bytes
            evicted += 1
        return evicted, freed


__all__ = ["ResultCache", "CacheStats", "CacheEntry", "payload_digest",
           "report_to_payload", "report_from_payload",
           "free_disk_bytes"]
