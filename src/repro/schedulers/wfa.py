"""Wavefront Arbiter (WFA) — the canonical combinational crossbar matcher.

The wavefront arbiter (Tamir & Chi, 1993) is what an FPGA engineer
reaches for when iSLIP's pointer logic is still too much: a pure
combinational array.  Cells are visited along anti-diagonals
("wavefronts"); a cell (i, j) grants itself when it has a request and
neither row i nor column j has been claimed by an earlier wavefront.
All cells on one wavefront are independent, so one wavefront evaluates
per gate delay — the whole match settles in O(n) gate delays with *no*
clocked iterations at all.

Fairness comes from rotating which wrapped diagonal goes first
(:attr:`WfaScheduler._priority`), the standard "wrapped WFA" (WWFA)
construction; without rotation the top-left corner starves the rest.

The result is a **maximal** matching (no augmenting paths are sought),
like PIM/iSLIP, but fully deterministic and state-light — one modulo
counter.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class WfaScheduler(Scheduler):
    """Wrapped wavefront arbiter with a rotating priority diagonal."""

    name = "wfa"

    def __init__(self, n_ports: int) -> None:
        super().__init__(n_ports)
        self._priority = 0
        self._ports = np.arange(n_ports)

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute_trusted(self._check_demand(demand))

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        """One numpy op set per wavefront; see the base-class contract.

        Wrapped diagonals: wavefront w visits cells (i, j) with
        (i + j) mod n == (priority + w) mod n.  Each wrapped diagonal
        touches every row and column exactly once, so cells within a
        wavefront never conflict — exactly the hardware's parallelism,
        and exactly why the whole wavefront can be claimed with one
        masked gather/scatter instead of a per-cell Python loop (the
        scalar original survives as
        ``repro.schedulers.reference.ReferenceWfaScheduler``).
        """
        n = self.n_ports
        ports = self._ports
        requests = demand > 0
        row_free = np.ones(n, dtype=bool)
        col_free = np.ones(n, dtype=bool)
        out_of_arr = np.full(n, -1, dtype=np.int64)
        for wave in range(n):
            cols = (self._priority + wave - ports) % n
            take = requests[ports, cols] & row_free & col_free[cols]
            if take.any():
                rows = ports[take]
                taken_cols = cols[take]
                out_of_arr[rows] = taken_cols
                row_free[rows] = False
                col_free[taken_cols] = False
        self._priority = (self._priority + 1) % n
        self.last_stats = {"iterations": n, "matchings": 1}
        return ScheduleResult(
            matchings=[(Matching.from_output_array(out_of_arr), 0)])


__all__ = ["WfaScheduler"]
