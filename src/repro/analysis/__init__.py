"""Analytics: the Figure 1 buffering model, metrics, stats, reporting."""

from repro.analysis.buffering import (
    BufferingModel,
    BufferingPoint,
    figure1_curve,
)
from repro.analysis.charts import line_chart, sparkline
from repro.analysis.metrics import (
    LatencySummary,
    interarrival_jitter_ps,
    latency_summary,
    latency_summary_from_arrays,
    percentile,
    percentiles,
)
from repro.analysis.record import PacketLog
from repro.analysis.stats import (
    ConfidenceInterval,
    batch_means_ci,
    compare_means,
    truncate_warmup,
)
from repro.analysis.sweep import sweep
from repro.analysis.tables import render_series, render_table
from repro.analysis.tracing import PathTracer

__all__ = [
    "BufferingModel",
    "BufferingPoint",
    "figure1_curve",
    "LatencySummary",
    "latency_summary",
    "latency_summary_from_arrays",
    "percentile",
    "percentiles",
    "interarrival_jitter_ps",
    "PacketLog",
    "render_table",
    "render_series",
    "sweep",
    "sparkline",
    "line_chart",
    "ConfidenceInterval",
    "batch_means_ci",
    "truncate_warmup",
    "compare_means",
    "PathTracer",
]
