"""Tests for the ``repro.runner`` orchestration subsystem.

The load-bearing guarantees: plans are deterministic, parallel
execution is bit-identical to sequential, and the cache never serves a
wrong report (worst case it re-executes).  Executor tests run e7/e2
specs — the cheapest experiments — with small override grids.
"""

import json

import pytest

from repro.experiments.base import ExperimentConfig
from repro.runner import (
    ResultCache,
    RunSpec,
    canonical_json,
    derive_seed,
    execute,
    map_jobs,
    merge_outcomes,
    plan_runs,
    shard,
    write_json_report,
)
from repro.sim.errors import ConfigurationError

#: Cheap specs for executor tests (e7 pure mode is model-only, ~ms).
FAST_SPEC = RunSpec("e7", quick=True, overrides={"port_counts": [8, 16]})


class TestRunSpec:
    def test_key_is_stable_and_content_addressed(self):
        a = RunSpec("e1", quick=True)
        b = RunSpec("e1", quick=True)
        assert a.key() == b.key()
        assert a.key().startswith("e1-")
        assert a.key() != RunSpec("e1", quick=False).key()
        assert a.key() != RunSpec("e1", quick=True, seed=1).key()
        assert a.key() != RunSpec(
            "e1", quick=True, overrides={"n_ports": 4}).key()

    def test_overrides_order_does_not_change_key(self):
        a = RunSpec("e5", overrides={"n_ports": 8, "slots": 100})
        b = RunSpec("e5", overrides={"slots": 100, "n_ports": 8})
        assert a.key() == b.key()

    def test_canonical_round_trip(self):
        spec = RunSpec("e3", quick=True, seed=9, scheduler="islip",
                       overrides={"load": 0.5})
        again = RunSpec.from_canonical(spec.canonical())
        assert again == spec
        assert again.key() == spec.key()

    def test_validate_rejects_unknown_experiment(self):
        with pytest.raises(ConfigurationError, match="e1"):
            RunSpec("e99").validate()

    def test_to_config_is_pure(self):
        config = RunSpec("e7", quick=True, seed=5).to_config()
        assert config == ExperimentConfig(
            quick=True, seed=5, scheduler=None,
            measure_wallclock=False, overrides={})
        assert not config.measure_wallclock  # purity is non-negotiable


class TestPlan:
    def test_plain_run_keeps_historical_seeds(self):
        (spec,) = plan_runs(["e1"], quick=True)
        assert spec.seed is None

    def test_replicas_get_distinct_stable_seeds(self):
        first = plan_runs(["e5"], base_seed=7, replicas=3)
        again = plan_runs(["e5"], base_seed=7, replicas=3)
        assert first == again
        seeds = [s.seed for s in first]
        assert len(set(seeds)) == 3
        assert all(s is not None for s in seeds)
        # Derivation is positional, not sequential-draw: replica 2's
        # seed does not depend on how many replicas were planned.
        assert plan_runs(["e5"], base_seed=7, replicas=5)[2].seed \
            == seeds[2]

    def test_seed_derivation_decorrelates_experiments(self):
        assert derive_seed(1, "e1", 0) != derive_seed(1, "e2", 0)
        assert derive_seed(1, "e1", 0) != derive_seed(2, "e1", 0)

    def test_grid_expansion_is_deterministic_product(self):
        specs = plan_runs(["e5"], grid={"n_ports": [8, 16],
                                        "slots": [100, 200]})
        assert len(specs) == 4
        assert [s.overrides for s in specs] == [
            {"n_ports": 8, "slots": 100},
            {"n_ports": 8, "slots": 200},
            {"n_ports": 16, "slots": 100},
            {"n_ports": 16, "slots": 200},
        ]

    def test_shard_partitions_the_plan(self):
        specs = plan_runs(["e1", "e2", "e3", "e4", "e5"], quick=True)
        shards = [shard(specs, 2, i) for i in range(2)]
        assert sorted(s.key() for part in shards for s in part) \
            == sorted(s.key() for s in specs)
        assert shards[0] == specs[0::2]
        with pytest.raises(ValueError):
            shard(specs, 2, 2)


class TestExecutor:
    def test_parallel_bit_identical_to_sequential(self):
        specs = [FAST_SPEC,
                 RunSpec("e7", quick=True, seed=3,
                         overrides={"port_counts": [8, 16]}),
                 RunSpec("e2", quick=True,
                         overrides={"port_counts": [16]})]
        sequential = execute(specs, jobs=1)
        parallel = execute(specs, jobs=2)
        for seq, par in zip(sequential, parallel):
            assert seq.spec == par.spec
            assert canonical_json(seq.report.data) \
                == canonical_json(par.report.data)
            assert seq.report.tables == par.report.tables

    def test_outcomes_preserve_spec_order(self):
        specs = [RunSpec("e7", quick=True, seed=s,
                         overrides={"port_counts": [8]})
                 for s in (5, 1, 9)]
        outcomes = execute(specs, jobs=2)
        assert [o.spec for o in outcomes] == specs

    def test_map_jobs_preserves_order(self):
        assert map_jobs(abs, [-3, 2, -1], jobs=2) == [3, 2, 1]
        with pytest.raises(ValueError):
            map_jobs(abs, [1], jobs=0)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(FAST_SPEC) is None
        (cold,) = execute([FAST_SPEC], cache=cache)
        assert not cold.cached
        assert len(cache) == 1
        (warm,) = execute([FAST_SPEC], cache=cache)
        assert warm.cached
        assert canonical_json(warm.report.data) \
            == canonical_json(cold.report.data)
        assert warm.report.tables == cold.report.tables
        assert cache.stats.hits == 1

    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute([FAST_SPEC], cache=cache)
        other = RunSpec("e7", quick=True, seed=1,
                        overrides={"port_counts": [8, 16]})
        assert cache.load(other) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute([FAST_SPEC], cache=cache)
        path = cache.path_for(FAST_SPEC)
        path.write_text("{not json", encoding="utf-8")
        assert cache.load(FAST_SPEC) is None
        # And the executor recovers by re-running.
        (outcome,) = execute([FAST_SPEC], cache=cache)
        assert not outcome.cached
        assert cache.load(FAST_SPEC) is not None

    def test_failure_does_not_discard_completed_work(self, tmp_path):
        # A job failing late must not lose the finished jobs before
        # it: reports stream into the cache as they complete.
        cache = ResultCache(tmp_path)
        bad = RunSpec("e7", quick=True,
                      overrides={"port_counts": "bogus"})
        for jobs in (1, 2):
            with pytest.raises(Exception):
                execute([FAST_SPEC, bad], jobs=jobs, cache=cache)
            assert cache.load(FAST_SPEC) is not None

    def test_foreign_payload_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute([FAST_SPEC], cache=cache)
        path = cache.path_for(FAST_SPEC)
        payload = json.loads(path.read_text())
        payload["spec"]["seed"] = 12345  # key no longer matches body
        path.write_text(json.dumps(payload))
        assert cache.load(FAST_SPEC) is None

    def test_bitflipped_report_evicted_and_reexecuted(self, tmp_path):
        # Entries travel (rsync, cache-lookup frames): a payload whose
        # digest no longer matches must never be served.
        cache = ResultCache(tmp_path)
        execute([FAST_SPEC], cache=cache)
        path = cache.path_for(FAST_SPEC)
        payload = json.loads(path.read_text())
        payload["report"]["title"] = "tampered"  # spec half untouched
        path.write_text(json.dumps(payload))
        assert cache.load(FAST_SPEC) is None
        assert cache.stats.evictions == 1
        assert not path.exists()
        (outcome,) = execute([FAST_SPEC], cache=cache)
        assert not outcome.cached
        assert cache.load(FAST_SPEC) is not None

    def test_pre_digest_entry_reads_as_miss(self, tmp_path):
        # Entries written before the digest field existed must be
        # treated as unverifiable, not trusted.
        cache = ResultCache(tmp_path)
        execute([FAST_SPEC], cache=cache)
        path = cache.path_for(FAST_SPEC)
        payload = json.loads(path.read_text())
        del payload["digest"]
        path.write_text(json.dumps(payload))
        assert cache.load(FAST_SPEC) is None
        assert cache.stats.evictions == 1

    def test_truncated_file_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute([FAST_SPEC], cache=cache)
        path = cache.path_for(FAST_SPEC)
        text = path.read_text()
        path.write_text(text[:len(text) // 2])
        assert cache.load(FAST_SPEC) is None
        assert cache.stats.evictions == 1
        assert not path.exists()

    def test_digest_is_stable_across_roundtrip(self, tmp_path):
        from repro.runner.cache import (payload_digest,
                                        report_to_payload)

        cache = ResultCache(tmp_path)
        (outcome,) = execute([FAST_SPEC], cache=cache)
        stored = json.loads(cache.path_for(FAST_SPEC).read_text())
        assert stored["digest"] \
            == payload_digest(report_to_payload(outcome.report))


class TestManifest:
    def test_merge_outcomes_keeps_report_shape(self):
        outcomes = execute([FAST_SPEC], jobs=1)
        merged = merge_outcomes(outcomes, title="unit sweep")
        assert merged.experiment_id == "sweep"
        assert merged.title == "unit sweep"
        key = FAST_SPEC.key()
        assert merged.data[key]["spec"] == FAST_SPEC.canonical()
        assert merged.data[key]["data"]
        assert "run manifest" in merged.tables[0]
        assert merged.render()  # the familiar renderer still works

    def test_json_report_is_deterministic(self, tmp_path):
        outcomes = execute([FAST_SPEC], jobs=1)
        write_json_report(outcomes, tmp_path / "a.json")
        write_json_report(outcomes, tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() \
            == (tmp_path / "b.json").read_bytes()
        payload = json.loads((tmp_path / "a.json").read_text())
        assert payload["manifest"]["jobs"] == 1
        assert FAST_SPEC.key() in payload["reports"]


class TestCli:
    def test_run_quick_parallel_round_trip(self, capsys):
        from repro.cli import main

        assert main(["run", "e1", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "Figure 1" in out

    def test_run_with_cache_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        args = ["run", "e7", "--quick", "--jobs", "2",
                "--cache-dir", str(tmp_path),
                "--set", "port_counts=[8, 16]"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "1 executed, 0 cached" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed, 1 cached" in second

    def test_sweep_round_trip(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "sweep.json"
        assert main(["sweep", "e7", "--quick", "--replicas", "2",
                     "--base-seed", "3", "--set", "port_counts=[[8]]",
                     "--json-out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "run manifest: 2 jobs" in out
        payload = json.loads(out_path.read_text())
        assert len(payload["reports"]) == 2

    def test_bad_set_pair_errors(self, capsys):
        from repro.cli import main

        assert main(["run", "e1", "--quick", "--set", "nonsense"]) == 2
        assert "bad --set" in capsys.readouterr().err

    def test_bad_counts_error_cleanly(self, capsys):
        from repro.cli import main

        assert main(["run", "e1", "--quick", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["sweep", "e7", "--quick", "--shards", "2",
                     "--shard-index", "5"]) == 2
        assert "--shard-index" in capsys.readouterr().err

    def test_unknown_scheduler_errors_cleanly(self, capsys):
        from repro.cli import main

        assert main(["run", "e3", "--quick",
                     "--scheduler", "bogus"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_wallclock_flag_restores_e7_series(self, capsys):
        from repro.cli import main

        assert main(["run", "e7", "--quick"]) == 0
        assert "wall-clock" not in capsys.readouterr().out
        assert main(["run", "e7", "--quick", "--wallclock"]) == 0
        assert "wall-clock" in capsys.readouterr().out

    def test_cache_dir_collides_with_file(self, tmp_path, capsys):
        from repro.cli import main

        bogus = tmp_path / "occupied"
        bogus.write_text("not a directory")
        assert main(["run", "e7", "--quick",
                     "--cache-dir", str(bogus)]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestReplicaBatch:
    """--jobs 1 vs --jobs 4 vs --replica-batch: same bytes, same cache."""

    E5_OVERRIDES = {"loads": [0.5, 0.9], "slots": 120, "warmup": 20,
                    "n_ports": 8}

    def _plan(self):
        return plan_runs(["e5"], quick=True, base_seed=5, replicas=3,
                         grid={key: [value] for key, value
                               in self.E5_OVERRIDES.items()})

    @staticmethod
    def _payloads(outcomes):
        from repro.runner.cache import report_to_payload

        return [canonical_json(report_to_payload(o.report))
                for o in outcomes]

    def test_byte_identical_across_execution_modes(self):
        specs = self._plan()
        sequential = execute(specs, jobs=1)
        parallel = execute(specs, jobs=4)
        batched = execute(specs, jobs=1, replica_batch=True)
        batched_parallel = execute(specs, jobs=4, replica_batch=True)
        reference = self._payloads(sequential)
        assert self._payloads(parallel) == reference
        assert self._payloads(batched) == reference
        assert self._payloads(batched_parallel) == reference

    def test_replica_batch_fills_cache_for_plain_runs(self, tmp_path):
        specs = self._plan()
        cache = ResultCache(tmp_path)
        cold = execute(specs, jobs=1, cache=cache, replica_batch=True)
        assert all(not o.cached for o in cold)
        # Warm pass — any mode — re-executes nothing.
        warm = execute(specs, jobs=4, cache=cache)
        assert all(o.cached for o in warm)
        warm_batch = execute(specs, jobs=1, cache=cache,
                             replica_batch=True)
        assert all(o.cached for o in warm_batch)
        assert self._payloads(warm) == self._payloads(cold)
        assert self._payloads(warm_batch) == self._payloads(cold)

    def test_mixed_plan_batches_only_eligible_groups(self):
        # e5 replicas batch; e7 (no batch entry point) and a seedless
        # e5 run fall back to per-spec execution — outputs unchanged.
        specs = self._plan() + [
            RunSpec("e7", quick=True, overrides={"port_counts": [8]}),
            RunSpec("e5", quick=True, overrides=self.E5_OVERRIDES),
        ]
        plain = execute(specs, jobs=1)
        batched = execute(specs, jobs=1, replica_batch=True)
        assert self._payloads(batched) == self._payloads(plain)

    def test_cli_replica_batch_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        plain_out = tmp_path / "plain.json"
        batch_out = tmp_path / "batch.json"
        base = ["sweep", "e5", "--quick", "--replicas", "2",
                "--base-seed", "3",
                "--set", "loads=[[0.5]]", "--set", "slots=100",
                "--set", "warmup=10", "--set", "n_ports=8"]
        assert main(base + ["--json-out", str(plain_out)]) == 0
        assert main(base + ["--replica-batch",
                            "--json-out", str(batch_out)]) == 0
        capsys.readouterr()
        plain = json.loads(plain_out.read_text())["reports"]
        batch = json.loads(batch_out.read_text())["reports"]
        assert plain == batch
