"""Performance trajectory subsystem: microbench registry + records.

Three small modules:

* :mod:`repro.perf.benches` — the single registry of microbenchmarks;
  ``repro perf`` and ``benchmarks/bench_micro.py`` (pytest-benchmark)
  both consume it, so a hot path is declared exactly once.
* :mod:`repro.perf.runner` — calibrated best-of-repeats timing.
* :mod:`repro.perf.record` — ``BENCH_<rev>.json`` write/load/diff plus
  the vector-vs-reference engine speedup pairing.

The committed baseline lives in ``benchmarks/baselines/``; CI's
``perf-smoke`` job measures the quick subset each run and prints an
advisory diff against it (warn, never fail — shared-runner wall clocks
jitter too much to gate on).
"""

from repro.perf.benches import (
    Bench,
    bench_names,
    get_bench,
    iter_benches,
    register_bench,
)
from repro.perf.record import (
    BenchDelta,
    BenchRecord,
    current_revision,
    diff_records,
    engine_speedups,
    latest_record,
)
from repro.perf.runner import BenchResult, measure, run_suite

__all__ = [
    "Bench",
    "BenchResult",
    "BenchRecord",
    "BenchDelta",
    "register_bench",
    "get_bench",
    "iter_benches",
    "bench_names",
    "measure",
    "run_suite",
    "current_revision",
    "latest_record",
    "diff_records",
    "engine_speedups",
]
