"""Tests for the hardware/software timing models."""

import pytest

from repro.hwmodel.hardware import HardwareSchedulerTiming
from repro.hwmodel.presets import TIMING_PRESETS, make_timing
from repro.hwmodel.software import SoftwareSchedulerTiming
from repro.hwmodel.timing import IdealTiming, LatencyBreakdown
from repro.sim.errors import ConfigurationError
from repro.sim.time import MICROSECONDS, MILLISECONDS, NANOSECONDS


class TestLatencyBreakdown:
    def test_total_is_sum(self):
        b = LatencyBreakdown(1, 2, 3, 4, 5)
        assert b.total_ps == 15

    def test_as_dict_keys(self):
        d = LatencyBreakdown(1, 2, 3, 4, 5).as_dict()
        assert list(d) == ["demand_estimation", "computation", "io",
                           "propagation", "synchronization", "total"]

    def test_str_mentions_total(self):
        assert "total" in str(LatencyBreakdown(0, 0, 0, 0, 0))


class TestIdealTiming:
    def test_everything_zero(self):
        assert IdealTiming().total_ps("mwm", 256) == 0


class TestHardwareTiming:
    def test_cycle_period(self):
        timing = HardwareSchedulerTiming(clock_hz=200e6)
        assert timing.cycle_ps == pytest.approx(5000)  # 5 ns

    def test_tdma_is_one_cycle(self):
        timing = HardwareSchedulerTiming(clock_hz=200e6)
        assert timing.computation_cycles("tdma", 64) == 1

    def test_islip_cycles_scale_with_iterations(self):
        timing = HardwareSchedulerTiming()
        one = timing.computation_cycles("islip", 64, {"iterations": 1})
        four = timing.computation_cycles("islip", 64, {"iterations": 4})
        assert four == 4 * one

    def test_mwm_cycles_quadratic(self):
        timing = HardwareSchedulerTiming()
        assert timing.computation_cycles("mwm", 64) == 64 * 64

    def test_unknown_algorithm_priced_conservatively(self):
        timing = HardwareSchedulerTiming()
        assert timing.computation_cycles("mystery", 64) > 0

    def test_no_synchronisation_cost(self):
        breakdown = HardwareSchedulerTiming().breakdown("islip", 64)
        assert breakdown.synchronization_ps == 0

    def test_faster_clock_scales_everything_but_propagation(self):
        slow = HardwareSchedulerTiming(clock_hz=200e6,
                                       propagation_ps=5 * NANOSECONDS)
        fast = HardwareSchedulerTiming(clock_hz=1e9,
                                       propagation_ps=5 * NANOSECONDS)
        b_slow = slow.breakdown("islip", 64, {"iterations": 4})
        b_fast = fast.breakdown("islip", 64, {"iterations": 4})
        assert b_fast.computation_ps == pytest.approx(
            b_slow.computation_ps / 5, rel=0.01)
        assert b_fast.propagation_ps == b_slow.propagation_ps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HardwareSchedulerTiming(clock_hz=0)
        with pytest.raises(ConfigurationError):
            HardwareSchedulerTiming(pipeline_depth=0)
        with pytest.raises(ConfigurationError):
            HardwareSchedulerTiming(bus_bits=0)


class TestSoftwareTiming:
    def test_polling_scales_with_hosts(self):
        timing = SoftwareSchedulerTiming(per_host_poll_ps=10 * MICROSECONDS)
        b16 = timing.breakdown("mwm", 16)
        b64 = timing.breakdown("mwm", 64)
        assert (b64.demand_estimation_ps - b16.demand_estimation_ps
                == 48 * 10 * MICROSECONDS)

    def test_sync_guard_present(self):
        timing = SoftwareSchedulerTiming(sync_guard_ps=100 * MICROSECONDS)
        assert timing.breakdown("mwm", 16).synchronization_ps \
            == 100 * MICROSECONDS

    def test_operation_counts_ordering(self):
        timing = SoftwareSchedulerTiming()
        assert timing.operation_count("tdma", 64) \
            < timing.operation_count("islip", 64, {"iterations": 4}) \
            < timing.operation_count("mwm", 64)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoftwareSchedulerTiming(ns_per_op=0)


class TestPresets:
    def test_all_presets_instantiate(self):
        for name in TIMING_PRESETS:
            timing = make_timing(name)
            assert timing.total_ps("islip", 64) >= 0

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            make_timing("nope")

    def test_paper_magnitudes(self):
        """The §2 claim itself: software is ms-class, hardware is not."""
        hw = make_timing("netfpga_sume").total_ps(
            "islip", 64, {"iterations": 4})
        sw_h = make_timing("cpu_helios").total_ps("hotspot", 64)
        sw_c = make_timing("cpu_cthrough").total_ps("hotspot", 64)
        assert hw < 10 * MICROSECONDS
        assert sw_h > 500 * MICROSECONDS
        assert sw_c > 1 * MILLISECONDS
        assert sw_h / hw > 1000  # 3+ orders of magnitude

    def test_asic_faster_than_fpga(self):
        fpga = make_timing("netfpga_sume").total_ps("islip", 64)
        asic = make_timing("asic_1ghz").total_ps("islip", 64)
        assert asic < fpga
