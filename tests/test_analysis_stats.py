"""Tests for run statistics."""

import numpy as np
import pytest

from repro.analysis.stats import (
    batch_means_ci,
    compare_means,
    truncate_warmup,
)
from repro.sim.errors import ConfigurationError


class TestBatchMeansCI:
    def test_constant_series_zero_width(self):
        ci = batch_means_ci([5.0] * 100)
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.low == ci.high == 5.0

    def test_covers_true_mean_of_iid_noise(self):
        rng = np.random.default_rng(1)
        hits = 0
        trials = 40
        for __ in range(trials):
            data = rng.normal(10.0, 2.0, size=400)
            ci = batch_means_ci(data, n_batches=10, confidence=0.95)
            if ci.low <= 10.0 <= ci.high:
                hits += 1
        # 95% nominal coverage; allow generous slack for 40 trials.
        assert hits >= 33

    def test_more_data_narrows_interval(self):
        rng = np.random.default_rng(2)
        small = batch_means_ci(rng.normal(0, 1, 200), n_batches=10)
        large = batch_means_ci(rng.normal(0, 1, 20_000), n_batches=10)
        assert large.half_width < small.half_width

    def test_relative_precision(self):
        ci = batch_means_ci([10.0] * 40)
        assert ci.relative_precision == 0.0

    def test_str_renders(self):
        text = str(batch_means_ci(list(range(40))))
        assert "±" in text and "95%" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            batch_means_ci([1.0] * 10, n_batches=1)
        with pytest.raises(ConfigurationError):
            batch_means_ci([1.0] * 5, n_batches=10)
        with pytest.raises(ConfigurationError):
            batch_means_ci([1.0] * 100, confidence=1.5)


class TestTruncateWarmup:
    def test_removes_obvious_transient(self):
        series = [100.0] * 20 + [1.0] * 200
        cut, rest = truncate_warmup(series)
        assert cut >= 20
        assert max(rest) == 1.0

    def test_stationary_series_keeps_everything_useful(self):
        rng = np.random.default_rng(3)
        series = list(rng.normal(5, 0.1, 200))
        cut, rest = truncate_warmup(series)
        assert cut < 100  # bounded by max_fraction
        assert len(rest) == 200 - cut

    def test_short_series_untouched(self):
        assert truncate_warmup([1.0, 2.0]) == (0, [1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            truncate_warmup([1.0] * 10, max_fraction=1.0)


class TestCompareMeans:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(4)
        a = rng.normal(10, 1, 100)
        b = rng.normal(5, 1, 100)
        diff, significant = compare_means(a, b)
        assert diff == pytest.approx(5.0, abs=0.5)
        assert significant

    def test_identical_distributions_not_significant(self):
        # Seed chosen so the sample difference is comfortably inside
        # the acceptance region (p ≈ 0.34) — a 5%-level test will
        # occasionally reject equal distributions by design.
        rng = np.random.default_rng(0)
        a = rng.normal(5, 1, 100)
        b = rng.normal(5, 1, 100)
        __, significant = compare_means(a, b)
        assert not significant

    def test_degenerate_constant_series(self):
        diff, significant = compare_means([3.0, 3.0], [3.0, 3.0])
        assert diff == 0.0
        assert not significant
        diff2, significant2 = compare_means([4.0, 4.0], [3.0, 3.0])
        assert diff2 == 1.0
        assert significant2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compare_means([1.0], [2.0, 3.0])
