"""Tests for the shared buffer-memory meter."""

from repro.net.packet import Packet
from repro.switches.buffers import PacketQueue
from repro.switches.memory import (
    HOST_DRAM_BUDGET_BYTES,
    TOR_SRAM_BUDGET_BYTES,
    BufferMemoryMeter,
)


def _packet(size=100):
    return Packet(src=0, dst=1, size=size, created_ps=0)


class TestMeter:
    def test_tracks_aggregate_peak(self, sim):
        q1 = PacketQueue(sim, "a")
        q2 = PacketQueue(sim, "b")
        meter = BufferMemoryMeter("tor")
        meter.attach_all([q1, q2])
        q1.enqueue(_packet(100))
        q2.enqueue(_packet(200))       # aggregate 300
        q1.dequeue()
        q2.enqueue(_packet(50))        # aggregate 250
        assert meter.total_bytes == 250
        assert meter.peak_bytes == 300

    def test_attach_preserves_existing_hook(self, sim):
        q = PacketQueue(sim, "a")
        seen = []
        q.on_change = seen.append
        meter = BufferMemoryMeter("tor")
        meter.attach(q)
        q.enqueue(_packet(10))
        assert seen == [10]
        assert meter.total_bytes == 10

    def test_attach_counts_preexisting_occupancy(self, sim):
        q = PacketQueue(sim, "a")
        q.enqueue(_packet(70))
        meter = BufferMemoryMeter("tor")
        meter.attach(q)
        assert meter.total_bytes == 70

    def test_fits(self, sim):
        q = PacketQueue(sim, "a")
        meter = BufferMemoryMeter("tor")
        meter.attach(q)
        q.enqueue(_packet(1000))
        assert meter.fits(1000)
        assert not meter.fits(999)

    def test_budget_constants_sane(self):
        assert TOR_SRAM_BUDGET_BYTES < HOST_DRAM_BUDGET_BYTES
        assert TOR_SRAM_BUDGET_BYTES == 12 * 1024 * 1024
