"""Scenario runs rendered as :class:`ExperimentReport` — the runner seam.

``run_scenario(scenario, config)`` is the pure entry point the runner
executes for ``scenario:<name>`` jobs, with the same contract as the
``e1``..``e8`` entry points: the report is a deterministic function of
``(scenario, config)``, so scenario jobs cache, shard and parallelize
exactly like experiment jobs.

The :class:`~repro.experiments.base.ExperimentConfig` knobs map onto
scenario derivations: ``scheduler`` swaps the scheduler axis, ``seed``
replaces the scenario seed, ``quick`` applies :meth:`Scenario.quicken`,
and ``overrides`` are dotted-path edits (``traffic.0.load=0.8``) —
unknown paths raise instead of being silently ignored.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.scenario.build import build
from repro.scenario.spec import Scenario
from repro.sim.time import format_time


def configure(scenario: Scenario,
              config: ExperimentConfig) -> Scenario:
    """``scenario`` with the run config's derivations applied."""
    if config.scheduler:
        scenario = scenario.derive(scheduler=config.scheduler)
    if config.seed is not None:
        scenario = scenario.derive(seed=config.seed)
    if config.quick:
        scenario = scenario.quicken()
    # Overrides last, so an explicit --set duration_ps beats quicken.
    return scenario.with_overrides(config.overrides)


def run_scenario(scenario: Scenario,
                 config: ExperimentConfig) -> ExperimentReport:
    """Build, run and report one scenario — pure entry point."""
    scenario = configure(scenario, config)
    run = build(scenario)
    result = run.run()
    report = ExperimentReport(
        experiment_id=f"scenario:{scenario.name}",
        title=scenario.description or scenario.name,
    )
    latency = result.latency()
    report.tables.append(render_table(
        ["metric", "value"],
        [
            ["utilisation", f"{result.utilisation():.3f}"],
            ["offered load", f"{result.offered_load():.3f}"],
            ["delivery ratio", f"{result.delivery_ratio:.3f}"],
            ["OCS byte fraction", f"{result.ocs_fraction:.3f}"],
            ["delivered packets", str(result.delivered_count)],
            ["p50 latency", format_time(round(latency.p50_ps))],
            ["p99 latency", format_time(round(latency.p99_ps))],
            ["switch peak buffer",
             f"{result.switch_peak_buffer_bytes} B"],
            ["host peak buffer", f"{result.host_peak_buffer_bytes} B"],
            ["OCS reconfigurations",
             f"{result.ocs_reconfigurations} "
             f"({format_time(result.ocs_blackout_ps)} dark)"],
            ["epochs run", str(result.epochs_run)],
            ["drops (total)", str(result.total_drops)],
        ],
        title=f"scenario {scenario.name!r}: {scenario.n_ports} ports, "
              f"{scenario.scheduler} scheduler, "
              f"{format_time(scenario.duration_ps)}"))
    report.tables.append(render_table(
        ["drop cause", "packets"],
        [[cause, str(count)]
         for cause, count in sorted(result.drops.items())],
        title="drop accounting"))
    report.data["scenario"] = scenario.canonical()
    report.data["scenario_key"] = scenario.key()
    report.data["utilisation"] = result.utilisation()
    report.data["offered_load"] = result.offered_load()
    report.data["delivery_ratio"] = result.delivery_ratio
    report.data["ocs_fraction"] = result.ocs_fraction
    report.data["delivered_packets"] = result.delivered_count
    report.data["delivered_bytes"] = result.delivered_bytes
    report.data["latency_p50_ps"] = latency.p50_ps
    report.data["latency_p99_ps"] = latency.p99_ps
    report.data["drops"] = dict(sorted(result.drops.items()))
    report.data["switch_peak_buffer_bytes"] = \
        result.switch_peak_buffer_bytes
    report.data["host_peak_buffer_bytes"] = result.host_peak_buffer_bytes
    report.data["epochs_run"] = result.epochs_run
    report.data["ocs_reconfigurations"] = result.ocs_reconfigurations
    return report


__all__ = ["run_scenario", "configure"]
