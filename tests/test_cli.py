"""Tests for the ``repro`` CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_quick(self):
        args = build_parser().parse_args(["run", "e2", "--quick"])
        assert args.experiment == ["e2"]
        assert args.quick
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_run_accepts_multiple_experiments(self):
        args = build_parser().parse_args(
            ["run", "e1", "e3", "--jobs", "4"])
        assert args.experiment == ["e1", "e3"]
        assert args.jobs == 4

    def test_sweep_command(self):
        args = build_parser().parse_args(
            ["sweep", "e5", "--replicas", "3", "--base-seed", "7",
             "--set", "n_ports=8,16"])
        assert args.experiment == ["e5"]
        assert args.replicas == 3
        assert args.base_seed == 7
        assert args.set == ["n_ports=8,16"]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "islip" in out
        assert "netfpga_sume" in out

    def test_list_shows_one_line_docs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Experiments and schedulers both carry descriptions now.
        assert "Figure 1" in out
        assert "iSLIP" in out
        assert "incast" in out

    def test_run_e2_quick(self, capsys):
        assert main(["run", "e2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "cpu_helios" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_override_surfaces_as_warning(self, capsys):
        assert main(["run", "e2", "--quick",
                     "--set", "port_countz=[8]"]) == 0
        out = capsys.readouterr().out
        assert "Warnings:" in out
        assert "port_countz" in out

    def test_known_override_warns_nothing(self, capsys):
        assert main(["run", "e2", "--quick",
                     "--set", "port_counts=[8]"]) == 0
        assert "Warnings:" not in capsys.readouterr().out


class TestScenarioCommands:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("uniform", "incast", "failure-storm", "diurnal"):
            assert name in out

    def test_scenario_show_is_canonical_json(self, capsys):
        assert main(["scenario", "show", "incast"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "incast"
        assert payload["traffic"][0]["pattern"] == "incast"

    def test_scenario_show_applies_overrides(self, capsys):
        assert main(["scenario", "show", "uniform", "--quick",
                     "--set", "n_ports=4",
                     "--set", "traffic.0.load=0.9"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_ports"] == 4
        assert payload["traffic"][0]["load"] == 0.9
        assert payload["duration_ps"] == payload["quick_duration_ps"]

    def test_scenario_show_unknown_name(self, capsys):
        assert main(["scenario", "show", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenario_show_bad_override_path(self, capsys):
        assert main(["scenario", "show", "uniform",
                     "--set", "n_portz=4"]) == 2
        assert "n_portz" in capsys.readouterr().err

    def test_scenario_run_quick(self, capsys):
        assert main(["scenario", "run", "uniform", "--quick",
                     "--set", "duration_ps=600000000"]) == 0
        out = capsys.readouterr().out
        assert "SCENARIO:UNIFORM" in out
        assert "utilisation" in out

    def test_scenario_run_unknown_name(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenario_run_bad_override_path_exits_cleanly(self, capsys):
        assert main(["scenario", "run", "uniform",
                     "--set", "n_portz=4"]) == 2
        err = capsys.readouterr().err
        assert "n_portz" in err
        assert "Traceback" not in err

    def test_sweep_accepts_scenario_ids(self, capsys):
        assert main(["sweep", "scenario:uniform", "--quick",
                     "--replicas", "2", "--base-seed", "5",
                     "--set", "traffic.0.load=0.2,0.4",
                     "--set", "duration_ps=400000000"]) == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out
        assert "scenario:uniform" in out

    def test_run_rejects_unknown_scenario_id(self, capsys):
        assert main(["run", "scenario:nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_scenario_id_bad_override_exits_cleanly(self, capsys):
        assert main(["run", "scenario:uniform",
                     "--set", "n_portz=4"]) == 2
        assert "n_portz" in capsys.readouterr().err

    def test_sweep_scenario_id_bad_override_exits_cleanly(self, capsys):
        assert main(["sweep", "scenario:uniform",
                     "--set", "n_portz=4,8"]) == 2
        assert "n_portz" in capsys.readouterr().err

    def test_scenario_run_json_out(self, tmp_path, capsys):
        out_path = tmp_path / "scenario.json"
        assert main(["scenario", "run", "uniform", "--quick",
                     "--set", "duration_ps=600000000",
                     "--json-out", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["manifest"]["jobs"] == 1
        (report,) = payload["reports"].values()
        assert report["spec"]["experiment_id"] == "scenario:uniform"


class TestServiceCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.socket == ".repro-serve.sock"
        assert args.jobs == 1
        assert args.cache_dir == ".repro-cache"

    def test_run_accepts_server_flag(self):
        args = build_parser().parse_args(
            ["run", "e4", "--quick", "--server", "127.0.0.1:7777"])
        assert args.server == "127.0.0.1:7777"
        bare = build_parser().parse_args(["run", "e4", "--server"])
        assert bare.server == ".repro-serve.sock"
        default = build_parser().parse_args(["run", "e4"])
        assert default.server is None

    def test_serve_rejects_bad_address(self, capsys):
        assert main(["serve", "--socket", "not-an-address"]) == 2
        assert "bad service address" in capsys.readouterr().err

    def test_serve_rejects_bad_jobs(self, capsys):
        assert main(["serve", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_service_stats_unreachable_daemon(self, tmp_path, capsys):
        assert main(["service", "stats", "--server",
                     str(tmp_path / "nobody.sock")]) == 2
        assert "--server" in capsys.readouterr().err

    def test_run_unreachable_server_exits_cleanly(self, tmp_path,
                                                  capsys):
        code = main(["run", "e4", "--quick", "--server",
                     str(tmp_path / "nobody.sock")])
        assert code == 2
        assert "--server" in capsys.readouterr().err

    def test_run_via_server_matches_direct(self, tmp_path, capsys):
        import threading

        from repro.service import ReproDaemon

        daemon = ReproDaemon("127.0.0.1:0", jobs=1, quiet=True,
                             cache_dir=str(tmp_path / "cache"))
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        try:
            assert daemon.wait_ready(10)
            server_json = tmp_path / "server.json"
            direct_json = tmp_path / "direct.json"
            assert main(["run", "e4", "--quick",
                         "--server", daemon.bound_address,
                         "--json-out", str(server_json)]) == 0
            assert main(["run", "e4", "--quick",
                         "--json-out", str(direct_json)]) == 0
            capsys.readouterr()
            via_server = json.loads(server_json.read_text())
            direct = json.loads(direct_json.read_text())
            assert via_server["reports"] == direct["reports"]
            # Second submission of the same spec: pure cache, zero
            # re-execution daemon-side.
            warm_json = tmp_path / "warm.json"
            assert main(["run", "e4", "--quick",
                         "--server", daemon.bound_address,
                         "--json-out", str(warm_json)]) == 0
            capsys.readouterr()
            warm = json.loads(warm_json.read_text())
            assert warm["reports"] == direct["reports"]
            assert warm["manifest"]["entries"][0]["cached"] is True
        finally:
            daemon.request_shutdown()
            thread.join(timeout=15)
        assert not thread.is_alive()

    def test_server_flag_notes_ignored_local_settings(self, tmp_path,
                                                      capsys):
        code = main(["run", "e4", "--quick", "--jobs", "4",
                     "--cache-dir", str(tmp_path / "c"),
                     "--server", str(tmp_path / "nobody.sock")])
        assert code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err and "--cache-dir" in err
        assert "daemon-side" in err


class TestWorkerCommand:
    def test_worker_parser_defaults(self):
        args = build_parser().parse_args(["worker"])
        assert args.connect == ".repro-serve.sock"
        assert args.jobs == 1
        assert args.replica_batch is False
        assert args.name is None

    def test_serve_fleet_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.lease_timeout == 30.0
        assert args.no_local is False

    def test_worker_rejects_bad_jobs(self, capsys):
        assert main(["worker", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_worker_rejects_bad_address(self, capsys):
        assert main(["worker", "--connect", "not-an-address"]) == 2
        assert "bad service address" in capsys.readouterr().err

    def test_worker_unreachable_daemon_exits_2(self, tmp_path,
                                               capsys):
        code = main(["worker", "--connect",
                     str(tmp_path / "nobody.sock"), "--quiet"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--connect" in err
        assert len(err.strip().splitlines()) == 1

    def test_worker_garbled_handshake_exits_2(self, capsys):
        # A daemon whose registration reply is not a valid frame
        # (here: a length prefix past MAX_FRAME_BYTES) raises
        # ProtocolError out of the handshake, which must map to the
        # same one-line exit-2 contract as an unreachable daemon.
        import socket
        import struct
        import threading

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()

        def serve():
            conn, _ = server.accept()
            conn.recv(1 << 16)  # swallow the register frame
            conn.sendall(struct.pack(">I", 1 << 31))
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            code = main(["worker", "--connect", f"{host}:{port}",
                         "--quiet"])
        finally:
            thread.join(timeout=10)
            server.close()
        assert code == 2
        err = capsys.readouterr().err
        assert f"--connect {host}:{port}" in err
        assert len(err.strip().splitlines()) == 1

    def _daemon(self, tmp_path, **kwargs):
        import threading

        from repro.service import ReproDaemon

        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("quiet", True)
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        daemon = ReproDaemon("127.0.0.1:0", **kwargs)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        assert daemon.wait_ready(10)
        return daemon, thread

    def test_worker_version_mismatch_exits_2_with_both_versions(
            self, tmp_path, capsys, monkeypatch):
        from repro.service.protocol import PROTOCOL_VERSION

        daemon, thread = self._daemon(tmp_path)
        try:
            monkeypatch.setattr(
                "repro.service.protocol.PROTOCOL_VERSION", 999)
            code = main(["worker", "--connect",
                         daemon.bound_address, "--quiet"])
            assert code == 2
            err = capsys.readouterr().err
            assert "999" in err
            assert str(PROTOCOL_VERSION) in err
        finally:
            daemon.request_shutdown()
            thread.join(timeout=15)
        assert not thread.is_alive()

    def test_service_workers_lists_fleet(self, tmp_path, capsys):
        import threading

        from repro.service.worker import ReproWorker

        daemon, thread = self._daemon(tmp_path)
        worker = ReproWorker(daemon.bound_address, jobs=2,
                             name="cli-node", quiet=True)
        wthread = threading.Thread(target=worker.run, daemon=True)
        wthread.start()
        try:
            assert worker.wait_registered(10)
            assert main(["service", "workers", "--server",
                         daemon.bound_address]) == 0
            out = capsys.readouterr().out
            assert "cli-node" in out
            assert main(["service", "workers", "--server",
                         daemon.bound_address, "--json"]) == 0
            rows = json.loads(capsys.readouterr().out)
            assert rows[0]["name"] == "cli-node"
            assert rows[0]["jobs"] == 2
            assert main(["service", "stats", "--server",
                         daemon.bound_address]) == 0
            stats_out = capsys.readouterr().out
            assert "cli-node" in stats_out
            assert "workers_registered" in stats_out
        finally:
            daemon.request_shutdown()
            wthread.join(timeout=15)
            thread.join(timeout=15)
        assert not thread.is_alive() and not wthread.is_alive()

    def test_service_workers_empty_fleet(self, tmp_path, capsys):
        daemon, thread = self._daemon(tmp_path)
        try:
            assert main(["service", "workers", "--server",
                         daemon.bound_address]) == 0
            assert "no workers registered" in capsys.readouterr().out
        finally:
            daemon.request_shutdown()
            thread.join(timeout=15)
        assert not thread.is_alive()

    def test_sweep_via_fleet_matches_direct(self, tmp_path, capsys):
        import threading

        from repro.service.worker import ReproWorker

        # The CLI-level acceptance path: a sweep routed through a
        # daemon whose only executors are two remote TCP workers is
        # byte-identical to direct local execution.
        daemon, thread = self._daemon(tmp_path, local_execution=False)
        workers = []
        for _ in range(2):
            worker = ReproWorker(daemon.bound_address, jobs=1,
                                 quiet=True)
            wthread = threading.Thread(target=worker.run, daemon=True)
            wthread.start()
            assert worker.wait_registered(10)
            workers.append((worker, wthread))
        try:
            fleet_json = tmp_path / "fleet.json"
            direct_json = tmp_path / "direct.json"
            assert main(["sweep", "e4", "--quick", "--replicas", "3",
                         "--server", daemon.bound_address,
                         "--json-out", str(fleet_json)]) == 0
            assert main(["sweep", "e4", "--quick", "--replicas", "3",
                         "--json-out", str(direct_json)]) == 0
            capsys.readouterr()
            fleet = json.loads(fleet_json.read_text())
            direct = json.loads(direct_json.read_text())
            assert fleet["reports"] == direct["reports"]
            assert fleet["manifest"]["executed"] == 3
            assert all(entry["error"] is None
                       for entry in fleet["manifest"]["entries"])
        finally:
            daemon.request_shutdown()
            for worker, wthread in workers:
                wthread.join(timeout=15)
            thread.join(timeout=15)
        assert not thread.is_alive()


class TestDurabilityFlags:
    def test_serve_resume_defaults_on(self):
        args = build_parser().parse_args(["serve"])
        assert args.resume is True
        args = build_parser().parse_args(["serve", "--no-resume"])
        assert args.resume is False

    def test_worker_durability_flags(self):
        args = build_parser().parse_args(["worker"])
        assert args.cache_dir == ""
        assert args.retry_max == 8
        assert args.retry_base == 0.25
        args = build_parser().parse_args(
            ["worker", "--cache-dir", "/tmp/wc",
             "--retry-max", "3", "--retry-base", "0.5"])
        assert args.cache_dir == "/tmp/wc"
        assert args.retry_max == 3
        assert args.retry_base == 0.5

    def test_run_retry_flags(self):
        args = build_parser().parse_args(
            ["run", "e4", "--server", "--retry-max", "5",
             "--retry-base", "0.1"])
        assert args.retry_max == 5
        assert args.retry_base == 0.1
        defaults = build_parser().parse_args(["run", "e4"])
        assert defaults.retry_max == 5
        assert defaults.retry_base == 0.2

    def test_chaos_requires_upstream(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])
        assert "--upstream" in capsys.readouterr().err

    def test_chaos_rejects_bad_probability(self, capsys):
        assert main(["chaos", "--upstream", "127.0.0.1:1",
                     "--p-disconnect", "1.5"]) == 2
        assert "--p-disconnect" in capsys.readouterr().err

    def test_chaos_rejects_bad_upstream(self, capsys):
        assert main(["chaos", "--upstream", "not-an-address"]) == 2
        assert "bad service address" in capsys.readouterr().err


class TestFailoverFlags:
    def test_serve_standby_flags(self):
        args = build_parser().parse_args(
            ["serve", "--standby", "--follow", "127.0.0.1:7461",
             "--socket", "127.0.0.1:7462"])
        assert args.standby is True
        assert args.follow == "127.0.0.1:7461"
        defaults = build_parser().parse_args(["serve"])
        assert defaults.standby is False
        assert defaults.follow is None
        assert defaults.retry_max == 3
        assert defaults.retry_base == 0.2

    def test_standby_needs_follow(self, capsys):
        assert main(["serve", "--standby"]) == 2
        assert "--follow" in capsys.readouterr().err

    def test_standby_needs_cache_dir(self, capsys):
        assert main(["serve", "--standby", "--follow", "127.0.0.1:1",
                     "--cache-dir", ""]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_standby_rejects_bad_follow(self, capsys):
        assert main(["serve", "--standby",
                     "--follow", "host:notaport"]) == 2
        assert "bad service address" in capsys.readouterr().err

    def test_worker_heartbeat_flag(self):
        args = build_parser().parse_args(
            ["worker", "--heartbeat", "2.5"])
        assert args.heartbeat == 2.5
        assert build_parser().parse_args(["worker"]).heartbeat is None

    def test_worker_rejects_nonpositive_heartbeat(self, capsys):
        assert main(["worker", "--heartbeat", "0"]) == 2
        assert "--heartbeat" in capsys.readouterr().err

    def test_worker_accepts_address_list(self, capsys):
        # Parse-level validation of the failover list: one bad entry
        # fails the whole thing before any dial.
        assert main(["worker", "--connect",
                     "127.0.0.1:1,host:notaport"]) == 2
        assert "bad service address" in capsys.readouterr().err

    def test_chaos_duration_flag(self):
        args = build_parser().parse_args(
            ["chaos", "--upstream", "127.0.0.1:1",
             "--duration", "5"])
        assert args.duration == 5.0
        bare = build_parser().parse_args(
            ["chaos", "--upstream", "127.0.0.1:1"])
        assert bare.duration is None

    def test_supervise_parser_defaults(self):
        args = build_parser().parse_args(["supervise"])
        assert args.server == ".repro-serve.sock"
        assert args.attach is False
        assert args.min_workers == 1
        assert args.max_workers == 4
        assert args.scale_up_depth == 8
        assert args.restart_budget == 5
        assert args.status_json == ""

    def test_supervise_rejects_bad_watermarks(self, capsys):
        assert main(["supervise", "--min-workers", "4",
                     "--max-workers", "2"]) == 2
        assert "--max-workers" in capsys.readouterr().err

    def test_supervise_rejects_bad_server_list(self, capsys):
        assert main(["supervise", "--server", "a,host:notaport"]) == 2
        assert "bad service address" in capsys.readouterr().err
