"""Tests for the Solstice-style and c-Through-style hybrid schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.hotspot import HotspotScheduler
from repro.schedulers.solstice import SolsticeScheduler
from repro.sim.errors import SchedulingError
from repro.sim.time import GIGABIT, MICROSECONDS


@st.composite
def demand_matrices(draw, max_n=6):
    n = draw(st.integers(min_value=2, max_value=max_n))
    values = draw(st.lists(st.integers(0, 100_000),
                           min_size=n * n, max_size=n * n))
    demand = np.array(values, dtype=float).reshape(n, n)
    np.fill_diagonal(demand, 0.0)
    return demand


class TestSolstice:
    def test_big_flows_get_circuits(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 1_000_000.0
        demand[2, 3] = 900_000.0
        scheduler = SolsticeScheduler(4, reconfig_ps=20 * MICROSECONDS)
        result = scheduler.compute(demand)
        served = result.served_matrix()
        assert served[0, 1] and served[2, 3]

    def test_tiny_demand_rides_free_on_stuffed_circuits(self):
        # Stuffing balances the matrix, so the (1, 0) circuit exists in
        # the big slices anyway and the 10 bytes ride it — no residue.
        demand = np.zeros((4, 4))
        demand[0, 1] = 1_000_000.0
        demand[1, 0] = 10.0
        scheduler = SolsticeScheduler(
            4, link_rate_bps=10 * GIGABIT,
            reconfig_ps=20 * MICROSECONDS, min_slice_factor=1.0)
        result = scheduler.compute(demand)
        assert result.eps_residue is not None
        assert result.eps_residue[1, 0] == pytest.approx(0.0)

    def test_unserved_demand_lands_in_residue(self):
        # A one-matching budget on conflicting heavy pairs (same input)
        # forces the loser onto the EPS.
        demand = np.zeros((4, 4))
        demand[0, 1] = 1_000_000.0
        demand[0, 2] = 1_000_000.0
        scheduler = SolsticeScheduler(
            4, link_rate_bps=10 * GIGABIT,
            reconfig_ps=20 * MICROSECONDS, max_matchings=1)
        result = scheduler.compute(demand)
        assert result.eps_residue.sum() > 0
        # Input 0 can serve at most one of the two pairs in one matching.
        assert (result.eps_residue[0, 1] > 0
                or result.eps_residue[0, 2] > 0)

    def test_served_plus_residue_covers_demand(self):
        rng = np.random.default_rng(0)
        demand = rng.pareto(1.5, (5, 5)) * 100_000
        np.fill_diagonal(demand, 0.0)
        scheduler = SolsticeScheduler(5, reconfig_ps=10 * MICROSECONDS)
        result = scheduler.compute(demand)
        # Residue is exactly demand minus circuit-served bytes, >= 0.
        assert (result.eps_residue >= -1e-9).all()
        assert (result.eps_residue <= demand + 1e-9).all()

    def test_max_matchings_cap(self):
        rng = np.random.default_rng(2)
        demand = rng.random((6, 6)) * 1e6
        np.fill_diagonal(demand, 0.0)
        scheduler = SolsticeScheduler(6, reconfig_ps=1 * MICROSECONDS,
                                      max_matchings=3)
        result = scheduler.compute(demand)
        assert len(result.matchings) <= 3

    def test_zero_demand(self):
        scheduler = SolsticeScheduler(4, reconfig_ps=MICROSECONDS)
        result = scheduler.compute(np.zeros((4, 4)))
        assert result.first.size == 0
        assert result.eps_residue.sum() == 0

    def test_validation(self):
        with pytest.raises(SchedulingError):
            SolsticeScheduler(4, link_rate_bps=0)
        with pytest.raises(SchedulingError):
            SolsticeScheduler(4, min_slice_factor=-1)

    @given(demand_matrices())
    @settings(max_examples=25, deadline=None)
    def test_property_hold_times_positive_and_residue_bounded(self, demand):
        scheduler = SolsticeScheduler(
            demand.shape[0], reconfig_ps=5 * MICROSECONDS)
        result = scheduler.compute(demand)
        for __, hold in result.matchings:
            assert hold >= 0
        assert (result.eps_residue >= -1e-9).all()
        assert (result.eps_residue <= demand + 1e-9).all()


class TestHotspot:
    def test_single_matching_with_hold(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 100.0
        scheduler = HotspotScheduler(3, hold_ps=777)
        result = scheduler.compute(demand)
        assert len(result.matchings) == 1
        assert result.matchings[0][1] == 777

    def test_threshold_excludes_small_flows(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 1000.0
        demand[1, 2] = 10.0
        scheduler = HotspotScheduler(3, threshold_bytes=100.0)
        result = scheduler.compute(demand)
        matching = result.first
        assert matching.output_for(0) == 1
        assert matching.output_for(1) is None
        assert result.eps_residue[1, 2] == pytest.approx(10.0)

    def test_residue_zero_for_circuit_served_pairs(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 500.0
        scheduler = HotspotScheduler(3)
        result = scheduler.compute(demand)
        assert result.eps_residue[0, 1] == 0.0

    def test_picks_max_weight_assignment(self):
        demand = np.array([
            [0.0, 10.0, 90.0],
            [90.0, 0.0, 10.0],
            [10.0, 90.0, 0.0],
        ])
        result = HotspotScheduler(3).compute(demand)
        matching = result.first
        assert matching.output_for(0) == 2
        assert matching.output_for(1) == 0
        assert matching.output_for(2) == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(SchedulingError):
            HotspotScheduler(3, threshold_bytes=-1)

    @given(demand_matrices())
    @settings(max_examples=25, deadline=None)
    def test_property_residue_complements_served(self, demand):
        scheduler = HotspotScheduler(demand.shape[0])
        result = scheduler.compute(demand)
        served = demand - result.eps_residue
        # Served entries only where matched, and non-negative everywhere.
        assert (served >= -1e-9).all()
        matching = result.first
        matched = matching.to_matrix()
        assert (served[~matched] == 0).all()
