"""Fault injection — the transients a testbed sees and a clean sim hides.

§3: the hardware testbed "allows to detect and analyse transient
effects that may not be visible under simulation environments".  We
close that gap from the simulation side by injecting the transients
deliberately:

* :class:`~repro.faults.injectors.LinkFlapInjector` — a link PHY goes
  dark for a window; frames offered meanwhile are lost.
* :class:`~repro.faults.injectors.SchedulerStallInjector` — the
  scheduling loop freezes (control-plane hiccup, software GC pause);
  the fabric keeps running on the last grants.
* :class:`~repro.faults.injectors.ConfigCorruptionInjector` — the OCS
  applies a wrong matching once (bit-flip on the config bus); traffic
  misdirects until the next epoch repairs it.

Each injector arms itself on construction and records what it did, so
experiments can correlate injected cause with observed effect.
"""

from repro.faults.injectors import (
    ConfigCorruptionInjector,
    LinkFlapInjector,
    SchedulerStallInjector,
)

__all__ = [
    "LinkFlapInjector",
    "SchedulerStallInjector",
    "ConfigCorruptionInjector",
]
