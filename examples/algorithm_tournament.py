#!/usr/bin/env python3
"""Scheduler tournament: every registered algorithm on every workload.

The framework's registry makes "run everything against everything"
one loop.  Each registered cell-capable scheduler runs on the slotted
fabric under four workloads at heavy load; the leaderboard ranks by
mean throughput, with sparklines showing each algorithm's profile
across workloads.

    python examples/algorithm_tournament.py
"""

from repro.analysis.charts import sparkline
from repro.analysis.tables import render_table
from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import (
    diagonal_rates,
    hotspot_rates,
    log_diagonal_rates,
    uniform_rates,
)
from repro.schedulers.registry import available_schedulers, create_scheduler

N_PORTS = 16
LOAD = 0.9
SLOTS = 2_500
WARMUP = 400

WORKLOADS = (
    ("uniform", uniform_rates),
    ("diagonal", diagonal_rates),
    ("log-diagonal", log_diagonal_rates),
    ("hotspot", hotspot_rates),
)

#: Schedulers that emit one matching per call and need no rate/hold
#: configuration — the cell-fabric-capable subset of the registry.
CELL_CAPABLE = ("tdma", "pim", "islip", "wfa", "greedy-mwm", "mwm",
                "distributed-greedy")


def main() -> None:
    names = [n for n in available_schedulers() if n in CELL_CAPABLE]
    scores = {}
    for name in names:
        per_workload = []
        for __, workload in WORKLOADS:
            scheduler = create_scheduler(name, n_ports=N_PORTS)
            stats = CellFabricSim(scheduler, workload(N_PORTS, LOAD),
                                  seed=13).run(SLOTS, warmup=WARMUP)
            per_workload.append(stats.throughput)
        scores[name] = per_workload

    ranking = sorted(scores.items(),
                     key=lambda kv: -sum(kv[1]) / len(kv[1]))
    rows = []
    for rank, (name, values) in enumerate(ranking, start=1):
        mean = sum(values) / len(values)
        rows.append([str(rank), name, f"{mean:.3f}", sparkline(values)]
                    + [f"{v:.3f}" for v in values])
    print(render_table(
        ["#", "scheduler", "mean", "profile"]
        + [w for w, __ in WORKLOADS],
        rows,
        title=f"tournament: {N_PORTS} ports, load {LOAD}, "
              f"{SLOTS} slots per cell"))
    print()
    print("profile sparkline spans the four workloads left to right; "
          "a flat bar means robust across traffic shapes.")


if __name__ == "__main__":
    main()
