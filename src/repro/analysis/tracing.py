"""Per-packet path tracing through the hybrid switch.

Attach a :class:`PathTracer` to a framework before ``run()`` and every
packet's journey is recorded as a sequence of ``(stage, time)`` hops:

    emitted -> switch_ingress -> [voq_enqueue -> voq_dequeue] ->
    (ocs_in | eps_in) -> delivered

The tracer answers the questions a testbed's logic analyser would:
where did a given packet spend its time, which stage dominates the
latency distribution, and which path (OCS/EPS) did each flow take.
Tracing costs one dict append per hop; enable it for diagnosis runs,
not for long sweeps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.net.host import Host
from repro.sim.time import format_time

if TYPE_CHECKING:  # avoid a runtime cycle: core.results uses analysis
    from repro.core.framework import HybridSwitchFramework


@dataclass(frozen=True)
class Hop:
    """One stage crossing of one packet."""

    stage: str
    time_ps: int


class PathTracer:
    """Records every packet's hop sequence through a framework."""

    STAGES = ("emitted", "switch_ingress", "ocs_in", "eps_in",
              "delivered")

    def __init__(self, framework: "HybridSwitchFramework") -> None:
        self.framework = framework
        self.sim = framework.sim
        self._paths: Dict[int, List[Hop]] = defaultdict(list)
        self._install()

    # -- wiring -------------------------------------------------------------

    def _install(self) -> None:
        framework = self.framework
        # Tracing needs the per-packet observable path: the batched
        # drain would enter the fabric behind the wrapped ocs_sink and
        # hide every ocs_in hop (same reason ProtocolAuditor calls it).
        framework.enable_observability()

        for host, downlink in zip(framework.hosts,
                                  framework.topology.downlinks):
            # Every delivery must cross the (wrapped) sink at true
            # arrival time, so eager delivery is switched off too.
            downlink.clear_eager_sink()
            original_emit = host.emit

            def emit_presend(packets, times, _host=host):
                # Chunked sources bypass emit(); record each packet's
                # hop at its true (future) emission instant.
                for packet, when in zip(packets, times):
                    self._record_at(packet, "emitted", when)
                Host.emit_presend(_host, packets, times)

            host.emit_presend = emit_presend  # type: ignore[assignment]

            def emit(packet, _original=original_emit):
                self._record(packet, "emitted")
                _original(packet)

            host.emit = emit  # type: ignore[assignment]

            original_receive = host.receive

            def receive(packet, _original=original_receive):
                _original(packet)
                self._record(packet, "delivered")

            host.receive = receive  # type: ignore[assignment]
            # The downlink captured the original bound method at build
            # time; re-point it at the wrapper.
            downlink.connect(receive)

        processing = framework.processing
        original_ingress = processing.ingress

        def ingress(packet):
            self._record(packet, "switch_ingress")
            original_ingress(packet)

        # Re-point the uplinks at the wrapped ingress.
        processing.ingress = ingress  # type: ignore[assignment]
        for uplink in framework.topology.uplinks:
            uplink.connect(ingress)

        original_ocs = processing.ocs_sink
        original_eps = processing.eps_sink

        def ocs_sink(packet):
            self._record(packet, "ocs_in")
            original_ocs(packet)

        def eps_sink(packet):
            self._record(packet, "eps_in")
            original_eps(packet)

        processing.ocs_sink = ocs_sink
        processing.eps_sink = eps_sink

    def _record(self, packet, stage: str) -> None:
        self._paths[packet.packet_id].append(Hop(stage, self.sim.now))

    def _record_at(self, packet, stage: str, time_ps: int) -> None:
        self._paths[packet.packet_id].append(Hop(stage, time_ps))

    # -- queries ---------------------------------------------------------------

    def path(self, packet_id: int) -> List[Hop]:
        """The hop sequence of one packet (empty if unseen)."""
        return list(self._paths.get(packet_id, []))

    def traced_packets(self) -> int:
        """Number of distinct packets seen."""
        return len(self._paths)

    def stage_latency_ps(self, packet_id: int,
                         from_stage: str, to_stage: str) -> Optional[int]:
        """Time between two stages for one packet, or None."""
        times = {hop.stage: hop.time_ps
                 for hop in self._paths.get(packet_id, [])}
        if from_stage not in times or to_stage not in times:
            return None
        return times[to_stage] - times[from_stage]

    def stage_breakdown(self) -> Dict[Tuple[str, str], List[int]]:
        """Per-packet latency samples for each adjacent stage pair."""
        breakdown: Dict[Tuple[str, str], List[int]] = defaultdict(list)
        for hops in self._paths.values():
            for earlier, later in zip(hops, hops[1:]):
                breakdown[(earlier.stage, later.stage)].append(
                    later.time_ps - earlier.time_ps)
        return dict(breakdown)

    def fabric_of(self, packet_id: int) -> Optional[str]:
        """"ocs" / "eps" / None according to the traced path."""
        stages = {hop.stage for hop in self._paths.get(packet_id, [])}
        if "ocs_in" in stages:
            return "ocs"
        if "eps_in" in stages:
            return "eps"
        return None

    def render_path(self, packet_id: int) -> str:
        """Printable hop list for one packet."""
        hops = self._paths.get(packet_id, [])
        if not hops:
            return f"packet {packet_id}: no trace"
        parts = [f"{hop.stage}@{format_time(hop.time_ps)}"
                 for hop in hops]
        return f"packet {packet_id}: " + " -> ".join(parts)


__all__ = ["PathTracer", "Hop"]
