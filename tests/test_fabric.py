"""Tests for the slotted cell fabric and its workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import (
    diagonal_rates,
    hotspot_rates,
    log_diagonal_rates,
    permutation_rates,
    uniform_rates,
)
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.mwm import MwmScheduler
from repro.schedulers.fixed import RoundRobinTdma
from repro.sim.errors import ConfigurationError


class TestWorkloads:
    WORKLOADS = [uniform_rates, diagonal_rates, log_diagonal_rates,
                 hotspot_rates, permutation_rates]

    @pytest.mark.parametrize("factory", WORKLOADS)
    def test_admissible(self, factory):
        rates = factory(8, 0.9)
        assert (rates >= 0).all()
        assert (np.diagonal(rates) == 0).all()
        assert (rates.sum(axis=1) <= 0.9 + 1e-9).all()
        assert (rates.sum(axis=0) <= 0.9 + 1e-9).all()

    @pytest.mark.parametrize("factory", WORKLOADS)
    def test_row_sums_hit_load(self, factory):
        rates = factory(8, 0.6)
        assert np.allclose(rates.sum(axis=1), 0.6)

    def test_uniform_is_uniform(self):
        rates = uniform_rates(4, 0.9)
        off_diag = rates[~np.eye(4, dtype=bool)]
        assert np.allclose(off_diag, 0.3)

    def test_diagonal_two_destinations(self):
        rates = diagonal_rates(4, 0.9)
        assert rates[0, 1] == pytest.approx(0.6)
        assert rates[0, 2] == pytest.approx(0.3)
        assert rates[0, 3] == 0.0

    def test_hotspot_skew_bounds(self):
        with pytest.raises(ConfigurationError):
            hotspot_rates(4, 0.5, skew=1.5)

    def test_load_bounds(self):
        with pytest.raises(ConfigurationError):
            uniform_rates(4, 0.0)
        with pytest.raises(ConfigurationError):
            uniform_rates(4, 1.1)

    def test_permutation_shift_validation(self):
        with pytest.raises(ConfigurationError):
            permutation_rates(4, 0.5, shift=4)

    @given(st.integers(2, 12), st.floats(0.05, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_property_log_diagonal_admissible(self, n, load):
        rates = log_diagonal_rates(n, load)
        assert (rates.sum(axis=1) <= load + 1e-9).all()
        assert (rates.sum(axis=0) <= load + 1e-6).all()


class TestCellFabricSim:
    def test_conservation(self):
        sched = IslipScheduler(4, iterations=1)
        sim = CellFabricSim(sched, uniform_rates(4, 0.5), seed=1)
        stats = sim.run(slots=500)
        assert stats.departures + stats.backlog_cells >= stats.arrivals \
            - stats.peak_backlog_cells  # loose sanity
        # Exact conservation with no warmup: everything that arrived is
        # either out or still queued.
        assert stats.departures + stats.backlog_cells == stats.arrivals

    def test_throughput_bounded_by_offered(self):
        sched = MwmScheduler(4)
        sim = CellFabricSim(sched, uniform_rates(4, 0.4), seed=2)
        stats = sim.run(slots=400)
        assert stats.throughput <= stats.offered + 1e-9

    def test_light_load_fully_served(self):
        sched = IslipScheduler(8, iterations=2)
        sim = CellFabricSim(sched, uniform_rates(8, 0.2), seed=3)
        stats = sim.run(slots=2_000, warmup=200)
        assert stats.served_fraction > 0.98
        assert stats.mean_delay_slots < 5

    def test_mwm_beats_tdma_on_diagonal(self):
        rates = diagonal_rates(8, 0.8)
        tdma_stats = CellFabricSim(RoundRobinTdma(8), rates,
                                   seed=4).run(1_000, warmup=100)
        mwm_stats = CellFabricSim(MwmScheduler(8), rates,
                                  seed=4).run(1_000, warmup=100)
        assert mwm_stats.throughput > tdma_stats.throughput

    def test_same_seed_reproducible(self):
        rates = uniform_rates(4, 0.5)
        a = CellFabricSim(IslipScheduler(4), rates, seed=7).run(300)
        b = CellFabricSim(IslipScheduler(4), rates, seed=7).run(300)
        assert a == b

    def test_rate_matrix_validation(self):
        sched = IslipScheduler(4)
        with pytest.raises(ConfigurationError):
            CellFabricSim(sched, np.zeros((3, 3)))
        bad = uniform_rates(4, 0.5)
        bad[0, 0] = 0.1
        with pytest.raises(ConfigurationError):
            CellFabricSim(sched, bad)
        bad2 = uniform_rates(4, 0.5)
        bad2[0, 1] = 1.5
        with pytest.raises(ConfigurationError):
            CellFabricSim(sched, bad2)

    def test_run_parameter_validation(self):
        sim = CellFabricSim(IslipScheduler(4), uniform_rates(4, 0.5))
        with pytest.raises(ConfigurationError):
            sim.run(slots=0)
        with pytest.raises(ConfigurationError):
            sim.run(slots=10, warmup=-1)

    def test_delay_measured_fifo(self):
        # Permutation load at low rate: cells depart almost immediately.
        sched = MwmScheduler(4)
        sim = CellFabricSim(sched, permutation_rates(4, 0.3), seed=5)
        stats = sim.run(slots=1_000, warmup=100)
        assert stats.mean_delay_slots < 1.0
