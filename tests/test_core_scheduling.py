"""Tests for the scheduling logic's control loop."""

import pytest

from repro.core.processing import ProcessingLogic
from repro.core.scheduling import SchedulingLogic
from repro.core.switching import SwitchingLogic
from repro.hwmodel.timing import IdealTiming
from repro.hwmodel.software import SoftwareSchedulerTiming
from repro.net.host import HostBufferMode
from repro.net.link import Link
from repro.net.packet import Packet
from repro.schedulers.hotspot import HotspotScheduler
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.demand import InstantEstimator
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS
from repro.switches.eps import ElectricalPacketSwitch
from repro.switches.ocs import OpticalCircuitSwitch


def _stack(sim, n=4, switching_ps=1 * MICROSECONDS, epoch_ps=0,
           slot_ps=10 * MICROSECONDS, timing=None, scheduler=None,
           optimistic=False):
    downlinks = []
    for i in range(n):
        link = Link(sim, f"down{i}", 10 * GIGABIT)
        link.connect(lambda p: None)
        downlinks.append(link)
    ocs = OpticalCircuitSwitch(sim, n, switching_time_ps=switching_ps)
    eps = ElectricalPacketSwitch(sim, n)
    switching = SwitchingLogic(sim, ocs, eps, downlinks)
    processing = ProcessingLogic(
        sim, n, port_rate_bps=10 * GIGABIT,
        ocs_sink=switching.send_ocs, eps_sink=switching.send_eps)
    scheduler = scheduler or IslipScheduler(n, iterations=2)
    scheduling = SchedulingLogic(
        sim, scheduler, timing or IdealTiming(),
        InstantEstimator(n), processing, switching,
        epoch_ps=epoch_ps, default_slot_ps=slot_ps,
        optimistic_grant=optimistic)
    return scheduling, processing, switching, ocs


def _packet(src=0, dst=1, size=1500):
    return Packet(src=src, dst=dst, size=size, created_ps=0)


class TestEpochLoop:
    def test_epochs_advance(self, sim):
        scheduling, __, __s, __o = _stack(sim, slot_ps=10 * MICROSECONDS)
        scheduling.start()
        sim.run(until=100 * MICROSECONDS)
        assert scheduling.epochs_run >= 5

    def test_cannot_start_twice(self, sim):
        scheduling, __, __s, __o = _stack(sim)
        scheduling.start()
        with pytest.raises(ConfigurationError):
            scheduling.start()

    def test_epoch_period_respected(self, sim):
        scheduling, __, __s, __o = _stack(
            sim, epoch_ps=100 * MICROSECONDS, slot_ps=1 * MICROSECONDS)
        scheduling.start()
        sim.run(until=1 * MILLISECONDS)
        # 1ms / 100us = about 10 epochs (+- boundary effects).
        assert 8 <= scheduling.epochs_run <= 12

    def test_latency_breakdowns_recorded(self, sim):
        timing = SoftwareSchedulerTiming()
        scheduling, __, __s, __o = _stack(
            sim, timing=timing, epoch_ps=2 * MILLISECONDS)
        scheduling.start()
        sim.run(until=5 * MILLISECONDS)
        assert scheduling.latency_breakdowns
        # 4-port software loop: ~140us polling + 30us IO + 5us
        # propagation + 100us sync guard.
        assert scheduling.mean_loop_latency_ps() > 200 * MICROSECONDS

    def test_software_timing_limits_epoch_rate(self, sim):
        timing = SoftwareSchedulerTiming()  # ~ms loop latency
        scheduling, __, __s, __o = _stack(
            sim, timing=timing, epoch_ps=0, slot_ps=1 * MICROSECONDS)
        scheduling.start()
        sim.run(until=10 * MILLISECONDS)
        # The ~275us software loop (4 ports) caps the epoch rate at
        # roughly 36 epochs in 10 ms; an ideal-timing run would manage
        # thousands with the 1us slot.
        assert scheduling.epochs_run <= 40

    def test_on_schedule_hook_sees_demand_and_result(self, sim):
        scheduling, processing, __, __o = _stack(sim)
        seen = []
        scheduling.on_schedule = lambda demand, result: seen.append(
            (demand.copy(), result))
        processing.ingress(_packet())
        scheduling.start()
        sim.run(until=50 * MICROSECONDS)
        assert seen
        demand, result = seen[0]
        assert demand[0, 1] == 1500


class TestConfigureThenGrant:
    def test_grant_window_opens_at_ocs_ready(self, sim):
        switching_ps = 5 * MICROSECONDS
        scheduling, processing, switching, ocs = _stack(
            sim, switching_ps=switching_ps,
            scheduler=HotspotScheduler(4, hold_ps=20 * MICROSECONDS))
        processing.ingress(_packet())
        scheduling.start()
        sim.run(until=MILLISECONDS)
        # The packet crossed the OCS and nothing was dark-dropped.
        assert ocs.forwarded.count == 1
        assert ocs.dark_drops.count == 0

    def test_optimistic_grant_exposes_blackout(self, sim):
        switching_ps = 50 * MICROSECONDS
        scheduling, processing, switching, ocs = _stack(
            sim, switching_ps=switching_ps,
            scheduler=HotspotScheduler(4, hold_ps=20 * MICROSECONDS),
            optimistic=True)
        processing.ingress(_packet())
        scheduling.start()
        sim.run(until=MILLISECONDS)
        # The window opened during the blackout: the drain fires
        # immediately and the OCS eats the packet.
        assert ocs.dark_drops.count >= 1

    def test_residue_diverted_to_eps(self, sim):
        # Hotspot serves only the max-weight pair; the rest is residue.
        scheduling, processing, switching, __ = _stack(
            sim, scheduler=HotspotScheduler(4, hold_ps=20 * MICROSECONDS))
        processing.ingress(_packet(src=0, dst=1, size=1500))
        processing.ingress(_packet(src=0, dst=2, size=100))
        scheduling.start()
        sim.run(until=MILLISECONDS)
        assert switching.eps.forwarded.count == 1

    def test_grants_counted(self, sim):
        scheduling, processing, __, __o = _stack(sim)
        processing.ingress(_packet())
        scheduling.start()
        sim.run(until=100 * MICROSECONDS)
        assert scheduling.grants_issued.count == scheduling.epochs_run


class TestHostBufferedMode:
    def test_requires_hosts(self, sim):
        downlinks = []
        for i in range(2):
            link = Link(sim, f"down{i}", 10 * GIGABIT)
            link.connect(lambda p: None)
            downlinks.append(link)
        ocs = OpticalCircuitSwitch(sim, 2, switching_time_ps=0)
        eps = ElectricalPacketSwitch(sim, 2)
        switching = SwitchingLogic(sim, ocs, eps, downlinks)
        processing = ProcessingLogic(sim, 2, port_rate_bps=10 * GIGABIT)
        with pytest.raises(ConfigurationError, match="host"):
            SchedulingLogic(
                sim, IslipScheduler(2), IdealTiming(),
                InstantEstimator(2), processing, switching,
                hosts=None, mode=HostBufferMode.HOST_BUFFERED)

    def test_default_slot_validation(self, sim):
        with pytest.raises(ConfigurationError):
            _stack(sim, slot_ps=0)
