"""The Figure 1 analytic buffering model.

§2's worked example: "a switching infrastructure containing 64x64
input-queued switch (operating at a rate of 10 Gbps per port) with a
millisecond switching time results in approximately gigabytes of
buffering memory requirement ... a nanosecond switching time requires
only kilobytes".

Reconstructing the arithmetic behind that sentence: in an input-queued
switch each input keeps one VOQ per output, and a (partial-permutation)
circuit schedule serves **one VOQ per input per reconfiguration**.  In
the worst case a given VOQ therefore waits a full *service round* of
``n_ports`` reconfigurations between visits, and during that round the
input may keep receiving at line rate.  The loss-free requirement is:

    round window     = n_ports × (switching_time + scheduler_latency)
    per-port bytes   = rate × round window / 8
    switch bytes     = n_ports × per-port bytes

At the paper's operating point (64 × 10 Gbps) this gives **5.1 GB for a
1 ms switching time and 5.1 KB for 1 ns** — exactly the "gigabytes" and
"kilobytes" the paper quotes.  (A single-blackout model, also provided
as :meth:`BufferingModel.single_blackout_bytes`, under-counts by a
factor of n and cannot reproduce the GB figure.)

Adding ``scheduler_latency`` to each reconfiguration captures the
paper's other point: a slow scheduler inflates the requirement even
when the optical device itself is fast.

:func:`figure1_curve` sweeps switching time and reports, per point, the
total requirement and which device can host it (ToR SRAM vs host DRAM),
reproducing both the quantitative axis and the qualitative
"host-buffering vs switch-buffering" split of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, SECONDS, format_time
from repro.switches.memory import TOR_SRAM_BUDGET_BYTES


@dataclass(frozen=True)
class BufferingPoint:
    """One point on the Figure 1 curve."""

    switching_time_ps: int
    scheduler_latency_ps: int
    per_port_bytes: int
    total_bytes: int
    fits_in_tor: bool

    @property
    def regime(self) -> str:
        """"switch" when the ToR can buffer it, else "host"."""
        return "switch" if self.fits_in_tor else "host"

    def row(self) -> List[str]:
        """Table row: switching time, per-port, total, regime."""
        return [
            format_time(self.switching_time_ps),
            format_bytes(self.per_port_bytes),
            format_bytes(self.total_bytes),
            self.regime,
        ]


class BufferingModel:
    """Analytic burst-absorption requirement for a hybrid switch.

    Parameters
    ----------
    n_ports:
        Switch radix (64 in the paper's example).
    port_rate_bps:
        Line rate per port (10 Gbps in the paper's example).
    tor_budget_bytes:
        Packet memory a ToR can host; beyond it, buffering must move to
        the hosts (Figure 1's regime boundary).
    """

    def __init__(self, n_ports: int = 64,
                 port_rate_bps: float = 10 * GIGABIT,
                 tor_budget_bytes: int = TOR_SRAM_BUDGET_BYTES) -> None:
        if n_ports < 1:
            raise ConfigurationError("n_ports must be >= 1")
        if port_rate_bps <= 0:
            raise ConfigurationError("port rate must be positive")
        self.n_ports = n_ports
        self.port_rate_bps = port_rate_bps
        self.tor_budget_bytes = tor_budget_bytes

    # -- windows ---------------------------------------------------------------

    def round_window_ps(self, switching_time_ps: int,
                        scheduler_latency_ps: int = 0) -> int:
        """Worst-case VOQ revisit interval: n reconfigurations."""
        if switching_time_ps < 0 or scheduler_latency_ps < 0:
            raise ConfigurationError("times must be non-negative")
        return self.n_ports * (switching_time_ps + scheduler_latency_ps)

    # -- requirements ------------------------------------------------------------

    def per_port_bytes(self, switching_time_ps: int,
                       scheduler_latency_ps: int = 0) -> int:
        """Bytes one port must absorb across a full service round."""
        window_ps = self.round_window_ps(switching_time_ps,
                                         scheduler_latency_ps)
        return int(self.port_rate_bps * window_ps // (8 * SECONDS))

    def total_bytes(self, switching_time_ps: int,
                    scheduler_latency_ps: int = 0) -> int:
        """Whole-switch requirement (all ports bursting simultaneously)."""
        return self.n_ports * self.per_port_bytes(
            switching_time_ps, scheduler_latency_ps)

    def single_blackout_bytes(self, switching_time_ps: int,
                              scheduler_latency_ps: int = 0) -> int:
        """Per-port bytes across ONE blackout (the naive lower bound).

        Kept for comparison: this model cannot reproduce the paper's
        gigabyte figure — see module docstring.
        """
        if switching_time_ps < 0 or scheduler_latency_ps < 0:
            raise ConfigurationError("times must be non-negative")
        window_ps = switching_time_ps + scheduler_latency_ps
        return int(self.port_rate_bps * window_ps // (8 * SECONDS))

    def point(self, switching_time_ps: int,
              scheduler_latency_ps: int = 0) -> BufferingPoint:
        """Evaluate one sweep point."""
        per_port = self.per_port_bytes(switching_time_ps,
                                       scheduler_latency_ps)
        total = self.n_ports * per_port
        return BufferingPoint(
            switching_time_ps=switching_time_ps,
            scheduler_latency_ps=scheduler_latency_ps,
            per_port_bytes=per_port,
            total_bytes=total,
            fits_in_tor=total <= self.tor_budget_bytes,
        )

    def regime_boundary_ps(self, scheduler_latency_ps: int = 0) -> int:
        """Switching time at which the requirement exactly fills the ToR.

        Below this, Figure 1's "Fast Scheduling / switch buffering"
        regime applies; above it, packets must be stored at hosts.
        """
        # total = n^2 * rate * (sw + lat) / 8 => solve for sw.
        boundary = (self.tor_budget_bytes * 8 * SECONDS
                    / (self.n_ports * self.n_ports * self.port_rate_bps))
        return max(0, round(boundary) - scheduler_latency_ps)


def figure1_curve(switching_times_ps: Sequence[int],
                  n_ports: int = 64,
                  port_rate_bps: float = 10 * GIGABIT,
                  scheduler_latency_ps: int = 0,
                  tor_budget_bytes: int = TOR_SRAM_BUDGET_BYTES,
                  ) -> List[BufferingPoint]:
    """Sweep switching time at the paper's operating point.

    Defaults are the paper's example: 64 ports × 10 Gbps.
    """
    model = BufferingModel(n_ports, port_rate_bps, tor_budget_bytes)
    return [model.point(ps, scheduler_latency_ps)
            for ps in switching_times_ps]


def format_bytes(nbytes: int) -> str:
    """Human-readable byte size (decimal units, like the paper's GB/KB)."""
    if nbytes >= 1_000_000_000:
        return f"{nbytes / 1_000_000_000:.3g}GB"
    if nbytes >= 1_000_000:
        return f"{nbytes / 1_000_000:.3g}MB"
    if nbytes >= 1_000:
        return f"{nbytes / 1_000:.3g}KB"
    return f"{nbytes}B"


__all__ = ["BufferingModel", "BufferingPoint", "figure1_curve",
           "format_bytes"]
