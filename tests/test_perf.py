"""Tests for the repro.perf subsystem and the ``repro perf`` CLI."""

import json

import pytest

from repro.cli import main
from repro.perf.benches import Bench, bench_names, get_bench, iter_benches
from repro.perf.record import (
    SCHEMA,
    BenchRecord,
    current_revision,
    diff_records,
    engine_speedups,
    latest_record,
)
from repro.perf.runner import BenchResult, measure, run_suite


def _tiny_bench(name="tiny.noop", group="test", quick=True, value=1):
    return Bench(name=name, make=lambda: (lambda: value), group=group,
                 quick=quick, meta={"n_ports": 2})


def _result(name, ns, group="fabric"):
    return BenchResult(name=name, group=group, ns_per_op=ns, mean_ns=ns,
                       stddev_ns=0.0, loops=1, repeats=1, meta={})


class TestRegistry:
    def test_names_unique_and_sorted(self):
        names = bench_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))
        assert names  # non-empty

    def test_quick_subset_is_a_subset(self):
        assert set(bench_names(quick=True)) <= set(bench_names())

    def test_acceptance_pair_registered(self):
        # The 64-port uniform pair demonstrates the >=5x acceptance
        # criterion; both halves must be in the quick (CI) subset.
        quick = set(bench_names(quick=True))
        assert "fabric.islip1.uniform.n64.vector" in quick
        assert "fabric.islip1.uniform.n64.reference" in quick

    def test_dispatch_pair_registered(self):
        # The fleet-dispatch pair prices the service round-trip: the
        # same 64 no-op jobs through a local-execution daemon vs one
        # remote worker.  Both halves ride in the quick (CI) subset.
        quick = set(bench_names(quick=True))
        assert "service.dispatch.local.64jobs" in quick
        assert "service.dispatch.remote.64jobs" in quick
        assert get_bench("service.dispatch.remote.64jobs").group == \
            "service"

    def test_pattern_filter(self):
        assert all("islip" in name
                   for name in bench_names(pattern="islip"))
        assert bench_names(pattern="no-such-bench") == []

    def test_get_bench(self):
        bench = get_bench("sched.islip4.n16")
        assert bench.group == "scheduler"
        assert bench.meta["n_ports"] == 16

    def test_every_bench_make_is_callable(self):
        for bench in iter_benches():
            assert callable(bench.make)

    def test_every_bench_has_a_sanity_check(self):
        # A bench whose workload silently stops doing work must fail,
        # not record a flattering speedup into the trajectory.
        for bench in iter_benches():
            assert bench.check is not None, bench.name


class TestRunner:
    def test_measure_tiny(self):
        result = measure(_tiny_bench(), min_time_s=0.001, repeats=2)
        assert result.name == "tiny.noop"
        assert result.ns_per_op > 0
        assert result.loops >= 1
        assert result.repeats == 2
        assert result.ops_per_s > 0
        assert result.meta == {"n_ports": 2}

    def test_measure_runs_sanity_check(self):
        good = Bench(name="t.ok", make=lambda: (lambda: 7), group="test",
                     check=lambda value: value == 7)
        assert measure(good, min_time_s=0.001, repeats=1).ns_per_op > 0
        bad = Bench(name="t.bad", make=lambda: (lambda: 0), group="test",
                    check=lambda value: value == 7)
        with pytest.raises(ValueError, match="sanity check"):
            measure(bad, min_time_s=0.001, repeats=1)

    def test_measure_validates_parameters(self):
        with pytest.raises(ValueError):
            measure(_tiny_bench(), min_time_s=0)
        with pytest.raises(ValueError):
            measure(_tiny_bench(), repeats=0)

    def test_run_suite_streams_results(self):
        seen = []
        results = run_suite([_tiny_bench(), _tiny_bench("tiny.two")],
                            min_time_s=0.001, repeats=1,
                            on_result=seen.append)
        assert [r.name for r in results] == ["tiny.noop", "tiny.two"]
        assert seen == results


class TestRecord:
    def test_roundtrip(self, tmp_path):
        record = BenchRecord.capture([_result("a.vector", 100.0)],
                                     quick=True, revision="test-rev")
        path = record.write(tmp_path / "BENCH_test-rev.json")
        loaded = BenchRecord.load(path)
        assert loaded == record
        assert loaded.schema == SCHEMA
        payload = json.loads(path.read_text())
        assert payload["revision"] == "test-rev"

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": 99, "results": []}))
        with pytest.raises(ValueError):
            BenchRecord.load(path)

    def test_default_filename_sanitised(self):
        record = BenchRecord.capture([], quick=False,
                                     revision="abc123/dirty rev")
        assert record.default_filename() == "BENCH_abc123-dirty-rev.json"

    def test_revision_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REV", "pinned")
        assert current_revision() == "pinned"

    def test_latest_record_picks_newest_created(self, tmp_path):
        old = BenchRecord(revision="old", created_utc="2026-01-01T00:00:00",
                          python="3", numpy="2", machine="m", quick=True)
        new = BenchRecord(revision="new", created_utc="2026-06-01T00:00:00",
                          python="3", numpy="2", machine="m", quick=True)
        old.write(tmp_path / "BENCH_old.json")
        new.write(tmp_path / "BENCH_new.json")
        (tmp_path / "BENCH_junk.json").write_text("not json")
        assert latest_record(tmp_path).name == "BENCH_new.json"

    def test_latest_record_empty_dir(self, tmp_path):
        assert latest_record(tmp_path) is None


class TestDiff:
    def _records(self, baseline_ns, current_ns):
        base = BenchRecord.capture([_result("x", baseline_ns)], quick=True,
                                   revision="base")
        cur = BenchRecord.capture([_result("x", current_ns)], quick=True,
                                  revision="cur")
        return base, cur

    def test_statuses(self):
        base, cur = self._records(100.0, 140.0)
        (delta,) = diff_records(base, cur, threshold=0.25)
        assert delta.status == "regression"
        assert delta.ratio == pytest.approx(1.4)
        (delta,) = diff_records(*self._records(100.0, 60.0))
        assert delta.status == "improvement"
        (delta,) = diff_records(*self._records(100.0, 110.0))
        assert delta.status == "ok"

    def test_new_and_missing(self):
        base = BenchRecord.capture([_result("gone", 5.0)], quick=True,
                                   revision="base")
        cur = BenchRecord.capture([_result("fresh", 5.0)], quick=True,
                                  revision="cur")
        statuses = {d.name: d.status for d in diff_records(base, cur)}
        assert statuses == {"gone": "missing", "fresh": "new"}

    def test_quick_vs_full_baseline_suppresses_expected_missing(self):
        # CI diffs a --quick record against the committed full-mode
        # baseline; full-only benches must not spam MISSING there, but
        # a genuinely dropped bench in same-mode diffs still must.
        base = BenchRecord.capture(
            [_result("shared", 10.0), _result("full.only", 10.0)],
            quick=False, revision="base")
        cur = BenchRecord.capture([_result("shared", 10.0)], quick=True,
                                  revision="cur")
        statuses = {d.name: d.status for d in diff_records(base, cur)}
        assert statuses == {"shared": "ok"}

    def test_render_lines(self):
        base, cur = self._records(100.0, 150.0)
        (delta,) = diff_records(base, cur)
        assert "REGRESSION" in delta.render()
        assert "+50.0%" in delta.render()

    def test_engine_speedups_pairing(self):
        record = BenchRecord.capture(
            [_result("fabric.x.vector", 100.0),
             _result("fabric.x.reference", 700.0),
             _result("fabric.unpaired.vector", 50.0)],
            quick=True, revision="r")
        speedups = engine_speedups(record)
        assert speedups == {"fabric.x": pytest.approx(7.0)}


class TestPerfCli:
    FAST = ["--filter", "sched.islip4.n16", "--repeats", "1",
            "--min-time", "0.001"]

    def test_list(self, capsys):
        assert main(["perf", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fabric.islip1.uniform.n64.vector" in out
        assert "sched.islip4.n16" in out

    def test_run_writes_record(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_cli.json"
        code = main(["perf", *self.FAST, "--json-out", str(out_path)])
        assert code == 0
        record = BenchRecord.load(out_path)
        assert [r.name for r in record.results] == ["sched.islip4.n16"]
        assert "ns/op" in capsys.readouterr().out

    def test_unknown_filter_fails(self, capsys):
        assert main(["perf", "--filter", "nope-nothing"]) == 2
        assert "no benches match" in capsys.readouterr().err

    def test_baseline_diff_advisory(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        code = main(["perf", *self.FAST, "--json-out",
                     str(baseline_dir / "BENCH_base.json")])
        assert code == 0
        capsys.readouterr()
        # Advisory: exit 0 regardless of drift at a tiny threshold.
        code = main(["perf", *self.FAST, "--json-out",
                     str(tmp_path / "BENCH_cur.json"),
                     "--baseline", str(baseline_dir),
                     "--threshold", "10.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out
        assert "no regressions beyond threshold" in out

    def test_fail_on_regression_gates(self, tmp_path, capsys):
        baseline = BenchRecord.capture(
            [_result("sched.islip4.n16", 0.001)], quick=False,
            revision="impossible")
        baseline_path = baseline.write(tmp_path / "BENCH_fast.json")
        code = main(["perf", *self.FAST, "--json-out",
                     str(tmp_path / "BENCH_cur.json"),
                     "--baseline", str(baseline_path),
                     "--fail-on-regression"])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_dir_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        code = main(["perf", *self.FAST, "--json-out",
                     str(tmp_path / "BENCH_cur.json"),
                     "--baseline", str(tmp_path / "empty")])
        assert code == 2
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_committed_baseline_loads_and_pairs(self):
        # The repo ships baselines whose paired speedups demonstrate
        # each overhaul's acceptance criterion; keep the newest record
        # loadable and honest: >=5x on the PR-3 fabric pair, >=3x on
        # the PR-4 sweep pair, >=3x on the PR-5 packet-path pair.
        import pathlib
        baselines = pathlib.Path(__file__).parent.parent / "benchmarks" \
            / "baselines"
        path = latest_record(baselines)
        assert path is not None, "no committed BENCH_*.json baseline"
        record = BenchRecord.load(path)
        speedups = engine_speedups(record)
        assert speedups.get("fabric.islip1.uniform.n64", 0.0) >= 5.0
        assert speedups.get("sweep.fabric.uniform.n64", 0.0) >= 3.0
        assert speedups.get("packetpath.e2e.e4.n128", 0.0) >= 3.0
        # PR 7 prices fleet dispatch rather than claiming a speedup:
        # the committed record must carry both halves of the pair so
        # the overhead trajectory stays comparable across revisions.
        names = {result.name for result in record.results}
        assert "service.dispatch.local.64jobs" in names
        assert "service.dispatch.remote.64jobs" in names
