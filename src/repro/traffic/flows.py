"""Flow-level workload with empirical data-center size distributions.

Production DC studies report flow-size mixes with a heavy tail: most
flows are a few KB (mice), most *bytes* live in multi-MB flows
(elephants).  The two canonical published mixes:

* **web search** (partition/aggregate): median ~10 KB, tail to ~30 MB;
* **data mining**: 80 % of flows under 10 KB but 95 % of bytes in
  flows over 35 MB.

We encode both as coarse CDFs (:data:`WEBSEARCH_FLOW_SIZES`,
:data:`DATAMINING_FLOW_SIZES`) — coarse is appropriate: the scheduler
only cares that mice/elephant proportions are right, not the exact
quantiles of a specific 2010 cluster.

:class:`FlowSource` turns a size distribution into packets: flows
arrive Poisson at a rate chosen to hit a target offered load, each flow
picks a destination and streams its bytes as full-size frames paced at
the flow rate.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Optional, Sequence, Tuple

from repro.net.host import Host
from repro.net.packet import MAX_FRAME_BYTES, Packet, wire_size
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.time import SECONDS, transmission_time_ps
from repro.traffic.patterns import DestinationChooser

#: (cumulative probability, flow bytes) — web-search-style mix.
WEBSEARCH_FLOW_SIZES: Sequence[Tuple[float, int]] = (
    (0.15, 1_000),
    (0.50, 10_000),
    (0.80, 100_000),
    (0.95, 1_000_000),
    (0.99, 10_000_000),
    (1.00, 30_000_000),
)

#: (cumulative probability, flow bytes) — data-mining-style mix.
DATAMINING_FLOW_SIZES: Sequence[Tuple[float, int]] = (
    (0.50, 300),
    (0.80, 10_000),
    (0.90, 100_000),
    (0.95, 1_000_000),
    (0.98, 35_000_000),
    (1.00, 100_000_000),
)


class EmpiricalSizeDistribution:
    """Sample flow sizes from a coarse CDF with log-linear interpolation.

    Between two CDF knots sizes are interpolated geometrically, which
    keeps the samples heavy-tailed instead of clustering on the knots.
    """

    def __init__(self, cdf: Sequence[Tuple[float, int]]) -> None:
        if not cdf:
            raise ConfigurationError("empty CDF")
        previous_p = 0.0
        for p, size in cdf:
            if not previous_p < p <= 1.0:
                raise ConfigurationError(
                    f"CDF probabilities must increase to 1.0; saw {p}")
            if size <= 0:
                raise ConfigurationError("flow sizes must be positive")
            previous_p = p
        if abs(cdf[-1][0] - 1.0) > 1e-12:
            raise ConfigurationError("CDF must end at probability 1.0")
        self._probs = [p for p, __ in cdf]
        self._sizes = [s for __, s in cdf]

    def mean_bytes(self) -> float:
        """Approximate mean of the distribution (knot midpoints)."""
        total = 0.0
        previous_p = 0.0
        previous_s = self._sizes[0]
        for p, s in zip(self._probs, self._sizes):
            mid = (previous_s * s) ** 0.5
            total += (p - previous_p) * mid
            previous_p, previous_s = p, s
        return total

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes."""
        u = rng.random()
        index = bisect_left(self._probs, u)
        index = min(index, len(self._probs) - 1)
        hi_p, hi_s = self._probs[index], self._sizes[index]
        if index == 0:
            lo_p, lo_s = 0.0, max(1, self._sizes[0] // 10)
        else:
            lo_p, lo_s = self._probs[index - 1], self._sizes[index - 1]
        span = hi_p - lo_p
        frac = 0.0 if span <= 0 else (u - lo_p) / span
        # Geometric interpolation between knot sizes.
        size = lo_s * (hi_s / lo_s) ** frac
        return max(1, round(size))


class FlowSource:
    """Poisson flow arrivals with empirical sizes, paced per flow.

    Parameters
    ----------
    sim, host:
        Simulator and host to drive.
    chooser:
        Destination pattern (one destination per flow).
    distribution:
        Flow-size distribution.
    offered_bps:
        Target long-run offered load in bits/s; sets the flow arrival
        rate to ``offered / (8 * mean flow size)``.
    flow_rate_bps:
        Pacing rate of each flow's packets (default: line-ish 10G).
    """

    def __init__(self, sim: Simulator, host: Host,
                 chooser: DestinationChooser,
                 distribution: EmpiricalSizeDistribution,
                 offered_bps: float,
                 flow_rate_bps: float = 10e9,
                 packet_bytes: int = MAX_FRAME_BYTES,
                 rng: Optional[random.Random] = None,
                 start_ps: int = 0, until_ps: Optional[int] = None,
                 priority: int = 0) -> None:
        if offered_bps <= 0 or flow_rate_bps <= 0:
            raise ConfigurationError("rates must be positive")
        self.sim = sim
        self.host = host
        self.chooser = chooser
        self.distribution = distribution
        self.offered_bps = offered_bps
        self.flow_rate_bps = flow_rate_bps
        self.packet_bytes = packet_bytes
        self.rng = rng or random.Random(host.host_id)
        self.until_ps = until_ps
        self.priority = priority
        self.flows_started = 0
        self.packets_emitted = 0
        mean_flow_bytes = distribution.mean_bytes()
        flows_per_second = offered_bps / (8.0 * mean_flow_bytes)
        self._mean_gap_ps = SECONDS / flows_per_second
        self._packet_gap_ps = transmission_time_ps(
            wire_size(packet_bytes), flow_rate_bps)
        host.register_emitter(self)
        self.sim.at(start_ps, self._arm, label="flowsrc.start")

    def _arm(self) -> None:
        gap = round(self.rng.expovariate(1.0) * self._mean_gap_ps)
        self.sim.schedule(gap, self._start_flow, label="flowsrc.arrive")

    def _start_flow(self) -> None:
        if self._done():
            return
        self.flows_started += 1
        flow_id = self.sim.next_flow_id()
        dst = self.chooser.choose()
        remaining = self.distribution.sample(self.rng)
        self._flow_packet(dst, flow_id, remaining)
        self._arm()

    def _flow_packet(self, dst: int, flow_id: int, remaining: int) -> None:
        if self._done() or remaining <= 0:
            return
        size = min(self.packet_bytes, max(64, remaining))
        packet = Packet(
            src=self.host.host_id, dst=dst, size=size,
            created_ps=self.sim.now, flow_id=flow_id,
            priority=self.priority,
        )
        self.host.emit(packet)
        self.packets_emitted += 1
        self.sim.schedule(
            self._packet_gap_ps,
            lambda: self._flow_packet(dst, flow_id, remaining - size),
            label="flowsrc.pkt")

    def _done(self) -> bool:
        return self.until_ps is not None and self.sim.now >= self.until_ps


__all__ = [
    "EmpiricalSizeDistribution",
    "FlowSource",
    "WEBSEARCH_FLOW_SIZES",
    "DATAMINING_FLOW_SIZES",
]
