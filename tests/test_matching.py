"""Tests (including property-based) for the Matching type."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schedulers.matching import Matching
from repro.sim.errors import SchedulingError


@st.composite
def partial_permutations(draw, max_n=12):
    """Random valid partial permutations as out_of lists."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    outputs = list(range(n))
    rng_order = draw(st.permutations(outputs))
    out_of = []
    used = 0
    for i in range(n):
        if draw(st.booleans()):
            out_of.append(rng_order[used])
            used += 1
        else:
            out_of.append(None)
    return out_of


class TestValidation:
    def test_duplicate_output_rejected(self):
        with pytest.raises(SchedulingError):
            Matching([1, 1, None])

    def test_out_of_range_rejected(self):
        with pytest.raises(SchedulingError):
            Matching([3, None, None])

    def test_empty_matching_valid(self):
        m = Matching.empty(4)
        assert m.size == 0
        assert m.n == 4


class TestConstructors:
    def test_identity(self):
        m = Matching.identity(3)
        assert list(m.pairs()) == [(0, 0), (1, 1), (2, 2)]
        assert m.is_full()

    def test_cyclic_shift(self):
        m = Matching.cyclic_shift(4, 1)
        assert m.output_for(3) == 0
        assert m.is_full()

    def test_from_pairs(self):
        m = Matching.from_pairs(4, [(0, 2), (3, 1)])
        assert m.output_for(0) == 2
        assert m.output_for(1) is None
        assert m.size == 2

    def test_from_pairs_duplicate_input_rejected(self):
        with pytest.raises(SchedulingError):
            Matching.from_pairs(4, [(0, 1), (0, 2)])

    def test_from_pairs_input_range_checked(self):
        with pytest.raises(SchedulingError):
            Matching.from_pairs(4, [(9, 1)])

    def test_from_dict(self):
        m = Matching.from_dict(3, {1: 0})
        assert m.input_for(0) == 1


class TestQueries:
    def test_input_for_unmatched(self):
        assert Matching.empty(3).input_for(0) is None

    def test_to_matrix(self):
        m = Matching.from_pairs(3, [(0, 1), (2, 0)])
        matrix = m.to_matrix()
        assert matrix.dtype == bool
        assert matrix[0, 1] and matrix[2, 0]
        assert matrix.sum() == 2

    def test_weight(self):
        demand = np.arange(9, dtype=float).reshape(3, 3)
        m = Matching.from_pairs(3, [(0, 1), (1, 2)])
        assert m.weight(demand) == demand[0, 1] + demand[1, 2]

    def test_equality_and_hash(self):
        a = Matching.from_pairs(3, [(0, 1)])
        b = Matching.from_dict(3, {0: 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a != Matching.empty(3)

    def test_repr(self):
        assert "0->1" in repr(Matching.from_pairs(2, [(0, 1)]))


class TestProperties:
    @given(partial_permutations())
    def test_outputs_unique(self, out_of):
        m = Matching(out_of)
        outputs = [o for __, o in m.pairs()]
        assert len(outputs) == len(set(outputs))

    @given(partial_permutations())
    def test_pairs_roundtrip(self, out_of):
        m = Matching(out_of)
        rebuilt = Matching.from_pairs(m.n, m.pairs())
        assert rebuilt == m

    @given(partial_permutations())
    def test_matrix_row_col_sums_at_most_one(self, out_of):
        matrix = Matching(out_of).to_matrix()
        assert (matrix.sum(axis=0) <= 1).all()
        assert (matrix.sum(axis=1) <= 1).all()

    @given(partial_permutations())
    def test_input_for_inverts_output_for(self, out_of):
        m = Matching(out_of)
        for inp, out in m.pairs():
            assert m.input_for(out) == inp
