"""Bench E4 — VOIP-class latency & jitter, slow vs fast scheduling."""

from conftest import run_and_report

from repro.experiments.e4_jitter import run_e4


def test_bench_e4_latency_jitter(benchmark):
    report = run_and_report(benchmark, run_e4)
    fast, slow = report.data["fast"], report.data["slow"]
    assert slow["p99_ps"] > 10 * fast["p99_ps"]
    assert slow["jitter_ps"] > 10 * max(fast["jitter_ps"], 1.0)
