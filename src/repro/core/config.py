"""Framework configuration.

One dataclass gathers every knob of the hybrid switch so experiments are
declarative: build a :class:`FrameworkConfig`, hand it to
:class:`~repro.core.framework.HybridSwitchFramework`, run.
Validation happens eagerly in ``__post_init__`` — a bad experiment
should fail before any simulated time passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.net.host import HostBufferMode
from repro.sim.errors import ConfigurationError
from repro.sim.time import (
    GIGABIT,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
)


@dataclass
class FrameworkConfig:
    """Everything needed to instantiate a hybrid switch experiment.

    Attributes
    ----------
    n_ports:
        Switch radix == number of hosts (paper example: 64).
    port_rate_bps:
        Line rate per port (paper example: 10 Gbps).
    switching_time_ps:
        OCS reconfiguration blackout — Figure 1's x-axis.
    scheduler:
        Registry name of the scheduling algorithm.
    scheduler_kwargs:
        Extra constructor arguments for the scheduler factory.
    timing_preset:
        Timing-model preset name (see :mod:`repro.hwmodel.presets`);
        decides whether the *same* algorithm behaves like hardware or
        like software.
    estimator:
        "instant", "ewma" or "sketch" demand estimation.
    estimator_kwargs:
        Extra constructor arguments for the estimator.
    buffer_mode:
        ``SWITCH_BUFFERED`` (Figure 1 fast path) or ``HOST_BUFFERED``
        (slow path with grant-gated hosts).
    epoch_ps:
        Minimum scheduling-loop period.  The effective epoch is
        ``max(epoch_ps, loop latency + plan execution)``.
    default_slot_ps:
        Hold time used for matchings whose scheduler left hold == 0
        (cell-mode algorithms driving a circuit switch).
    eps_rate_bps:
        Residual electrical path rate per port (hybrid designs usually
        provision this below the optical line rate).
    eps_queue_bytes:
        Per-output EPS queue capacity (tail drop beyond).
    voq_capacity_bytes:
        Per-VOQ byte cap; ``None`` = unbounded (measure, don't drop).
    host_clock_skew_ps:
        Applied to every host in host-buffered mode (E8's x-axis).
    propagation_ps:
        Host–switch link propagation.
    control_latency_ps:
        Extra delay for grant delivery to hosts in host-buffered mode
        (the control channel; defaults to ``propagation_ps`` when None).
    seed:
        Master seed for all random streams.
    """

    n_ports: int = 8
    port_rate_bps: float = 10 * GIGABIT
    switching_time_ps: int = 1 * MICROSECONDS
    scheduler: str = "islip"
    scheduler_kwargs: Dict[str, Any] = field(default_factory=dict)
    timing_preset: str = "netfpga_sume"
    estimator: str = "instant"
    estimator_kwargs: Dict[str, Any] = field(default_factory=dict)
    buffer_mode: HostBufferMode = HostBufferMode.SWITCH_BUFFERED
    epoch_ps: int = 0
    default_slot_ps: int = 10 * MICROSECONDS
    eps_rate_bps: float = 10 * GIGABIT
    eps_queue_bytes: Optional[int] = None
    voq_capacity_bytes: Optional[int] = None
    host_clock_skew_ps: int = 0
    propagation_ps: int = 50 * NANOSECONDS
    control_latency_ps: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ports < 2:
            raise ConfigurationError(
                f"n_ports must be >= 2, got {self.n_ports}")
        if self.port_rate_bps <= 0:
            raise ConfigurationError("port_rate_bps must be positive")
        if self.switching_time_ps < 0:
            raise ConfigurationError("switching_time_ps must be >= 0")
        if self.epoch_ps < 0:
            raise ConfigurationError("epoch_ps must be >= 0")
        if self.default_slot_ps <= 0:
            raise ConfigurationError("default_slot_ps must be > 0")
        if self.eps_rate_bps <= 0:
            raise ConfigurationError("eps_rate_bps must be positive")
        if self.estimator not in ("instant", "ewma", "sketch"):
            raise ConfigurationError(
                f"unknown estimator {self.estimator!r}; expected "
                "'instant', 'ewma' or 'sketch'")
        if self.switching_time_ps >= 10 * MILLISECONDS:
            # Not an error — but 10ms+ blackouts with default epochs make
            # empty runs; force the caller to pick an epoch consciously.
            if self.epoch_ps == 0:
                raise ConfigurationError(
                    "switching_time_ps >= 10ms needs an explicit epoch_ps")

    @property
    def control_delay_ps(self) -> int:
        """Grant-delivery delay toward hosts (explicit or propagation)."""
        if self.control_latency_ps is not None:
            return self.control_latency_ps
        return self.propagation_ps


__all__ = ["FrameworkConfig"]
