"""Node and port identity types.

The rack model is small enough that identities are plain integers with
``NewType`` wrappers for readability.  A *node* is a host; a *port* is a
switch-facing port index, which in the single-rack topology equals the
host index (host ``i`` attaches to ToR port ``i``).
"""

from __future__ import annotations

from typing import NewType

NodeId = NewType("NodeId", int)
PortId = NewType("PortId", int)


def validate_port(port: int, n_ports: int, role: str = "port") -> int:
    """Range-check a port index, returning it for chaining.

    Raises ``ValueError`` with a descriptive message on failure; the
    message includes ``role`` ("source port", "destination port", ...)
    so protocol bugs localise quickly.
    """
    if not 0 <= port < n_ports:
        raise ValueError(f"{role} {port} out of range [0, {n_ports})")
    return port


__all__ = ["NodeId", "PortId", "validate_port"]
