"""Wire protocol of the sweep service: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding a single object with a ``type``
field.  The framing is deliberately primitive — no compression, no
out-of-band channels — because the payloads (specs and report
payloads) already have canonical JSON forms in :mod:`repro.runner`,
and byte-identity of reports across the wire falls out of reusing
them verbatim.

Conversation shape (client first)::

    -> {"type": "hello", "version": 1}
    <- {"type": "welcome", "version": 1, "jobs": N, ...}
    -> {"type": "submit", "submit_id": "s1", "specs": [<canonical>...]}
    <- {"type": "accepted", "submit_id": "s1", "total": n, "keys": [...]}
       # — or, when admission control sheds the submission —
    <- {"type": "busy", "submit_id": "s1", "retry_after_s": r,
        "queued": q, "inflight": i, "max_queue": m}
    <- {"type": "result", "submit_id": "s1", "index": i, "key": ...,
        "cached": bool, "coalesced": bool, "elapsed_s": t,
        "error": null | str, "kind": null | "CRASH" | "TIMEOUT" |
        "OOM" | "QUARANTINED" | "ERROR",
        "report": {<report payload>}}   # n times
    <- {"type": "done", "submit_id": "s1", "executed": e, "cached": c,
        "failed": f}
    -> {"type": "cancel", "submit_id": "s1"}     # any time
    <- {"type": "cancelled", "submit_id": "s1", "detached": k}
    -> {"type": "stats"}
    <- {"type": "stats", ...counters..., "workers": [...]}
    -> {"type": "shutdown"}
    <- {"type": "bye"}                           # after the drain

Conversation shape (worker first) — a remote worker node dials the
same listener but opens with ``register`` instead of ``hello``, then
*receives* work instead of submitting it::

    -> {"type": "register", "version": 1, "uid": "<stable id>",
        "jobs": N, "replica_batch": bool, "repro": "<version>",
        "name": ...}
    <- {"type": "registered", "worker_id": W, "reclaimed": r,
        "heartbeat_interval_s": h, "lease_timeout_s": t,
        "credit_window": c}
    <- {"type": "lease", "lease_id": "L7", "specs": [<canonical>...]}
    -> {"type": "cache-lookup", "lookup_id": "c1", "keys": [...]}
    <- {"type": "cache-result", "lookup_id": "c1", "hits": [...keys]}
    -> {"type": "upload", "lease_id": "L7", "key": ..., "elapsed_s": t,
        "cached": bool, "error": null | str, "kind": null | str,
        "report": {<report payload>}}            # per cold spec
    -> {"type": "cache-push", "key": ..., "spec": <canonical>,
        "elapsed_s": t, "error": null | str,
        "report": {<report payload>}}            # out-of-lease result
    -> {"type": "heartbeat"}                     # every h seconds
    <- {"type": "bye"}                           # on daemon drain

Conversation shape (standby hub first) — a standby daemon
(``repro serve --standby --follow ADDR``) dials the primary and opens
with ``peer``; the primary answers with a snapshot of its journal
state and then relays every subsequent journal append live::

    -> {"type": "peer", "version": 1, "name": "<standby name>"}
    <- {"type": "peer-welcome", "snapshot": {"live": {key: spec...},
        "quarantined": {key: {"kind", "error"}}},
        "digest": sha256(<canonical snapshot JSON>),
        "lease_timeout_s": t}
    <- {"type": "journal-sync", "seq": n, "records": [<record>...],
        "digest": sha256(<canonical records JSON>)}   # per append
    <- {"type": "sync-ping"}                     # reaper-paced liveness
    <- {"type": "bye"}                           # clean primary drain

Every ``peer-welcome``/``journal-sync`` frame carries a sha256 digest
over the canonical JSON of its state payload (:func:`sync_digest`);
the standby recomputes and, on mismatch, drops the connection and
re-dials — a fresh snapshot heals any divergence.  A primary without a
journal (no cache dir) refuses peers with error code ``no-journal``.
A standby that loses the primary mid-stream re-dials under its
``RetryPolicy``; only when every attempt fails does it *promote*:
replay its mirrored journal exactly as ``--resume`` does and start
serving on its own address.  A clean ``bye`` instead means the
primary drained on purpose, and the standby exits 0 without promoting.

The daemon leases at most ``credit_window`` specs to a worker at a
time (``CREDIT_FACTOR`` × its parallel width — one batch running, one
queued behind it); every ``upload`` frees a credit.  A worker whose
connection drops, or whose heartbeats stop for longer than the lease
timeout, is expelled and its leased specs are silently reassigned to
another executor — the submitting client never sees the gap.

Durability semantics layered on top of the framing:

* ``uid`` is a stable worker identity that survives reconnects.  When
  a connection drops but the *process* is alive (a network flap), the
  daemon parks the worker's leases instead of requeueing them; a
  re-``register`` with the same uid inside the lease timeout reclaims
  them (``reclaimed`` in the reply), so a flap costs zero
  re-executions.  Only a worker that stays gone past the lease
  timeout — or one that violates the protocol — is expelled.
* ``cache-lookup`` lets a worker ask the hub which of its leased keys
  are already warm in the hub's content-addressed cache; the daemon
  settles the hits from cache itself and the worker executes only the
  remainder.  ``cache-push`` travels the other way: a result computed
  while disconnected (or found in the worker's own local cache) is
  shipped hub-ward as a canonical payload, keyed — like everything
  else — by the spec's content hash, so double-delivery is idempotent.
* Specs are content-addressed, which makes every retry in the system
  (client resubmit, worker reconnect flush, daemon journal replay)
  an idempotent merge rather than duplicate work.

Overload and resource-exhaustion semantics (resource governance):

* ``busy`` is admission control's answer to a submit that would push
  the daemon past its queue watermark (``--max-queue``): the specs
  are **not** accepted or journaled, and the client's
  ``RetryPolicy`` honours ``retry_after_s`` before resubmitting —
  overload sheds load instead of ballooning daemon memory.  A submit
  may also be refused with ``error`` code ``cache-full`` when the
  cache volume is nearly out of disk: refusing to journal beats
  corrupting the journal.
* ``kind`` on ``result``/``upload``/``cache-push`` frames carries the
  failure taxonomy of :mod:`repro.runner.governance` so clients can
  distinguish a crash from a governor kill (TIMEOUT/OOM) from a
  quarantine verdict.  Absent/null on success; unknown values must be
  tolerated (additive field).

Any protocol violation is answered with
``{"type": "error", "code": ..., "message": ...}`` and — for framing
violations, where the byte stream can no longer be trusted — a closed
connection.  The daemon itself always survives a bad client.

Both an asyncio flavour (daemon side) and a blocking-socket flavour
(client side) of read/write are provided over the same framing, so
tests can drive either end against the other.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

#: Bump on incompatible message-shape changes; the HELLO/WELCOME
#: handshake rejects mismatches before any job state exists.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload.  Large enough for a full-size
#: merged report, small enough that a corrupt length prefix (or a
#: client speaking a different protocol entirely) cannot make the
#: daemon try to buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The byte stream violated the framing or message contract.

    ``code`` is a stable machine-readable slug mirrored into the
    ``error`` frame the daemon sends back before closing.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def encode_frame(message: Dict[str, Any]) -> bytes:
    """``message`` as one wire frame (header + JSON payload)."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"outgoing frame of {len(payload)} bytes exceeds "
            f"{MAX_FRAME_BYTES}")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """The message inside one frame's payload bytes, validated."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("bad-json",
                            f"frame payload is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad-message",
            f"frame payload must be an object, got "
            f"{type(message).__name__}")
    kind = message.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("bad-message",
                            "frame object is missing a string 'type'")
    return message


def _check_length(length: int) -> None:
    if length == 0:
        raise ProtocolError("bad-frame", "zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")


# -- asyncio flavour (daemon side) ------------------------------------------


async def read_frame_async(
        reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """The next message, or ``None`` on a clean end-of-stream.

    A stream truncated *inside* a frame (header or payload) raises
    :class:`ProtocolError` — the peer vanished mid-message, which
    callers treat as a dropped connection rather than a quiet goodbye.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            "truncated-frame",
            f"stream ended inside a frame header "
            f"({len(exc.partial)}/{_HEADER.size} bytes)") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            "truncated-frame",
            f"stream ended inside a frame payload "
            f"({len(exc.partial)}/{length} bytes)") from exc
    return decode_payload(payload)


async def write_frame_async(writer: asyncio.StreamWriter,
                            message: Dict[str, Any]) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# -- blocking flavour (client side) -----------------------------------------


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            raise ProtocolError(
                "truncated-frame",
                f"connection closed inside a frame ({got}/{count} "
                "bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Blocking read of the next message; ``None`` on clean EOF."""
    first = sock.recv(1)
    if not first:
        return None
    header = first + _recv_exactly(sock, _HEADER.size - 1)
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    return decode_payload(_recv_exactly(sock, length))


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


# -- addresses ---------------------------------------------------------------


def parse_address(text: str) -> Tuple[str, Any]:
    """``("unix", path)`` or ``("tcp", (host, port))`` from user text.

    Anything with a path separator (or a ``.sock`` suffix, or an
    explicit ``unix:`` prefix) is a filesystem socket; ``host:port``
    is TCP.  A bare name that is neither is rejected up front so a
    typo'd ``--server`` fails with one clear line instead of a
    connect timeout.
    """
    if text.startswith("unix:"):
        return ("unix", text[len("unix:"):])
    if "/" in text or text.endswith(".sock"):
        return ("unix", text)
    host, sep, port = text.rpartition(":")
    if sep and host:
        try:
            return ("tcp", (host, int(port)))
        except ValueError:
            pass
    raise ValueError(
        f"bad service address {text!r}: expected a socket path "
        "(contains '/' or ends in .sock), unix:<path>, or host:port")


def parse_address_list(text: str) -> List[str]:
    """Validated addresses from a comma-separated candidate list.

    ``--server`` and ``worker --connect`` accept ``primary,standby``
    style lists; each entry must individually satisfy
    :func:`parse_address`.  A single address is a list of one, so
    every caller can treat the result uniformly.
    """
    addresses = [piece.strip() for piece in text.split(",")
                 if piece.strip()]
    if not addresses:
        raise ValueError(
            f"bad service address list {text!r}: no addresses")
    for address in addresses:
        parse_address(address)
    return addresses


def connect(address: str, timeout: Optional[float] = None) -> socket.socket:
    """A connected blocking socket for ``address`` (see parse_address)."""
    kind, target = parse_address(address)
    if kind == "unix":
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover — win32
            raise OSError("unix sockets are unavailable on this "
                          "platform; use host:port")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(target)
        return sock
    return socket.create_connection(target, timeout=timeout)


def hello_frame() -> Dict[str, Any]:
    return {"type": "hello", "version": PROTOCOL_VERSION}


def register_frame(*, jobs: int, replica_batch: bool, name: str,
                   uid: Optional[str] = None,
                   heartbeat_s: Optional[float] = None) -> Dict[str, Any]:
    """A worker's opening frame: identity + protocol version + capabilities.

    ``uid`` is the worker's stable identity; re-registering with the
    same uid within the lease timeout reclaims parked leases instead
    of triggering reassignment.  ``None`` (legacy callers) degrades to
    per-connection identity with no reclaim.  ``heartbeat_s`` asks the
    daemon to accept a specific heartbeat interval instead of deriving
    one from its lease timeout; the daemon validates it against that
    timeout and refuses registrations it could never keep alive.
    """
    from repro import __version__

    frame = {
        "type": "register",
        "version": PROTOCOL_VERSION,
        "jobs": jobs,
        "replica_batch": replica_batch,
        "repro": __version__,
        "name": name,
    }
    if uid is not None:
        frame["uid"] = uid
    if heartbeat_s is not None:
        frame["heartbeat_s"] = heartbeat_s
    return frame


def peer_frame(name: str) -> Dict[str, Any]:
    """A standby hub's opening frame on the journal-sync conversation."""
    return {"type": "peer", "version": PROTOCOL_VERSION, "name": name}


def sync_digest(state: Any) -> str:
    """sha256 over the canonical JSON of a sync payload.

    Used by ``peer-welcome`` (over the snapshot object) and
    ``journal-sync`` (over the records list) so a standby can verify
    that what it mirrors is what the primary journaled — the same
    digest-before-trust posture the result cache takes with payloads.
    """
    blob = json.dumps(state, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def error_frame(code: str, message: str) -> Dict[str, Any]:
    return {"type": "error", "code": code, "message": message}


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_payload",
    "read_frame_async",
    "write_frame_async",
    "read_frame",
    "write_frame",
    "parse_address",
    "parse_address_list",
    "connect",
    "hello_frame",
    "register_frame",
    "peer_frame",
    "sync_digest",
    "error_frame",
]
