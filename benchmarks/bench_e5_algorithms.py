"""Bench E5 — scheduling-algorithm study (throughput/delay vs load)."""

from conftest import run_and_report

from repro.experiments.e5_algorithms import run_e5


def test_bench_e5_algorithm_curves(benchmark):
    report = run_and_report(benchmark, run_e5)
    uniform = report.data["uniform"]
    diagonal = report.data["diagonal"]
    # Textbook shapes at the heaviest load point.
    assert uniform["islip-1"][-1][1] > uniform["pim-1"][-1][1]
    assert diagonal["mwm"][-1][1] > diagonal["tdma"][-1][1]
    assert diagonal["islip-4"][-1][1] >= diagonal["islip-1"][-1][1] - 0.02
