"""ASCII table / series rendering for the bench harness.

The benchmarks print the same rows/series a paper table or figure would
carry; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Monospace table with a separator rule under the header."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(widths[i]) for i, c in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_series(x_label: str, y_label: str,
                  xs: Sequence, ys: Sequence,
                  title: str = "") -> str:
    """Two-column series (one figure line) as a table."""
    rows = [[str(x), str(y)] for x, y in zip(xs, ys)]
    return render_table([x_label, y_label], rows, title=title)


__all__ = ["render_table", "render_series"]
