"""Distributed greedy scheduling on stale demand views.

A centralized scheduler sees the whole demand matrix at the instant it
computes.  A *distributed* implementation — per-port arbiters, or a
scheduler hierarchy stitched over a control network — works from views
that are **stale** (aggregated and shipped a few epochs ago) and makes
**local** decisions (one round of request/grant, no global iteration).

:class:`DistributedGreedyScheduler` models both costs:

* each input arbiter requests its locally heaviest VOQ,
* each output arbiter grants its heaviest requester,
* unresolved ports simply stay unmatched for this epoch (a second round
  would need another control RTT — exactly what distribution makes
  expensive),
* and all weights come from the demand matrix as it was
  ``staleness_epochs`` compute-calls ago.

With ``staleness_epochs=0`` this is a centralized greedy matcher (one
PIM-like round with weight ties broken deterministically), so sweeping
staleness isolates the cost of distribution itself — the ablation in
``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching
from repro.sim.errors import ConfigurationError


class DistributedGreedyScheduler(Scheduler):
    """One-round request/grant arbitration on a stale demand view."""

    name = "distributed-greedy"

    def __init__(self, n_ports: int, staleness_epochs: int = 0) -> None:
        super().__init__(n_ports)
        if staleness_epochs < 0:
            raise ConfigurationError("staleness must be >= 0")
        self.staleness_epochs = staleness_epochs
        # Ring of past views; the oldest entry is the acting view.
        self._views: Deque[np.ndarray] = deque(maxlen=staleness_epochs + 1)

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        self._views.append(demand.copy())
        view = self._views[0]  # stale by up to `staleness_epochs` calls
        n = self.n_ports
        # Request phase: every input asks for its heaviest backlogged VOQ.
        requests: Dict[int, List[int]] = {}
        for inp in range(n):
            row = view[inp]
            best = int(np.argmax(row))
            if row[best] > 0:
                requests.setdefault(best, []).append(inp)
        # Grant phase: every output takes its heaviest requester.
        out_of: List[Optional[int]] = [None] * n
        for out, requesters in requests.items():
            winner = max(requesters,
                         key=lambda inp: (view[inp, out], -inp))
            out_of[winner] = out
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])


__all__ = ["DistributedGreedyScheduler"]
