"""Tests for the optical circuit switch model."""

import pytest

from repro.net.packet import Packet
from repro.schedulers.matching import Matching
from repro.sim.errors import ConfigurationError
from repro.sim.time import MICROSECONDS, NANOSECONDS
from repro.switches.ocs import OpticalCircuitSwitch


def _ocs(sim, n=4, switching_ps=1 * MICROSECONDS, transit_ps=0):
    delivered = []
    ocs = OpticalCircuitSwitch(sim, n, switching_time_ps=switching_ps,
                               transit_ps=transit_ps)
    for port in range(n):
        ocs.connect_output(
            port, lambda p, _port=port: delivered.append((_port, p)))
    return ocs, delivered


def _packet(src=0, dst=1):
    return Packet(src=src, dst=dst, size=100, created_ps=0)


class TestConfigure:
    def test_initially_dark(self, sim):
        ocs, __ = _ocs(sim)
        assert ocs.circuit_for(0) is None

    def test_blackout_then_live(self, sim):
        ocs, __ = _ocs(sim, switching_ps=1000)
        ready = ocs.configure(Matching.from_dict(4, {0: 1}))
        assert ready == 1000
        assert ocs.is_dark
        sim.run(until=999)
        assert ocs.circuit_for(0) is None
        sim.run(until=1000)
        assert not ocs.is_dark
        assert ocs.circuit_for(0) == 1

    def test_zero_switching_time_instantaneous(self, sim):
        ocs, __ = _ocs(sim, switching_ps=0)
        ready = ocs.configure(Matching.from_dict(4, {2: 3}))
        assert ready == 0
        assert not ocs.is_dark
        assert ocs.circuit_for(2) == 3

    def test_superseding_configure_restarts_blackout(self, sim):
        ocs, __ = _ocs(sim, switching_ps=1000)
        ocs.configure(Matching.from_dict(4, {0: 1}))
        sim.run(until=500)
        ocs.configure(Matching.from_dict(4, {0: 2}))
        sim.run(until=1200)
        # The first commit at t=1000 must not have applied.
        assert ocs.is_dark
        sim.run(until=1500)
        assert ocs.circuit_for(0) == 2

    def test_wrong_port_count_rejected(self, sim):
        ocs, __ = _ocs(sim, n=4)
        with pytest.raises(ConfigurationError):
            ocs.configure(Matching.empty(5))

    def test_reconfiguration_counter(self, sim):
        ocs, __ = _ocs(sim)
        ocs.configure(Matching.empty(4))
        ocs.configure(Matching.empty(4))
        assert ocs.reconfigurations == 2

    def test_blackout_time_accumulates(self, sim):
        ocs, __ = _ocs(sim, switching_ps=1000)
        ocs.configure(Matching.empty(4))
        sim.run()
        ocs.configure(Matching.empty(4))
        sim.run()
        assert ocs.blackout_ps == 2000


class TestDataPlane:
    def test_forward_on_live_circuit(self, sim):
        ocs, delivered = _ocs(sim, switching_ps=100,
                              transit_ps=10 * NANOSECONDS)
        ocs.configure(Matching.from_dict(4, {0: 1}))
        sim.run()
        packet = _packet(src=0, dst=1)
        assert ocs.receive(packet)
        sim.run()
        assert delivered == [(1, packet)]
        assert packet.via == "ocs"
        assert ocs.forwarded.count == 1

    def test_dark_drop_during_blackout(self, sim):
        ocs, delivered = _ocs(sim, switching_ps=1000)
        ocs.configure(Matching.from_dict(4, {0: 1}))
        assert not ocs.receive(_packet())
        assert ocs.dark_drops.count == 1
        assert delivered == []

    def test_unmatched_input_drops(self, sim):
        ocs, __ = _ocs(sim, switching_ps=0)
        ocs.configure(Matching.from_dict(4, {0: 1}))
        assert not ocs.receive(_packet(src=2, dst=3))
        assert ocs.dark_drops.count == 1

    def test_misdirected_drop(self, sim):
        ocs, __ = _ocs(sim, switching_ps=0)
        ocs.configure(Matching.from_dict(4, {0: 2}))
        assert not ocs.receive(_packet(src=0, dst=1))
        assert ocs.misdirected_drops.count == 1

    def test_explicit_input_port_overrides_src(self, sim):
        ocs, delivered = _ocs(sim, switching_ps=0)
        ocs.configure(Matching.from_dict(4, {3: 1}))
        packet = _packet(src=0, dst=1)
        assert ocs.receive(packet, input_port=3)
        sim.run()
        assert delivered == [(1, packet)]

    def test_unconnected_output_raises_on_use(self, sim):
        ocs = OpticalCircuitSwitch(sim, 4, switching_time_ps=0)
        ocs.configure(Matching.from_dict(4, {0: 1}))
        ocs.receive(_packet())
        with pytest.raises(ConfigurationError, match="not connected"):
            sim.run()


class TestValidation:
    def test_min_ports(self, sim):
        with pytest.raises(ConfigurationError):
            OpticalCircuitSwitch(sim, 1, switching_time_ps=0)

    def test_negative_switching_time(self, sim):
        with pytest.raises(ConfigurationError):
            OpticalCircuitSwitch(sim, 4, switching_time_ps=-1)
