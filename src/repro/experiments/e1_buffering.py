"""E1 — Figure 1: buffering memory requirement vs switching time.

Two parts:

1. **Analytic curve** at the paper's operating point (64 ports ×
   10 Gbps), switching time swept 10 ns → 10 ms, with both a hardware
   and a software scheduler latency added on top.  The paper's claims
   to verify: ~gigabytes at 1 ms, ~kilobytes at nanoseconds, and the
   host-buffering/switch-buffering regime split where the requirement
   crosses ToR SRAM capacity.
2. **Simulated confirmation** on a smaller switch (packet-level runs
   are O(packets); 8 ports keeps the bench snappy): peak VOQ occupancy
   measured by the framework across three switching times, showing the
   same proportionality.
"""

from __future__ import annotations

from typing import List

from repro.analysis.buffering import BufferingModel, format_bytes
from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.hwmodel.presets import make_timing
from repro.scenario import Scenario, TrafficPhase
from repro.sim.time import (
    GIGABIT,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    format_time,
)

#: Overrides this experiment honours (``repro run e1 --set ...``).
KNOWN_OVERRIDES = frozenset({"duration_ps", "n_ports"})

#: Figure 1's x-axis sample points.
SWITCHING_TIMES_PS = (
    1 * NANOSECONDS,
    10 * NANOSECONDS,
    100 * NANOSECONDS,
    1 * MICROSECONDS,
    10 * MICROSECONDS,
    100 * MICROSECONDS,
    1 * MILLISECONDS,
    10 * MILLISECONDS,
)


def _analytic_table(report: ExperimentReport) -> None:
    model = BufferingModel(n_ports=64, port_rate_bps=10 * GIGABIT)
    hardware_latency = make_timing("netfpga_sume").total_ps("islip", 64)
    software_latency = make_timing("cpu_helios").total_ps("hotspot", 64)
    rows: List[List[str]] = []
    ideal_points = []
    hw_points = []
    sw_points = []
    for switching_ps in SWITCHING_TIMES_PS:
        ideal = model.point(switching_ps, 0)
        hw = model.point(switching_ps, hardware_latency)
        sw = model.point(switching_ps, software_latency)
        ideal_points.append(ideal)
        hw_points.append(hw)
        sw_points.append(sw)
        rows.append([
            format_time(switching_ps),
            format_bytes(ideal.total_bytes),
            format_bytes(hw.total_bytes),
            format_bytes(sw.total_bytes),
            ideal.regime,
        ])
    report.tables.append(render_table(
        ["switching time", "buffer (ideal sched)", "+hw sched latency",
         "+sw sched latency", "regime (ideal)"],
        rows,
        title="Figure 1 (analytic): 64 ports x 10 Gbps, total buffering "
              "over a worst-case service round"))
    report.data["analytic_ideal_total_bytes"] = [
        p.total_bytes for p in ideal_points]
    report.data["analytic_hw_total_bytes"] = [
        p.total_bytes for p in hw_points]
    report.data["analytic_sw_total_bytes"] = [
        p.total_bytes for p in sw_points]
    report.data["switching_times_ps"] = list(SWITCHING_TIMES_PS)
    report.data["regime_boundary_ps"] = model.regime_boundary_ps(0)
    # Paper-shape checks.
    ms_point = model.point(1 * MILLISECONDS, 0)
    ns_point = model.point(1 * NANOSECONDS, 0)
    if ms_point.total_bytes >= 1_000_000_000:
        report.expectations.append(
            f"1ms switching needs {format_bytes(ms_point.total_bytes)} "
            "(paper: 'approximately gigabytes')")
    if ns_point.total_bytes <= 100_000:
        report.expectations.append(
            f"1ns switching needs {format_bytes(ns_point.total_bytes)} "
            "(paper: 'only kilobytes')")
    if not ms_point.fits_in_tor and ns_point.fits_in_tor:
        report.expectations.append(
            "regime split reproduced: ms -> host buffering, "
            "ns -> switch buffering")
    sw_floor = sw_points[0].total_bytes
    if sw_floor > 1_000_000_000:
        report.expectations.append(
            f"with a software scheduler even a 1ns optical switch needs "
            f"{format_bytes(sw_floor)} — the scheduler, not the optics, "
            "sets the requirement (the paper's motivation)")


def _simulated_table(report: ExperimentReport,
                     config: ExperimentConfig) -> None:
    switching_times = (
        (1 * MICROSECONDS, 10 * MICROSECONDS)
        if config.quick else
        (1 * MICROSECONDS, 10 * MICROSECONDS, 100 * MICROSECONDS))
    duration = config.get(
        "duration_ps", 5 * MILLISECONDS if config.quick
        else 20 * MILLISECONDS)
    n_ports = config.get("n_ports", 8)
    rows = []
    peaks = []
    for switching_ps in switching_times:
        epoch_ps = max(10 * switching_ps, 40 * MICROSECONDS)
        scenario = Scenario(
            name="e1-sim",
            n_ports=n_ports,
            switching_time_ps=switching_ps,
            scheduler=config.scheduler or "hotspot",
            timing_preset="netfpga_sume",
            epoch_ps=epoch_ps,
            default_slot_ps=epoch_ps,
            duration_ps=duration,
            seed=config.derive_seed(1),
            traffic=(TrafficPhase(
                pattern="hotspot", source="onoff", load=0.4,
                pattern_kwargs={"skew": 0.7},
                source_kwargs={"burst_fraction": 1.0,
                               "mean_on_ps": 200 * MICROSECONDS,
                               "mean_off_ps": 300 * MICROSECONDS}),),
        )
        result = scenario.build().run()
        peaks.append(result.switch_peak_buffer_bytes)
        rows.append([
            format_time(switching_ps),
            format_bytes(result.switch_peak_buffer_bytes),
            f"{result.utilisation():.3f}",
            str(result.total_drops),
        ])
    report.tables.append(render_table(
        ["switching time", "peak switch buffer", "utilisation", "drops"],
        rows,
        title=f"Figure 1 (simulated): {n_ports} ports x 10 Gbps, "
              "peak VOQ bytes"))
    report.data["simulated_peak_bytes"] = peaks
    if peaks == sorted(peaks):
        report.expectations.append(
            "simulated peak buffering grows monotonically with "
            "switching time")


def run(config: ExperimentConfig) -> ExperimentReport:
    """Reproduce Figure 1 (see module docstring) — pure entry point."""
    report = ExperimentReport(
        experiment_id="e1",
        title="Figure 1 — buffering requirement vs optical switching time",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    _analytic_table(report)
    _simulated_table(report, config)
    return report


def run_e1(quick: bool = False) -> ExperimentReport:
    """Historical entry point; see :func:`run`."""
    return run(ExperimentConfig(quick=quick))


__all__ = ["run", "run_e1", "SWITCHING_TIMES_PS", "KNOWN_OVERRIDES"]
