"""Remote worker node: ``repro worker --connect ADDR``.

A :class:`ReproWorker` is the other half of the fleet protocol the
daemon's lease scheduler speaks (see :mod:`repro.service.protocol`):
it dials a ``repro serve`` daemon, registers with a capability payload
(parallel width, replica-batch support, repro version), then sits in a
pull loop — the daemon leases it batches of canonical ``RunSpec``
payloads sized to its width, it executes them on its own local
:class:`~repro.runner.executor.JobRunner`, and uploads one canonical
report payload per spec as each settles.

Design points:

* **Byte-identity is inherited, not re-proven.**  A spec fully
  determines its report and uploads reuse the canonical payload form
  of :mod:`repro.runner.cache`, so results are indistinguishable from
  local execution no matter which node ran them.
* **Crash isolation is inherited too.**  The runner's warm-worker
  pool already turns a segfaulting job into a FAIL-row outcome
  (``WorkerCrashError`` semantics); an ordinary entry-point exception
  aborts only the rest of its own lease, whose unsettled specs are
  uploaded as error rows — the worker process survives both.
* **Liveness is a background heartbeat thread**, so a long-running
  lease does not look like a death.  The daemon picks the interval
  (a third of its lease timeout) and tells us at registration.
  Socket writes (uploads from the lease loop, heartbeats from the
  thread) share one lock; frames are atomic under it.  Sends carry an
  OS-level timeout (``SO_SNDTIMEO``) and the thread sleeps on an
  event, so a wedged daemon can neither strand the heartbeat in a
  blocked ``send`` nor stop :meth:`stop` from completing — ``run``
  always joins the thread with a deadline on the way out.
* **Identity survives the connection.**  The worker registers with a
  stable ``uid``; when the connection drops mid-campaign it keeps
  executing, buffers finished results, reconnects under
  :class:`~repro.service.client.RetryPolicy` backoff, reclaims its
  parked leases (the daemon's reconnect-without-requeue path) and
  flushes the buffer as ``cache-push`` frames.  A network flap costs
  the fleet zero re-executions.  ``--connect`` accepts a
  comma-separated failover list; each reconnect attempt rotates to
  the next hub, so when a standby promotes itself the fleet
  re-registers there without operator help.
* **The hub's cache is checked before executing.**  Each lease opens
  with a ``cache-lookup``; warm keys are settled hub-side and dropped
  from the batch, so a worker joining mid-campaign executes no spec
  the fleet already paid for.  With ``cache_dir`` set the worker also
  keeps a local cache whose hits upload as ``cached`` payloads —
  shipping its private history into the hub.
* **A dead daemon is handled like a dead server anywhere else** —
  the CLI maps a failed dial or a version-mismatch handshake to exit
  code 2 with a one-line error, and a connection lost mid-service
  (after reconnects are exhausted) to exit code 1.
"""

from __future__ import annotations

import collections
import itertools
import os
import socket
import struct
import sys
import threading
import time
import uuid
from typing import Any, Deque, Dict, List, Optional

from repro.experiments.base import ExperimentReport
from repro.runner.cache import ResultCache, report_to_payload
from repro.runner.executor import JobRunner, RunOutcome
from repro.runner.governance import FAIL_ERROR, ResourceLimits
from repro.runner.spec import RunSpec
from repro.service.client import RetryPolicy
from repro.service.protocol import (
    ProtocolError,
    connect,
    parse_address_list,
    read_frame,
    register_frame,
    write_frame,
)

#: Upper bound on one blocking socket send; a wedged peer turns into
#: an OSError the caller handles instead of a stranded thread.
SEND_TIMEOUT_S = 10.0


class WorkerError(RuntimeError):
    """Registration or service failed in a way the worker reports
    with one line and an exit code (see ``repro worker``)."""


def _bound_send_timeout(sock: socket.socket,
                        seconds: float = SEND_TIMEOUT_S) -> None:
    """Bound blocking sends without touching the receive side.

    ``settimeout`` would cap reads too (and leases can be minutes
    apart), so the send bound goes in at the socket-option level.
    Best-effort: platforms without ``SO_SNDTIMEO`` keep the old
    behaviour.
    """
    if not hasattr(socket, "SO_SNDTIMEO"):  # pragma: no cover
        return
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_SNDTIMEO,
            struct.pack("ll", int(seconds),
                        int((seconds - int(seconds)) * 1_000_000)))
    except (OSError, struct.error):  # pragma: no cover — platform quirk
        return


class ReproWorker:
    """One remote execution node for a ``repro serve`` daemon.

    Construct, then call :meth:`run` (blocking; the CLI path) or hand
    :meth:`run` to a thread and use :meth:`wait_registered` /
    :meth:`stop` (tests and benches).  ``run`` returns the process
    exit code: 0 after a clean ``bye`` or :meth:`stop`, 1 when the
    daemon stays gone through every reconnect attempt; a daemon that
    cannot be dialed or refuses the *first* registration raises
    (``OSError`` / :class:`WorkerError`) so the CLI can map both to
    exit code 2.
    """

    def __init__(self, address: str, *, jobs: int = 1,
                 replica_batch: bool = False,
                 name: Optional[str] = None,
                 timeout: float = 30.0,
                 cache_dir: Optional[str] = None,
                 retry: Optional[RetryPolicy] = None,
                 use_hub_cache: bool = True,
                 limits: Optional[ResourceLimits] = None,
                 heartbeat_s: Optional[float] = None,
                 quiet: bool = False) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat must be > 0 seconds, got {heartbeat_s}")
        #: Failover candidates, in preference order; ``self.address``
        #: tracks whichever one the worker is currently talking to.
        self.addresses = parse_address_list(address)
        self.address = self.addresses[0]
        self._target = 0
        self.jobs = jobs
        self.replica_batch = replica_batch
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        #: Stable identity across reconnects (but not restarts: a new
        #: process must not reclaim leases whose work died with the
        #: old one, so the uid includes a per-process nonce).
        self.uid = f"{self.name}-{uuid.uuid4().hex[:8]}"
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=8, base_delay_s=0.25, max_delay_s=5.0)
        self.use_hub_cache = use_hub_cache
        self.quiet = quiet
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self._runner = JobRunner(jobs=jobs, cache=self.cache,
                                 replica_batch=replica_batch,
                                 limits=limits)
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._registered = threading.Event()
        self._stop_event = threading.Event()
        self._stopping = False
        #: frames received while waiting for a specific reply
        #: (a lease can land while a cache-lookup is in flight).
        self._inbox: Deque[Dict[str, Any]] = collections.deque()
        #: results finished while disconnected, flushed as cache-push
        #: frames on reconnect:
        #: [(spec, elapsed_s, error, kind, payload)].
        self._push_buffer: List[tuple] = []
        self._lookup_ids = itertools.count(1)
        self.worker_id: Optional[int] = None
        #: Requested override for the daemon-derived interval; the
        #: daemon validates it against its lease timeout and echoes
        #: the interval actually in force back at registration.
        self.heartbeat_override_s = heartbeat_s
        self.heartbeat_interval_s = heartbeat_s or 5.0
        self.leases_run = 0
        self.specs_completed = 0
        self.specs_failed = 0
        self.specs_skipped_warm = 0
        self.reconnects = 0

    # -- lifecycle -----------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro-worker] {message}", file=sys.stderr,
                  flush=True)

    def wait_registered(self, timeout: float = 10.0) -> bool:
        """Block until the handshake completed (thread-mode tests)."""
        return self._registered.wait(timeout)

    def stop(self) -> None:
        """Thread-safe clean-stop request: closes the socket, which
        pops the serve loop out of its blocking read with exit 0."""
        self._stopping = True
        self._stop_event.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def run(self) -> int:
        """Warm, dial, register, then serve leases until told to stop.

        Raises ``OSError`` (daemon unreachable) or :class:`WorkerError`
        (registration refused) before any work is accepted; after
        that, a lost connection goes through the reconnect policy and
        only an exhausted policy returns 1.
        """
        self._runner.warm()  # fork workers before any threads exist
        # First registration: give every failover candidate one shot
        # at being dialed (the standby may already be the live hub),
        # but let a *refusal* raise immediately — a daemon that
        # rejects our registration (bad heartbeat, version mismatch)
        # will reject it everywhere.
        for remaining in range(len(self.addresses) - 1, -1, -1):
            try:
                self._connect()
                break
            except OSError:
                if remaining == 0:
                    raise
                self._target += 1
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     name="repro-worker-heartbeat",
                                     daemon=True)
        heartbeat.start()
        try:
            while True:
                try:
                    return self._serve()
                except (ProtocolError, ConnectionError, OSError) as exc:
                    if self._stopping:
                        return 0
                    self.log(f"connection to {self.address} lost: "
                             f"{exc}")
                if not self._reconnect():
                    self.log(
                        f"daemon stayed unreachable through "
                        f"{self.retry.max_attempts} reconnect "
                        f"attempts; giving up")
                    return 1
        finally:
            self._stopping = True
            self._stop_event.set()
            self.stop()
            # Deadline, not forever: a send stuck inside the daemon's
            # kernel buffers is already bounded by SO_SNDTIMEO, and
            # the thread is a daemon thread besides — but an orderly
            # exit should not depend on either.
            heartbeat.join(timeout=SEND_TIMEOUT_S)

    # -- the fleet protocol, worker side -------------------------------------

    def _connect(self) -> None:
        self._inbox.clear()  # stale frames die with their connection
        self.address = self.addresses[self._target % len(self.addresses)]
        self._sock = connect(self.address, timeout=self.timeout)
        _bound_send_timeout(self._sock)
        self._send(register_frame(jobs=self.jobs,
                                  replica_batch=self.replica_batch,
                                  name=self.name, uid=self.uid,
                                  heartbeat_s=self.heartbeat_override_s))
        reply = read_frame(self._sock)
        if reply is None:
            raise WorkerError(
                "server closed the connection during registration")
        if reply.get("type") == "error":
            raise WorkerError(
                f"registration refused [{reply.get('code')}]: "
                f"{reply.get('message')}")
        if reply.get("type") != "registered":
            raise WorkerError(
                f"expected a registered frame, got "
                f"{reply.get('type')!r}")
        self.worker_id = reply.get("worker_id")
        interval = reply.get("heartbeat_interval_s")
        if isinstance(interval, (int, float)) and interval > 0:
            self.heartbeat_interval_s = float(interval)
        # Leases can be minutes apart on a busy fleet; only outbound
        # traffic is time-bounded (see _bound_send_timeout).
        self._sock.settimeout(None)
        self._registered.set()
        reclaimed = reply.get("reclaimed") or 0
        self.log(f"registered with {self.address} as worker "
                 f"{self.worker_id} (jobs={self.jobs}"
                 + (f", {reclaimed} lease(s) reclaimed" if reclaimed
                    else "") + ")")

    def _reconnect(self) -> bool:
        """Backoff-paced re-dial + re-register; flushes the buffer.

        Returns ``False`` once the policy is exhausted (or a stop was
        requested mid-backoff).  Registration *refusals* also count as
        failed attempts here — a draining daemon and a dead daemon
        look the same to a worker that just wants its campaign back.
        Each attempt rotates through the failover list, so a promoted
        standby is found within ``len(addresses)`` attempts.
        """
        self._registered.clear()
        for attempt, delay in enumerate(self.retry.delays(), start=1):
            if self._stop_event.wait(delay) or self._stopping:
                return False
            self._target += 1  # rotate: next hub in the failover list
            try:
                self._connect()
            except (WorkerError, OSError) as exc:
                self.log(f"reconnect attempt {attempt}/"
                         f"{self.retry.max_attempts} failed to reach "
                         f"{self.address}: {exc}")
                continue
            self.reconnects += 1
            self._flush_pushes()
            return True
        return False

    def _flush_pushes(self) -> None:
        """Ship results that finished while disconnected hub-ward."""
        flushed = 0
        while self._push_buffer:
            spec, elapsed_s, error, kind, payload = self._push_buffer[0]
            try:
                self._send({
                    "type": "cache-push",
                    "key": spec.key(),
                    "spec": spec.canonical(),
                    "elapsed_s": elapsed_s,
                    "error": error,
                    "kind": kind,
                    "report": payload,
                })
            except OSError:
                # Connection died again already; keep the remainder
                # for the next successful reconnect.
                break
            self._push_buffer.pop(0)
            flushed += 1
        if flushed:
            self.log(f"flushed {flushed} buffered result(s) "
                     "as cache-push")

    def _send(self, frame: Dict[str, Any]) -> None:
        sock = self._sock
        if sock is None:
            raise OSError("worker socket is closed")
        with self._send_lock:
            write_frame(sock, frame)

    def _heartbeat_loop(self) -> None:
        while not self._stop_event.wait(self.heartbeat_interval_s):
            if self._stopping:
                return
            if not self._registered.is_set():
                continue  # mid-reconnect: nothing to heartbeat yet
            try:
                self._send({"type": "heartbeat"})
            except OSError:
                continue  # the serve loop handles the dead connection

    def _next_frame(self) -> Optional[Dict[str, Any]]:
        if self._inbox:
            return self._inbox.popleft()
        assert self._sock is not None
        return read_frame(self._sock)

    def _serve(self) -> int:
        while True:
            frame = self._next_frame()
            if frame is None:
                if self._stopping:
                    return 0
                raise ConnectionError(
                    f"{self.address} closed the connection without "
                    "a bye")
            kind = frame.get("type")
            if kind == "lease":
                self._run_lease(frame)
            elif kind == "bye":
                self.log(f"daemon said bye after {self.leases_run} "
                         f"lease(s) ({self.specs_completed} ok, "
                         f"{self.specs_failed} failed); exiting")
                return 0
            elif kind == "busy":
                # Admission control reaches workers too: back off for
                # the daemon's hint (bounded by the retry policy's
                # ceiling) instead of hammering an overloaded hub.
                delay = float(frame.get("retry_after_s") or 1.0)
                self._stop_event.wait(
                    min(delay, self.retry.max_delay_s))
            elif kind == "error":
                self.log(f"daemon error [{frame.get('code')}]: "
                         f"{frame.get('message')}")
                return 1
            # anything else: ignore — forward-compatible

    def _run_lease(self, frame: Dict[str, Any]) -> None:
        """Execute one leased batch, uploading results as they settle.

        The daemon only ever leases well-formed canonical specs; if
        this one did not, the stream cannot be trusted and the raise
        below drops the connection (the daemon reassigns the lease).
        """
        lease_id = frame.get("lease_id")
        payloads = frame.get("specs")
        if not isinstance(payloads, list) or not payloads:
            raise ProtocolError(
                "bad-lease",
                f"lease {lease_id!r} carries no spec list")
        try:
            specs = [RunSpec.from_canonical(payload)
                     for payload in payloads]
        except (KeyError, TypeError, AttributeError) as exc:
            raise ProtocolError(
                "bad-lease",
                f"lease {lease_id!r} carries a malformed spec: "
                f"{exc}") from exc
        self.leases_run += 1
        if self.use_hub_cache:
            specs = self._drop_warm(lease_id, specs)
            if not specs:
                return
        self.log(f"lease {lease_id}: {len(specs)} job(s)")
        uploaded = set()

        def deliver(outcome: RunOutcome) -> None:
            self._deliver(lease_id, outcome)
            uploaded.add(outcome.spec.key())

        try:
            self._runner.run(specs, on_outcome=deliver)
        except (ProtocolError, OSError):
            raise  # the connection itself failed mid-upload
        except Exception as exc:  # noqa: BLE001
            # Same contract as the daemon's local batches: an ordinary
            # entry-point exception aborts the rest of *this lease*
            # inside execute(); every unsettled spec fails visibly and
            # the worker keeps serving.
            self.log(f"lease {lease_id} aborted by a job exception: "
                     f"{type(exc).__name__}: {exc}")
            self._fail_rest(lease_id, specs, uploaded, str(exc))

    def _drop_warm(self, lease_id: Any,
                   specs: List[RunSpec]) -> List[RunSpec]:
        """Ask the hub which leased keys are warm; keep the cold ones.

        The daemon settles every hit itself, so a dropped spec is a
        *finished* spec from the client's point of view.  A lookup
        that cannot complete (connection trouble) degrades to
        executing everything — correctness never depends on it.
        """
        lookup_id = f"c{next(self._lookup_ids)}"
        try:
            self._send({
                "type": "cache-lookup",
                "lookup_id": lookup_id,
                "keys": [spec.key() for spec in specs],
            })
            result = self._await_cache_result(lookup_id)
        except (ConnectionError, OSError):
            return specs
        hits = result.get("hits")
        if not isinstance(hits, list):
            return specs
        warm = {key for key in hits if isinstance(key, str)}
        if warm:
            self.specs_skipped_warm += len(warm)
            self.log(f"lease {lease_id}: {len(warm)}/{len(specs)} "
                     "already warm at the hub — skipped")
        return [spec for spec in specs if spec.key() not in warm]

    def _await_cache_result(self, lookup_id: str) -> Dict[str, Any]:
        """Read until our cache-result; stash everything else.

        Frames that arrive out of order (another lease, an error, the
        drain's bye) go to ``_inbox`` for the serve loop — the
        conversation is a stream, not a strict request/response.
        """
        assert self._sock is not None
        while True:
            frame = read_frame(self._sock)
            if frame is None:
                raise ConnectionError(
                    "connection closed awaiting a cache-result")
            if frame.get("type") == "cache-result" \
                    and frame.get("lookup_id") == lookup_id:
                return frame
            self._inbox.append(frame)

    def _deliver(self, lease_id: Any, outcome: RunOutcome) -> None:
        """Upload one outcome, or buffer it if the daemon is gone."""
        if outcome.error is None:
            self.specs_completed += 1
        else:
            self.specs_failed += 1
        payload = report_to_payload(outcome.report)
        try:
            self._send({
                "type": "upload",
                "lease_id": lease_id,
                "key": outcome.spec.key(),
                "spec": outcome.spec.canonical(),
                "cached": outcome.cached,
                "elapsed_s": outcome.elapsed_s,
                "error": outcome.error,
                "kind": outcome.kind,
                "report": payload,
            })
        except OSError:
            if self._stopping:
                raise
            # Keep executing the lease: the work is paid for whether
            # or not the daemon is listening right now, and the
            # buffer turns into cache-push frames on reconnect.
            self._push_buffer.append(
                (outcome.spec, outcome.elapsed_s, outcome.error,
                 outcome.kind, payload))

    def _fail_rest(self, lease_id: Any, specs: List[RunSpec],
                   uploaded: set, message: str) -> None:
        for spec in specs:
            key = spec.key()
            if key in uploaded:
                continue
            error = f"{key}: {message}"
            report = ExperimentReport(
                experiment_id=spec.experiment_id,
                title="job failed — exception in the entry point",
                warnings=[error])
            self._deliver(lease_id, RunOutcome(
                spec, report, cached=False, elapsed_s=0.0,
                error=error, kind=FAIL_ERROR))


__all__ = ["ReproWorker", "WorkerError", "SEND_TIMEOUT_S"]
