"""Control-plane models: channels and distributed scheduling.

§3 of the paper: "The proposed architecture has the advantage of
supporting both centralized and distributed implementations" and
"allows to explore SDN practices over the hybrid network".  This
package supplies the two building blocks those explorations need:

* :class:`~repro.control.channel.ControlChannel` — a lossy, delayed
  message channel between control-plane entities (scheduler ↔ hosts,
  scheduler ↔ OCS), so experiments can price out-of-band SDN control
  against the on-chip wires of the integrated design.
* :class:`~repro.control.distributed.DistributedGreedyScheduler` — a
  per-port distributed arbitration policy working from *stale* demand
  views, quantifying what decentralisation costs in matching quality.
"""

from repro.control.channel import ControlChannel
from repro.control.distributed import DistributedGreedyScheduler

__all__ = ["ControlChannel", "DistributedGreedyScheduler"]
