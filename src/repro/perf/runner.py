"""The measurement harness behind ``repro perf``.

Deliberately small and dependency-free (pytest-benchmark stays the
interactive frontend): calibrate a loop count so one repeat lasts at
least ``min_time``, run ``repeats`` repeats, report the **best** ns/op
(the standard estimator for "how fast can this go" — slower repeats
measure interference, not the code) plus mean/stddev for context.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.perf.benches import Bench

#: Calibration never exceeds this many loops per repeat; protects
#: against pathological sub-nanosecond callables.
_MAX_LOOPS = 1 << 24


@dataclass(frozen=True)
class BenchResult:
    """One bench's measurement, as recorded into ``BENCH_*.json``."""

    name: str
    group: str
    #: Best-of-repeats nanoseconds per operation.
    ns_per_op: float
    #: Mean ns/op across repeats.
    mean_ns: float
    #: Population standard deviation of ns/op across repeats.
    stddev_ns: float
    #: Calibrated loop count per repeat.
    loops: int
    repeats: int
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def ops_per_s(self) -> float:
        """Operations per second at the best ns/op."""
        return 1e9 / self.ns_per_op if self.ns_per_op else 0.0


def _time_loops(fn: Callable[[], Any], loops: int) -> int:
    """Wall nanoseconds for ``loops`` back-to-back calls."""
    start = time.perf_counter_ns()
    for __ in range(loops):
        fn()
    return time.perf_counter_ns() - start


def _calibrate(fn: Callable[[], Any], min_time_ns: int) -> int:
    """Smallest power-of-two loop count lasting >= ``min_time_ns``."""
    loops = 1
    while loops < _MAX_LOOPS:
        if _time_loops(fn, loops) >= min_time_ns:
            return loops
        loops *= 2
    return loops


def measure(bench: Bench, min_time_s: float = 0.1,
            repeats: int = 5) -> BenchResult:
    """Measure one bench: setup once, calibrate, repeat, summarise."""
    if min_time_s <= 0:
        raise ValueError(f"min_time_s must be positive, got {min_time_s}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    fn = bench.make()
    # Warm-up call doubles as the sanity check: a bench that stopped
    # doing real work must fail here, not record a flattering time.
    warmup_result = fn()
    if bench.check is not None and not bench.check(warmup_result):
        raise ValueError(
            f"bench {bench.name!r} failed its sanity check "
            f"(returned {warmup_result!r})")
    min_time_ns = int(min_time_s * 1e9)
    loops = _calibrate(fn, min_time_ns)
    samples = [_time_loops(fn, loops) / loops for __ in range(repeats)]
    mean = sum(samples) / repeats
    variance = sum((s - mean) ** 2 for s in samples) / repeats
    return BenchResult(
        name=bench.name,
        group=bench.group,
        ns_per_op=min(samples),
        mean_ns=mean,
        stddev_ns=variance ** 0.5,
        loops=loops,
        repeats=repeats,
        meta=dict(bench.meta),
    )


def run_suite(benches: Iterable[Bench], min_time_s: float = 0.1,
              repeats: int = 5,
              on_result: Optional[Callable[[BenchResult], None]] = None,
              ) -> List[BenchResult]:
    """Measure every bench in order; stream results via ``on_result``."""
    results: List[BenchResult] = []
    for bench in benches:
        result = measure(bench, min_time_s=min_time_s, repeats=repeats)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results


__all__ = ["BenchResult", "measure", "run_suite"]
