"""Configurable flow classification — Figure 2's "look-up rules".

The processing logic "classif[ies packets] into flows based on
configurable look-up rules and places them into their respective Virtual
Output Queue".  We model a priority-ordered rule table in the style of a
TCAM: each rule matches on any subset of packet fields and yields an
action.  First match wins; a default rule maps a packet to the VOQ of
its (ingress, destination) pair.

Actions
-------

``voq``
    Normal path: enqueue in the VOQ for (ingress, dst).  ``dst`` may be
    overridden to steer traffic (e.g. service chaining experiments).
``eps``
    Pin the flow to the electrical packet switch regardless of grants —
    the paper's "residual traffic can be sent through the EPS".
``drop``
    Access control; dropped packets are counted, not errored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.packet import Packet


@dataclass(frozen=True)
class ClassifierRule:
    """One TCAM-style rule.

    ``None`` in a match field is a wildcard.  ``min_size`` lets rules
    distinguish bulk from small packets (a cheap hardware-realistic
    proxy for elephant detection at the classifier).
    """

    action: str
    src: Optional[int] = None
    dst: Optional[int] = None
    flow_id: Optional[int] = None
    priority_class: Optional[int] = None
    min_size: Optional[int] = None
    redirect_dst: Optional[int] = None

    _ACTIONS = ("voq", "eps", "drop")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ValueError(
                f"unknown classifier action {self.action!r}; "
                f"expected one of {self._ACTIONS}")

    def matches(self, packet: Packet) -> bool:
        """True when every non-wildcard field matches ``packet``."""
        if self.src is not None and packet.src != self.src:
            return False
        if self.dst is not None and packet.dst != self.dst:
            return False
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return False
        if (self.priority_class is not None
                and packet.priority != self.priority_class):
            return False
        if self.min_size is not None and packet.size < self.min_size:
            return False
        return True


@dataclass(frozen=True)
class Classification:
    """Result of classifying one packet."""

    action: str
    dst: int


class FlowClassifier:
    """Priority-ordered first-match rule table with a ``voq`` default."""

    def __init__(self, rules: Optional[List[ClassifierRule]] = None) -> None:
        self._rules: List[ClassifierRule] = list(rules or [])

    def add_rule(self, rule: ClassifierRule) -> None:
        """Append a rule at the lowest priority (end of table)."""
        self._rules.append(rule)

    def insert_rule(self, index: int, rule: ClassifierRule) -> None:
        """Insert a rule at ``index`` (0 = highest priority)."""
        self._rules.insert(index, rule)

    def clear(self) -> None:
        """Remove all rules, restoring default-only behaviour."""
        self._rules.clear()

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def is_default(self) -> bool:
        """True while the table holds no rules.

        The hot ingress path checks this to skip rule matching (and the
        per-packet ``Classification`` allocation) entirely — default
        classification is the identity: ``voq`` toward ``packet.dst``.
        """
        return not self._rules

    def classify(self, packet: Packet) -> Classification:
        """Return the action for ``packet`` (default: voq to packet.dst)."""
        for rule in self._rules:
            if rule.matches(packet):
                dst = packet.dst
                if rule.redirect_dst is not None:
                    dst = rule.redirect_dst
                return Classification(rule.action, dst)
        return Classification("voq", packet.dst)


__all__ = ["ClassifierRule", "Classification", "FlowClassifier"]
