"""Host-software timing model.

Prices the scheduling loop as a process on a commodity server talking
to the switch over the network — the Helios/c-Through deployment the
paper contrasts itself with.  Component magnitudes follow the published
systems (§2's citations) and standard host-networking numbers:

* **Demand estimation** — poll every host's socket/queue occupancy over
  TCP: one RTT plus per-host marshalling.  c-Through reports ~100 ms
  epochs dominated by this; Helios measured "stability periods" in the
  60–100 ms range.  Default: ``rtt + n * per_host``.
* **Computation** — sequential instructions at ``ns_per_op`` (a few ns
  per simple op on a 2010s Xeon after cache effects), with per-algorithm
  operation counts (n³ for exact MWM via Hungarian, k·n² for iterative
  matchers, decomposition terms × n² for BvN/Solstice).
* **IO** — kernel socket + PCIe crossing to push the configuration out:
  tens of microseconds.
* **Propagation** — fibre to the switch plus switch-control-plane
  ingestion: microseconds.
* **Synchronisation** — the host-buffered protocol needs a guard band
  so hosts, scheduler and OCS agree on slot edges; NTP-class sync gives
  ~100 µs of slack that must be padded into every epoch (this is the
  "tight synchronization" §2 says is "difficult to achieve").
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hwmodel.timing import LatencyBreakdown, SchedulerTiming
from repro.sim.errors import ConfigurationError
from repro.sim.time import MICROSECONDS, NANOSECONDS


class SoftwareSchedulerTiming(SchedulerTiming):
    """Pricing of the loop as a host process over the network.

    All defaults are per the module docstring; every component is a
    constructor knob so E2 can ablate them.
    """

    name = "software"

    def __init__(self,
                 poll_rtt_ps: int = 100 * MICROSECONDS,
                 per_host_poll_ps: int = 10 * MICROSECONDS,
                 ns_per_op: float = 2.0,
                 io_ps: int = 30 * MICROSECONDS,
                 propagation_ps: int = 5 * MICROSECONDS,
                 sync_guard_ps: int = 100 * MICROSECONDS) -> None:
        if ns_per_op <= 0:
            raise ConfigurationError("ns_per_op must be positive")
        self.poll_rtt_ps = poll_rtt_ps
        self.per_host_poll_ps = per_host_poll_ps
        self.ns_per_op = ns_per_op
        self.io_ps = io_ps
        self.propagation_ps = propagation_ps
        self.sync_guard_ps = sync_guard_ps

    def operation_count(self, algorithm: str, n_ports: int,
                        stats: Optional[Dict[str, int]] = None) -> float:
        """Rough sequential-operation count per algorithm."""
        stats = stats or {}
        n = n_ports
        iterations = stats.get("iterations", 4)
        matchings = stats.get("matchings", n)
        if algorithm in ("tdma", "fixed-sequence"):
            return n
        if algorithm in ("pim", "islip"):
            return iterations * n * n
        if algorithm in ("wfa", "distributed-greedy"):
            return n * n
        if algorithm == "greedy-mwm":
            # sort n^2 edges + sweep
            return n * n * max(1.0, 2.0 * _log2(n)) + n * n
        if algorithm in ("mwm", "hotspot"):
            return float(n) ** 3
        if algorithm in ("bvn", "solstice"):
            # matchings × (Hopcroft-Karp ~ E sqrt(V) = n^2 * sqrt(n))
            return matchings * (n * n * (n ** 0.5))
        if algorithm == "eclipse":
            # candidate-MWM evaluations dominate: iterations × n^3.
            return iterations * float(n) ** 3
        return float(n) ** 3

    def breakdown(self, algorithm: str, n_ports: int,
                  stats: Optional[Dict[str, int]] = None) -> LatencyBreakdown:
        ops = self.operation_count(algorithm, n_ports, stats)
        compute_ps = round(ops * self.ns_per_op * NANOSECONDS)
        demand_ps = self.poll_rtt_ps + n_ports * self.per_host_poll_ps
        return LatencyBreakdown(
            demand_estimation_ps=demand_ps,
            computation_ps=compute_ps,
            io_ps=self.io_ps,
            propagation_ps=self.propagation_ps,
            synchronization_ps=self.sync_guard_ps,
        )


def _log2(n: int) -> float:
    import math
    return math.log2(max(2, n))


__all__ = ["SoftwareSchedulerTiming"]
