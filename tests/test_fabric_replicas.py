"""Golden-equivalence tests for the replica-batched fabric kernel.

``run_replicas`` must be *bit-identical* to running each replica alone:
same seeds → the same ``FabricStats`` list, field for field, whether
the solo runs use the vector engine or the scalar reference engine
(with scalar reference schedulers).  The batched iSLIP driver must
also evolve per-replica pointer state exactly as the solo scheduler.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.cellsim import CellFabricSim
from repro.fabric.replicas import run_replicas, run_replicas_sequential
from repro.fabric.workloads import (
    hotspot_rates,
    incast_rates,
    uniform_rates,
)
from repro.schedulers.batch import (
    BatchedIslipMatcher,
    SequentialReplicaMatcher,
    make_replica_matcher,
)
from repro.schedulers.fixed import RoundRobinTdma
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler
from repro.schedulers.pim import PimScheduler
from repro.schedulers.reference import ReferenceIslipScheduler
from repro.sim.errors import ConfigurationError, SchedulingError

WORKLOADS = {
    "uniform": lambda n: uniform_rates(n, 0.7),
    "hotspot": lambda n: hotspot_rates(n, 0.8, skew=0.6),
    "incast": lambda n: incast_rates(n, 0.9),
}

SCHEDULER_FACTORIES = {
    "islip1": lambda n: (lambda: IslipScheduler(n, iterations=1)),
    "islip2": lambda n: (lambda: IslipScheduler(n, iterations=2)),
    "greedy-mwm": lambda n: (lambda: GreedyMwmScheduler(n)),
    "mwm": lambda n: (lambda: MwmScheduler(n)),
    "tdma": lambda n: (lambda: RoundRobinTdma(n)),
    "pim": lambda n: (lambda: PimScheduler(n, iterations=2,
                                           rng=random.Random(13))),
}

SEEDS = [11, 22, 33]


class TestGoldenEquivalence:
    """batch == R independent vector runs == R reference runs."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("sched", sorted(SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("n", [4, 16])
    def test_batch_matches_independent_vector_runs(self, n, sched,
                                                   workload):
        factory = SCHEDULER_FACTORIES[sched](n)
        rates = WORKLOADS[workload](n)
        batch = run_replicas(factory, rates, SEEDS, 200, warmup=30)
        solo = run_replicas_sequential(factory, rates, SEEDS, 200,
                                       warmup=30)
        assert batch == solo

    def test_batch_matches_64_port_vector_runs(self):
        rates = uniform_rates(64, 0.8)
        factory = SCHEDULER_FACTORIES["islip1"](64)
        batch = run_replicas(factory, rates, SEEDS, 120, warmup=20)
        solo = run_replicas_sequential(factory, rates, SEEDS, 120,
                                       warmup=20)
        assert batch == solo

    def test_batch_matches_reference_engine(self):
        # The full cross-stack golden: batched kernel + batched iSLIP
        # vs scalar engine + scalar reference iSLIP, per replica.
        rates = hotspot_rates(8, 0.8, skew=0.5)
        batch = run_replicas(lambda: IslipScheduler(8, iterations=2),
                             rates, SEEDS, 180, warmup=25)
        reference = run_replicas_sequential(
            lambda: ReferenceIslipScheduler(8, iterations=2), rates,
            SEEDS, 180, warmup=25, engine="reference")
        assert batch == reference

    def test_single_replica_matches_solo_sim(self):
        rates = uniform_rates(16, 0.6)
        (batch,) = run_replicas(lambda: IslipScheduler(16), rates, [9],
                                250, warmup=40)
        solo = CellFabricSim(IslipScheduler(16), rates, seed=9,
                             engine="vector").run(250, warmup=40)
        assert batch == solo

    def test_deep_queue_growth_matches(self):
        # Full-load incast overflows the initial ring capacity many
        # times; the batched growth path must not perturb FIFO order.
        rates = incast_rates(8, 1.0)
        batch = run_replicas(lambda: RoundRobinTdma(8), rates, SEEDS,
                             600)
        solo = run_replicas_sequential(lambda: RoundRobinTdma(8),
                                       rates, SEEDS, 600)
        assert batch == solo
        assert all(stats.backlog_cells > 8 for stats in batch)

    def test_identical_across_chunk_boundaries(self, monkeypatch):
        import repro.fabric.replicas as replicas

        monkeypatch.setattr(replicas, "_CHUNK_SLOTS", 7)
        rates = hotspot_rates(8, 0.8, skew=0.5)
        batch = run_replicas(lambda: IslipScheduler(8, iterations=2),
                             rates, SEEDS, 250, warmup=33)
        solo = run_replicas_sequential(
            lambda: IslipScheduler(8, iterations=2), rates, SEEDS, 250,
            warmup=33)
        assert batch == solo

    @given(load=st.floats(0.1, 0.95), seed0=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_property_batch_equals_solo(self, load, seed0):
        rates = uniform_rates(6, load)
        seeds = [seed0, seed0 + 1, seed0 + 7]
        factory = SCHEDULER_FACTORIES["islip2"](6)
        assert run_replicas(factory, rates, seeds, 100, warmup=10) \
            == run_replicas_sequential(factory, rates, seeds, 100,
                                       warmup=10)


class TestValidation:
    def test_empty_seed_list(self):
        assert run_replicas(lambda: IslipScheduler(4),
                            uniform_rates(4, 0.5), [], 100) == []

    def test_run_parameter_validation(self):
        factory = SCHEDULER_FACTORIES["islip1"](4)
        rates = uniform_rates(4, 0.5)
        with pytest.raises(ConfigurationError):
            run_replicas(factory, rates, [1], 0)
        with pytest.raises(ConfigurationError):
            run_replicas(factory, rates, [1], 10, warmup=-1)

    def test_rates_validation(self):
        factory = SCHEDULER_FACTORIES["islip1"](4)
        with pytest.raises(ConfigurationError):
            run_replicas(factory, np.zeros((3, 3)), [1], 10)
        bad = uniform_rates(4, 0.5)
        bad[0, 0] = 0.1
        with pytest.raises(ConfigurationError):
            run_replicas(factory, bad, [1], 10)


class TestBatchedIslipMatcher:
    def test_matcher_selection(self):
        batched = make_replica_matcher(
            [IslipScheduler(8) for __ in range(3)])
        assert isinstance(batched, BatchedIslipMatcher)
        # Mixed iteration budgets, subclasses, other types and > 64
        # ports all fall back to the sequential driver.
        assert isinstance(make_replica_matcher(
            [IslipScheduler(8, iterations=1),
             IslipScheduler(8, iterations=2)]), SequentialReplicaMatcher)
        assert isinstance(make_replica_matcher(
            [ReferenceIslipScheduler(8) for __ in range(2)]),
            SequentialReplicaMatcher)
        assert isinstance(make_replica_matcher(
            [GreedyMwmScheduler(8)]), SequentialReplicaMatcher)
        assert isinstance(make_replica_matcher(
            [IslipScheduler(80) for __ in range(2)]),
            SequentialReplicaMatcher)

    def test_mixed_port_counts_rejected(self):
        with pytest.raises(SchedulingError):
            make_replica_matcher([IslipScheduler(4), IslipScheduler(8)])

    def test_empty_replica_set_rejected(self):
        with pytest.raises(SchedulingError):
            SequentialReplicaMatcher([])

    @given(n=st.integers(2, 10), iterations=st.integers(1, 4),
           seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_matchings_and_pointers_track_solo_over_sequences(
            self, n, iterations, seed):
        # Drive batched and solo schedulers through the same demand
        # sequence; matchings and pointer state must agree exactly at
        # every step (pointers persist across calls).
        rng = np.random.default_rng(seed)
        replicas = 3
        solo = [IslipScheduler(n, iterations=iterations)
                for __ in range(replicas)]
        batched_schedulers = [IslipScheduler(n, iterations=iterations)
                              for __ in range(replicas)]
        matcher = make_replica_matcher(batched_schedulers)
        assert isinstance(matcher, BatchedIslipMatcher)
        for __ in range(8):
            demands = rng.integers(0, 3, (replicas, n, n))
            np.fill_diagonal(demands[0], 0)  # diagonal allowed elsewhere
            out_of = matcher.compute(demands)
            matcher.sync()
            for replica in range(replicas):
                expected = solo[replica].compute_trusted(
                    demands[replica]).first.as_array()
                assert out_of[replica].tolist() == expected.tolist()
                assert batched_schedulers[replica].grant_ptr \
                    == solo[replica].grant_ptr
                assert batched_schedulers[replica].accept_ptr \
                    == solo[replica].accept_ptr

    def test_n64_words_with_pointer_zero(self):
        # n == 64 exercises the split-shift rotate (a << 64 would be
        # undefined); pointer 0 is the edge case it protects.
        demands = np.ones((2, 64, 64), dtype=np.int64)
        for demand in demands:
            np.fill_diagonal(demand, 0)
        solo = [IslipScheduler(64) for __ in range(2)]
        matcher = make_replica_matcher(
            [IslipScheduler(64) for __ in range(2)])
        out_of = matcher.compute(demands)
        for replica in range(2):
            expected = solo[replica].compute_trusted(
                demands[replica]).first.as_array()
            assert out_of[replica].tolist() == expected.tolist()
