"""Destination-selection patterns shared by all traffic sources.

A :class:`DestinationChooser` maps "this host wants to send a packet"
to a destination port.  The three classics:

* **uniform** — each packet to a uniformly random other host; the
  benign, EPS-friendly pattern;
* **permutation** — every host talks to one fixed partner; the pattern
  circuit switches love (one circuit serves everything);
* **hotspot** — a skewed mix: with probability ``skew`` the packet goes
  to the host's designated hot partner, otherwise uniform.  Sweeping
  ``skew`` from 0 to 1 interpolates between the two worlds — E6's axis.

Two more patterns serve the scenario library (``repro.scenario``):

* **round-robin** — deterministic cycling over every other host, the
  all-to-all shuffle phase of a partition/aggregate job;
* **zipf** — rank-skewed popularity: destination ranks are drawn from a
  Zipf law, the scale-free popularity distribution measured for web and
  datacenter object traffic.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.sim.errors import ConfigurationError


class DestinationChooser(abc.ABC):
    """Chooses a destination port for each packet from ``src``."""

    def __init__(self, n_ports: int, src: int) -> None:
        if not 0 <= src < n_ports:
            raise ConfigurationError(f"src {src} out of range")
        if n_ports < 2:
            raise ConfigurationError("need >= 2 ports")
        self.n_ports = n_ports
        self.src = src

    @abc.abstractmethod
    def choose(self) -> int:
        """Destination for the next packet (never equal to ``src``)."""


class UniformDestination(DestinationChooser):
    """Uniformly random over all hosts except the source."""

    def __init__(self, n_ports: int, src: int,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(n_ports, src)
        self.rng = rng or random.Random(src)

    def choose(self) -> int:
        dst = self.rng.randrange(self.n_ports - 1)
        return dst if dst < self.src else dst + 1


class FixedDestination(DestinationChooser):
    """Every packet to one fixed destination."""

    def __init__(self, n_ports: int, src: int, dst: int) -> None:
        super().__init__(n_ports, src)
        if dst == src or not 0 <= dst < n_ports:
            raise ConfigurationError(
                f"fixed destination {dst} invalid for src {src}")
        self.dst = dst

    def choose(self) -> int:
        return self.dst


class PermutationDestination(FixedDestination):
    """The cyclic-shift permutation partner: ``(src + shift) mod n``."""

    def __init__(self, n_ports: int, src: int, shift: int = 1) -> None:
        if shift % n_ports == 0:
            raise ConfigurationError("shift must not be a multiple of n")
        super().__init__(n_ports, src, (src + shift) % n_ports)


class HotspotDestination(DestinationChooser):
    """Skewed chooser: hot partner with probability ``skew``, else uniform.

    ``skew = 0`` degenerates to uniform, ``skew = 1`` to permutation.
    """

    def __init__(self, n_ports: int, src: int, skew: float,
                 hot_dst: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(n_ports, src)
        if not 0.0 <= skew <= 1.0:
            raise ConfigurationError(f"skew must be in [0, 1], got {skew}")
        self.skew = skew
        self.hot_dst = ((src + 1) % n_ports if hot_dst is None else hot_dst)
        if self.hot_dst == src:
            raise ConfigurationError("hot destination equals source")
        self.rng = rng or random.Random(src)
        self._uniform = UniformDestination(n_ports, src, self.rng)

    def choose(self) -> int:
        if self.rng.random() < self.skew:
            return self.hot_dst
        return self._uniform.choose()


class RoundRobinDestination(DestinationChooser):
    """Deterministic cycle over every other host, starting at ``offset``.

    The shuffle pattern: each host streams to host ``src+offset``, then
    ``src+offset+1`` and so on, wrapping and skipping itself.  No
    randomness — two runs visit destinations in the same order.
    """

    def __init__(self, n_ports: int, src: int, offset: int = 1) -> None:
        super().__init__(n_ports, src)
        self._order = [(src + offset + k) % n_ports
                       for k in range(n_ports)]
        self._order = [d for d in self._order if d != src]
        self._next = 0

    def choose(self) -> int:
        dst = self._order[self._next]
        self._next = (self._next + 1) % len(self._order)
        return dst


class ZipfDestination(DestinationChooser):
    """Zipf-popular destinations: rank ``r`` drawn with weight 1/r^s.

    Ranks map to hosts in ``(src + rank) mod n`` order, so every host
    has a distinct most-popular partner (rank 1) and the aggregate
    demand matrix is skewed but admissible.  ``exponent`` is the Zipf
    shape ``s``; larger means more of the traffic lands on the top
    ranks (``s -> 0`` degenerates to uniform).
    """

    def __init__(self, n_ports: int, src: int, exponent: float = 1.2,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(n_ports, src)
        if exponent < 0.0:
            raise ConfigurationError(
                f"zipf exponent must be >= 0, got {exponent}")
        self.exponent = exponent
        self.rng = rng or random.Random(src)
        weights = [(rank + 1) ** -exponent
                   for rank in range(n_ports - 1)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard float accumulation
        self._targets = [(src + 1 + rank) % n_ports
                         for rank in range(n_ports - 1)]

    def choose(self) -> int:
        u = self.rng.random()
        for rank, edge in enumerate(self._cdf):
            if u <= edge:
                return self._targets[rank]
        return self._targets[-1]


__all__ = [
    "DestinationChooser",
    "UniformDestination",
    "FixedDestination",
    "PermutationDestination",
    "HotspotDestination",
    "RoundRobinDestination",
    "ZipfDestination",
]
