"""Tests for demand estimators, with sketch properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.demand import (
    CountMinSketch,
    EwmaEstimator,
    InstantEstimator,
    SketchEstimator,
)
from repro.sim.errors import ConfigurationError


class TestInstantEstimator:
    def test_observe_accumulates(self):
        est = InstantEstimator(3)
        est.observe(0, 1, 100)
        est.observe(0, 1, 50)
        assert est.estimate()[0, 1] == 150

    def test_snapshot_replaces(self):
        est = InstantEstimator(3)
        est.observe(0, 1, 999)
        occupancy = np.zeros((3, 3))
        occupancy[1, 2] = 42
        est.snapshot(occupancy)
        estimate = est.estimate()
        assert estimate[0, 1] == 0
        assert estimate[1, 2] == 42

    def test_estimate_is_copy(self):
        est = InstantEstimator(2)
        est.estimate()[0, 1] = 7
        assert est.estimate()[0, 1] == 0


class TestEwmaEstimator:
    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaEstimator(3, alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaEstimator(3, alpha=1.5)

    def test_first_snapshot_primes(self):
        est = EwmaEstimator(2, alpha=0.5)
        sample = np.array([[0.0, 10.0], [4.0, 0.0]])
        est.snapshot(sample)
        assert np.allclose(est.estimate(), sample)

    def test_ewma_update_rule(self):
        est = EwmaEstimator(2, alpha=0.5)
        est.snapshot(np.array([[0.0, 10.0], [0.0, 0.0]]))
        est.snapshot(np.array([[0.0, 20.0], [0.0, 0.0]]))
        assert est.estimate()[0, 1] == pytest.approx(15.0)

    def test_observations_fold_into_next_snapshot(self):
        est = EwmaEstimator(2, alpha=1.0)
        est.snapshot(np.zeros((2, 2)))
        est.observe(0, 1, 100)
        est.snapshot(np.zeros((2, 2)))
        assert est.estimate()[0, 1] == pytest.approx(100.0)

    def test_reset_epoch_discards_pending(self):
        est = EwmaEstimator(2, alpha=1.0)
        est.snapshot(np.zeros((2, 2)))
        est.observe(0, 1, 100)
        est.reset_epoch()
        est.snapshot(np.zeros((2, 2)))
        assert est.estimate()[0, 1] == 0.0


class TestCountMinSketch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(0, 4)

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(width=1024, depth=4)
        sketch.add(7, 100)
        sketch.add(9, 50)
        assert sketch.query(7) == 100
        assert sketch.query(9) == 50

    def test_reset(self):
        sketch = CountMinSketch(8, 2)
        sketch.add(1, 5)
        sketch.reset()
        assert sketch.query(1) == 0

    @given(st.lists(
        st.tuples(st.integers(0, 63), st.integers(1, 1000)),
        min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_never_underestimates(self, additions):
        sketch = CountMinSketch(width=16, depth=4, seed=3)
        truth = {}
        for key, amount in additions:
            sketch.add(key, amount)
            truth[key] = truth.get(key, 0) + amount
        for key, value in truth.items():
            assert sketch.query(key) >= value

    def test_unseen_key_can_collide_but_never_negative(self):
        sketch = CountMinSketch(width=4, depth=2, seed=1)
        sketch.add(0, 10)
        assert sketch.query(99) >= 0


class TestSketchEstimator:
    def test_estimate_reconstructs_matrix(self):
        est = SketchEstimator(4, width=256, depth=4)
        est.observe(0, 1, 500)
        est.observe(2, 3, 300)
        estimate = est.estimate()
        assert estimate[0, 1] >= 500
        assert estimate[2, 3] >= 300
        assert estimate[1, 1] == 0  # diagonal never populated

    def test_snapshot_is_ignored(self):
        est = SketchEstimator(3, width=64)
        occupancy = np.full((3, 3), 1e6)
        est.snapshot(occupancy)
        assert est.estimate().sum() == 0

    def test_reset_epoch_clears(self):
        est = SketchEstimator(3, width=64)
        est.observe(0, 1, 10)
        est.reset_epoch()
        assert est.estimate().sum() == 0
