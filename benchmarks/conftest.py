"""Benchmark-harness helpers.

Every experiment bench follows the same pattern: run the experiment
once under pytest-benchmark (pedantic, one round — these are system
runs, not microbenchmarks), print the paper-style tables, and persist
them under ``benchmarks/output/`` so the artifacts survive output
capture.
"""

from __future__ import annotations

import os
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def run_and_report(benchmark, experiment_fn, quick=None):
    """Run ``experiment_fn`` once under the benchmark, print + save."""
    if quick is None:
        quick = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
    report = benchmark.pedantic(
        experiment_fn, kwargs={"quick": quick}, rounds=1, iterations=1)
    text = report.render()
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    out_path = OUTPUT_DIR / f"{report.experiment_id}.txt"
    out_path.write_text(text + "\n")
    return report
