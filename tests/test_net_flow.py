"""Tests for flow identity types."""

import pytest

from repro.net.flow import FiveTuple, FlowKey


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self):
        ft = FiveTuple(1, 2, 1000, 80, "tcp")
        rev = ft.reversed()
        assert rev == FiveTuple(2, 1, 80, 1000, "tcp")

    def test_double_reverse_is_identity(self):
        ft = FiveTuple(1, 2, 1000, 80, "udp")
        assert ft.reversed().reversed() == ft

    def test_hashable(self):
        assert len({FiveTuple(1, 2, 3, 4), FiveTuple(1, 2, 3, 4)}) == 1


class TestFlowKey:
    def test_basic(self):
        key = FlowKey(0, 5)
        assert key.src == 0 and key.dst == 5

    def test_diagonal_rejected(self):
        with pytest.raises(ValueError):
            FlowKey(3, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FlowKey(-1, 2)

    def test_ordering(self):
        assert FlowKey(0, 1) < FlowKey(0, 2) < FlowKey(1, 0)

    def test_hashable_and_distinct(self):
        assert len({FlowKey(0, 1), FlowKey(1, 0)}) == 2
