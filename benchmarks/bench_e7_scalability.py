"""Bench E7 — schedule-computation scalability with port count."""

from conftest import run_and_report

from repro.experiments.e7_scalability import run_e7


def test_bench_e7_scalability(benchmark):
    report = run_and_report(benchmark, run_e7)
    model = report.data["model_compute_ps"]
    # iSLIP-class stays sub-microsecond at the largest port count.
    assert model["islip"][-1] < 1_000_000
    # Exact MWM leaves the fast class as ports grow.
    assert model["mwm"][-1] > model["islip"][-1]
    # Monotone growth with port count for every algorithm.
    for series in model.values():
        assert series == sorted(series)
