"""The microbenchmark registry: one definition per hot path.

Every benchmark the project tracks is declared here once, as a
:class:`Bench` whose ``make()`` returns the zero-argument callable to
time.  Both frontends consume this registry:

* ``repro perf`` (:mod:`repro.perf.runner`) times each bench and emits
  the ``BENCH_<rev>.json`` trajectory record;
* ``benchmarks/bench_micro.py`` parametrises pytest-benchmark over the
  same entries, so there is exactly one list of bench definitions.

Naming convention: ``<group>.<variant>.n<ports>[.<workload>][.<engine>]``.
Fabric benches come in ``.vector`` / ``.reference`` pairs with otherwise
identical names; :func:`repro.perf.record.engine_speedups` pairs them to
report the vector-over-reference speedup, which is the acceptance
number for the hot-path overhaul.

The reference fabric benches deliberately run the *reference stack* —
scalar fabric engine driving the scalar schedulers from
:mod:`repro.schedulers.reference` — so the recorded ratio measures the
whole overhaul (batched RNG + ring-buffer FIFOs + trusted entry +
vectorised matching), not a single layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

import numpy as np


@dataclass(frozen=True)
class Bench:
    """One registered microbenchmark.

    Attributes
    ----------
    name:
        Unique dotted identifier (see module docstring for the
        convention).
    make:
        Setup factory: runs once per measurement, outside the timed
        region, and returns the zero-argument callable that is timed.
    group:
        Coarse family (``scheduler`` / ``engine`` / ``fabric``) used
        for filtering and display.
    quick:
        Included in the ``--quick`` subset (CI perf-smoke).  Full mode
        runs every bench.
    meta:
        Free-form descriptors recorded into ``BENCH_*.json``
        (``n_ports``, ``engine``, ``scheduler``, ``workload``, ...).
    check:
        Optional sanity predicate on the timed callable's return value,
        asserted by both frontends *outside* the timed region.  Guards
        against a bench whose workload silently stops doing work and
        records a flattering "speedup" instead of failing.
    """

    name: str
    make: Callable[[], Callable[[], Any]]
    group: str
    quick: bool = True
    meta: Mapping[str, Any] = field(default_factory=dict)
    check: Optional[Callable[[Any], bool]] = None


_REGISTRY: Dict[str, Bench] = {}


def register_bench(bench: Bench) -> Bench:
    """Add one bench to the registry; duplicate names are an error."""
    if bench.name in _REGISTRY:
        raise ValueError(f"duplicate bench name {bench.name!r}")
    _REGISTRY[bench.name] = bench
    return bench


def get_bench(name: str) -> Bench:
    """Look up one bench by exact name (KeyError when unknown)."""
    return _REGISTRY[name]


def iter_benches(quick: bool = False,
                 pattern: Optional[str] = None) -> Iterator[Bench]:
    """Registered benches in name order.

    ``quick=True`` keeps only the quick subset; ``pattern`` is a
    case-insensitive substring filter on the name.
    """
    needle = pattern.lower() if pattern else None
    for name in sorted(_REGISTRY):
        bench = _REGISTRY[name]
        if quick and not bench.quick:
            continue
        if needle is not None and needle not in name.lower():
            continue
        yield bench


def bench_names(quick: bool = False,
                pattern: Optional[str] = None) -> List[str]:
    """Names produced by :func:`iter_benches` with the same filters."""
    return [bench.name for bench in iter_benches(quick, pattern)]


# -- scheduler compute benches -------------------------------------------------


def _demand(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    demand = rng.exponential(10_000, (n, n))
    np.fill_diagonal(demand, 0.0)
    return demand


def _sched_bench(name: str, factory, n: int, quick: bool,
                 scheduler: str) -> None:
    def make() -> Callable[[], Any]:
        instance = factory()
        demand = _demand(n)
        return lambda: instance.compute(demand)

    register_bench(Bench(
        name=name, make=make, group="scheduler", quick=quick,
        meta={"n_ports": n, "scheduler": scheduler},
        check=lambda result: len(result.matchings) >= 1))


def _register_scheduler_benches() -> None:
    from repro.schedulers.bvn import BvnScheduler
    from repro.schedulers.islip import IslipScheduler
    from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler
    from repro.schedulers.solstice import SolsticeScheduler
    from repro.sim.time import MICROSECONDS

    _sched_bench("sched.islip4.n16",
                 lambda: IslipScheduler(16, iterations=4), 16,
                 quick=True, scheduler="islip")
    _sched_bench("sched.islip4.n64",
                 lambda: IslipScheduler(64, iterations=4), 64,
                 quick=False, scheduler="islip")
    _sched_bench("sched.mwm.n64", lambda: MwmScheduler(64), 64,
                 quick=False, scheduler="mwm")
    _sched_bench("sched.greedy-mwm.n64", lambda: GreedyMwmScheduler(64), 64,
                 quick=False, scheduler="greedy-mwm")
    _sched_bench("sched.bvn.n16", lambda: BvnScheduler(16), 16,
                 quick=True, scheduler="bvn")
    _sched_bench("sched.solstice.n16",
                 lambda: SolsticeScheduler(16,
                                           reconfig_ps=20 * MICROSECONDS),
                 16, quick=True, scheduler="solstice")


# -- event-engine bench --------------------------------------------------------


def _register_engine_benches() -> None:
    from repro.sim.engine import Simulator

    def make() -> Callable[[], Any]:
        def run_10k_events() -> int:
            sim = Simulator()
            remaining = [10_000]

            def tick() -> None:
                remaining[0] -= 1
                if remaining[0]:
                    sim.schedule(10, tick)

            sim.schedule(0, tick)
            sim.run()
            return sim.events_dispatched

        return run_10k_events

    register_bench(Bench(
        name="engine.dispatch.10k", make=make, group="engine", quick=True,
        meta={"events": 10_000},
        check=lambda dispatched: dispatched == 10_000))


# -- cell-fabric benches -------------------------------------------------------


def _fabric_bench(name: str, engine: str, n: int, slots: int, rates_fn,
                  workload: str, sched_factory, scheduler: str,
                  quick: bool) -> None:
    def make() -> Callable[[], Any]:
        from repro.fabric.cellsim import CellFabricSim

        rates = rates_fn(n)

        def run():
            # Fresh scheduler + sim per op: iSLIP pointers are stateful
            # and a warm backlog would change what later ops measure.
            sim = CellFabricSim(sched_factory(n), rates, seed=1,
                                engine=engine)
            return sim.run(slots=slots)

        return run

    register_bench(Bench(
        name=name, make=make, group="fabric", quick=quick,
        meta={"n_ports": n, "engine": engine, "slots": slots,
              "scheduler": scheduler, "workload": workload},
        check=lambda stats: stats.departures > 0))


def _register_fabric_benches() -> None:
    from repro.fabric.workloads import incast_rates, uniform_rates
    from repro.schedulers.islip import IslipScheduler
    from repro.schedulers.reference import ReferenceIslipScheduler

    def islip1(n: int) -> IslipScheduler:
        return IslipScheduler(n, iterations=1)

    def reference_islip1(n: int) -> ReferenceIslipScheduler:
        return ReferenceIslipScheduler(n, iterations=1)

    def uniform80(n: int) -> np.ndarray:
        return uniform_rates(n, 0.8)

    def incast90(n: int) -> np.ndarray:
        return incast_rates(n, 0.9)

    # The acceptance pair: 64-port uniform load, full stacks.
    _fabric_bench("fabric.islip1.uniform.n64.vector", "vector", 64, 300,
                  uniform80, "uniform-0.8", islip1, "islip", quick=True)
    _fabric_bench("fabric.islip1.uniform.n64.reference", "reference", 64,
                  300, uniform80, "uniform-0.8", reference_islip1,
                  "islip-reference", quick=True)
    # Small-port pair: overhead-dominated regime.
    _fabric_bench("fabric.islip1.uniform.n16.vector", "vector", 16, 1_000,
                  uniform80, "uniform-0.8", islip1, "islip", quick=True)
    _fabric_bench("fabric.islip1.uniform.n16.reference", "reference", 16,
                  1_000, uniform80, "uniform-0.8", reference_islip1,
                  "islip-reference", quick=True)
    # Incast: exercises deep single-column VOQs (ring-buffer growth).
    _fabric_bench("fabric.islip1.incast.n16.vector", "vector", 16, 1_000,
                  incast90, "incast-0.9", islip1, "islip", quick=False)


# -- sweep-throughput benches --------------------------------------------------
#
# The unit of work the paper demands is the *sweep*: many replicas of
# many points.  These benches track the three layers that overhaul
# lives in — the replica-batched fabric kernel, the warm-worker runner,
# and the end-to-end executor path — each ``.batch`` paired with the
# ``.sequential`` per-replica path it replaces (the pairing drives the
# recorded speedup, acceptance ≥ 3x on the 64-port uniform pair).

#: Replicas per sweep-point bench (figure points run tens of seeds;
#: batching margin also grows with the replica count).
_SWEEP_REPLICAS = 32


def _noop_job(value: int) -> int:
    """Minimal picklable job for dispatch-overhead benches."""
    return value


def _register_sweep_fabric_benches() -> None:
    from repro.fabric.replicas import (
        run_replicas,
        run_replicas_sequential,
    )
    from repro.fabric.workloads import uniform_rates
    from repro.schedulers.islip import IslipScheduler

    n, slots = 64, 120
    seeds = list(range(_SWEEP_REPLICAS))

    def factory():
        return IslipScheduler(n, iterations=1)

    def make_batch() -> Callable[[], Any]:
        rates = uniform_rates(n, 0.8)
        return lambda: run_replicas(factory, rates, seeds, slots)

    def make_sequential() -> Callable[[], Any]:
        rates = uniform_rates(n, 0.8)
        return lambda: run_replicas_sequential(factory, rates, seeds,
                                               slots)

    expected: Dict[str, Any] = {}

    def check_batch(result: Any) -> bool:
        # The acceptance pair must stay byte-identical, not just fast:
        # the batched stats are compared against the sequential path
        # (computed once, outside every timed region).
        if "stats" not in expected:
            expected["stats"] = run_replicas_sequential(
                factory, uniform_rates(n, 0.8), seeds, slots)
        return result == expected["stats"]

    meta = {"n_ports": n, "slots": slots, "replicas": _SWEEP_REPLICAS,
            "scheduler": "islip", "workload": "uniform-0.8"}
    register_bench(Bench(
        name="sweep.fabric.uniform.n64.batch", make=make_batch,
        group="sweep", quick=True, meta={**meta, "path": "batch"},
        check=check_batch))
    register_bench(Bench(
        name="sweep.fabric.uniform.n64.sequential",
        make=make_sequential, group="sweep", quick=True,
        meta={**meta, "path": "sequential"},
        check=lambda stats: all(s.departures > 0 for s in stats)))


def _register_runner_benches() -> None:
    def make() -> Callable[[], Any]:
        from repro.runner.executor import map_jobs

        # Prime the warm pool outside the timed region: the bench
        # measures steady-state dispatch throughput, not the one-off
        # spawn cost the pool exists to amortise.
        map_jobs(_noop_job, list(range(4)), jobs=2)
        items = list(range(64))
        return lambda: map_jobs(_noop_job, items, jobs=2)

    register_bench(Bench(
        name="sweep.dispatch.warmpool.64jobs", make=make,
        group="sweep", quick=True,
        meta={"jobs": 64, "workers": 2},
        check=lambda result: result == list(range(64))))


def _register_sweep_e2e_benches() -> None:
    def _specs():
        from repro.runner.plan import plan_runs

        return plan_runs(
            ["e5"], quick=True, base_seed=1, replicas=4,
            grid={"loads": [[0.6]], "slots": [120], "warmup": [20],
                  "n_ports": [8]})

    def make_batch() -> Callable[[], Any]:
        from repro.runner.executor import execute

        specs = _specs()
        return lambda: execute(specs, jobs=1, replica_batch=True)

    def make_sequential() -> Callable[[], Any]:
        from repro.runner.executor import execute

        specs = _specs()
        return lambda: execute(specs, jobs=1)

    expected: Dict[str, Any] = {}

    def _payloads(outcomes: Any) -> Any:
        from repro.runner.cache import report_to_payload
        from repro.runner.spec import canonical_json

        return [canonical_json(report_to_payload(o.report))
                for o in outcomes]

    def check_batch(result: Any) -> bool:
        if "payloads" not in expected:
            from repro.runner.executor import execute

            expected["payloads"] = _payloads(execute(_specs(), jobs=1))
        return _payloads(result) == expected["payloads"]

    meta = {"experiment": "e5", "replicas": 4, "n_ports": 8}
    register_bench(Bench(
        name="sweep.e2e.e5.n8.batch", make=make_batch, group="sweep",
        quick=True, meta={**meta, "path": "batch"}, check=check_batch))
    register_bench(Bench(
        name="sweep.e2e.e5.n8.sequential", make=make_sequential,
        group="sweep", quick=True,
        meta={**meta, "path": "sequential"},
        check=lambda outcomes: all(o.report.data for o in outcomes)))


# -- packet-path benches -------------------------------------------------------
#
# The PR-5 overhaul: chunked traffic generation, columnar PacketLog
# telemetry, eager egress delivery and the vectorized analysis kernels.
# ``.columnar`` runs the fast lane end to end; ``.reference`` runs the
# preserved per-packet / per-object path — the same full-stack pairing
# discipline as the fabric and sweep groups, so the recorded ratio
# measures the whole packet-path overhaul.  The e2e pair's check
# asserts the two lanes' *reports are equal*, not just that work
# happened.

#: Chunk size used by the packet-path benches' columnar lane.
_PACKETPATH_CHUNK = 256


#: CBR period of the e2e bench's foreground stream (E4 measures one).
_PACKETPATH_CBR_PERIOD_PS = 40_000_000


def _packetpath_run(lane: str):
    """Build and run the e2e bench workload on one lane.

    The workload is E4's measurement at E2's 128-port fabric point
    (the full-mode port sweep's largest radix): one CBR stream
    (host 0 → 1, elevated priority) over E4-style bursty on/off
    background traffic on every other sending host, under fast
    scheduling (iSLIP-4, E2's priced configuration, FPGA-class
    timing).  Hosts carry one source each, so the chunk lane's
    exactness conditions hold everywhere.

    ``lane`` selects the full stack, PR-3/PR-4 pairing discipline: the
    columnar lane runs the vectorized scheduler plus the packet-path
    fast lane; the reference lane runs the scalar reference scheduler
    plus the preserved per-packet/per-object path, so the recorded
    ratio measures the whole overhaul, not a single layer.
    """
    from repro.core.config import FrameworkConfig
    from repro.core.framework import HybridSwitchFramework
    from repro.schedulers.reference import ReferenceIslipScheduler
    from repro.sim.time import MICROSECONDS, NANOSECONDS
    from repro.traffic.patterns import UniformDestination
    from repro.traffic.sources import CbrSource, OnOffSource

    n_ports = 128
    config = FrameworkConfig(
        n_ports=n_ports,
        switching_time_ps=100 * NANOSECONDS,
        scheduler="islip",
        scheduler_kwargs={"iterations": 4},
        timing_preset="netfpga_sume",
        default_slot_ps=5 * MICROSECONDS,
        seed=11,
    )
    reference = lane == "reference"
    scheduler = (ReferenceIslipScheduler(n_ports, iterations=4)
                 if reference else None)
    fw = HybridSwitchFramework(config, scheduler=scheduler,
                               packet_lane=lane)
    chunk = 0 if reference else _PACKETPATH_CHUNK
    cbr = CbrSource(fw.sim, fw.hosts[0], dst=1, packet_bytes=200,
                    period_ps=_PACKETPATH_CBR_PERIOD_PS,
                    chunk_packets=chunk)
    for host in fw.hosts[2:]:
        OnOffSource(
            fw.sim, host,
            burst_rate_bps=0.5 * config.port_rate_bps,
            mean_on_ps=100 * MICROSECONDS,
            mean_off_ps=300 * MICROSECONDS,
            chooser=UniformDestination(
                n_ports, host.host_id,
                fw.sim.streams.stream(f"dst{host.host_id}")),
            rng=fw.sim.streams.stream(f"src{host.host_id}"),
            chunk_packets=chunk)
    result = fw.run(1_200 * MICROSECONDS)
    return result, cbr.flow_id


def _packetpath_report(lane: str) -> dict:
    """Run the bench workload on ``lane`` and reduce it to a report.

    The reduction exercises the analysis stage the way E4 does —
    latency summary, CBR percentiles and RFC 3550 jitter — through each
    lane's own pipeline: PacketLog columns and the vectorized kernels
    on the columnar lane, retained ``Packet`` objects and the scalar
    executable specs on the reference lane.  Jitter is rounded to whole
    picoseconds (as every report renders it) so the lanes compare by
    exact equality.
    """
    result, cbr_flow = _packetpath_run(lane)
    if lane == "reference":
        from repro.analysis.metrics import latency_summary
        from repro.analysis.reference import (
            reference_interarrival_jitter_ps,
        )

        summary = latency_summary(result.delivered)
        stream = result.flow_packets(cbr_flow)
        latencies = sorted(p.latency_ps for p in stream
                           if p.latency_ps is not None)
        arrivals = [p.delivered_ps for p in stream]
        jitter = reference_interarrival_jitter_ps(
            arrivals, _PACKETPATH_CBR_PERIOD_PS)
        p50 = latencies[len(latencies) // 2] if latencies else 0
    else:
        from repro.analysis.metrics import (
            interarrival_jitter_ps,
            latency_summary_from_arrays,
        )

        summary = latency_summary_from_arrays(result.log.latency_ps())
        ordered = np.sort(result.flow_latencies_ps(cbr_flow),
                          kind="stable")
        jitter = interarrival_jitter_ps(
            result.flow_arrivals_ps(cbr_flow),
            _PACKETPATH_CBR_PERIOD_PS)
        p50 = int(ordered[len(ordered) // 2]) if len(ordered) else 0
    return {
        "delivered": result.delivered_count,
        "delivered_bytes": result.delivered_bytes,
        "ocs_bytes": result.ocs_bytes,
        "eps_bytes": result.eps_bytes,
        "drops": dict(result.drops),
        "utilisation": result.utilisation(),
        "latency": (summary.count, summary.mean_ps, summary.p50_ps,
                    summary.p95_ps, summary.p99_ps, summary.max_ps,
                    summary.std_ps),
        "cbr_p50_ps": int(p50),
        "cbr_jitter_ps": round(jitter),
    }


def _register_packetpath_source_benches() -> None:
    from repro.net.host import Host
    from repro.net.link import Link
    from repro.sim.engine import Simulator
    from repro.sim.time import MILLISECONDS
    from repro.traffic.patterns import UniformDestination
    from repro.traffic.sources import PoissonSource

    def generate(chunk: int) -> int:
        sim = Simulator(seed=3)
        sink_count = [0]

        def sink(packet) -> None:
            sink_count[0] += 1

        uplink = Link(sim, "bench.up", rate_bps=10e9,
                      propagation_ps=50_000, sink=sink)
        host = Host(sim, 0, uplink)
        source = PoissonSource(
            sim, host, rate_bps=6e9,
            chooser=UniformDestination(8, 0, sim.streams.stream("dst0")),
            rng=sim.streams.stream("src0"),
            chunk_packets=chunk)
        sim.run(until=20 * MILLISECONDS)
        return source.packets_emitted

    def make_columnar():
        return lambda: generate(_PACKETPATH_CHUNK)

    def make_reference():
        return lambda: generate(0)

    expected: Dict[str, int] = {}

    def check(emitted: int) -> bool:
        # Chunked generation must emit the exact same packet count the
        # per-packet path does (draw-for-draw identical RNG streams).
        if "emitted" not in expected:
            expected["emitted"] = generate(0)
        return emitted == expected["emitted"] and emitted > 0

    meta = {"n_ports": 8, "source": "poisson", "rate_bps": 6e9}
    register_bench(Bench(
        name="packetpath.source.poisson.n8.columnar",
        make=make_columnar, group="packetpath", quick=True,
        meta={**meta, "lane": "columnar",
              "chunk_packets": _PACKETPATH_CHUNK},
        check=check))
    register_bench(Bench(
        name="packetpath.source.poisson.n8.reference",
        make=make_reference, group="packetpath", quick=True,
        meta={**meta, "lane": "reference"}, check=check))


def _register_packetpath_e2e_benches() -> None:
    expected: Dict[str, Any] = {}

    def reference_report() -> dict:
        if "report" not in expected:
            expected["report"] = _packetpath_report("reference")
        return expected["report"]

    def make_columnar() -> Callable[[], Any]:
        reference_report()  # resolve outside the timed region
        return lambda: _packetpath_report("columnar")

    def make_reference() -> Callable[[], Any]:
        return lambda: _packetpath_report("reference")

    def check_columnar(report: Any) -> bool:
        # The acceptance pair must stay *equal*, not just fast: every
        # reported number from the columnar lane — byte counters,
        # latency summary, CBR percentiles, jitter — must match the
        # reference lane's report exactly.
        return report == reference_report() and report["delivered"] > 0

    def check_reference(report: Any) -> bool:
        return report == reference_report()

    meta = {"n_ports": 128, "experiment": "e4-at-e2s-128-port-point",
            "scheduler": "islip-4", "duration_us": 1200}
    register_bench(Bench(
        name="packetpath.e2e.e4.n128.columnar", make=make_columnar,
        group="packetpath", quick=True,
        meta={**meta, "lane": "columnar", "stack": "vector+columnar",
              "chunk_packets": _PACKETPATH_CHUNK},
        check=check_columnar))
    register_bench(Bench(
        name="packetpath.e2e.e4.n128.reference", make=make_reference,
        group="packetpath", quick=True,
        meta={**meta, "lane": "reference",
              "stack": "reference-scheduler+per-packet+scalar-analysis"},
        check=check_reference))


def _register_packetpath_analysis_benches() -> None:
    def make_jitter() -> Callable[[], Any]:
        rng = np.random.default_rng(7)
        arrivals = np.cumsum(
            rng.integers(900_000, 1_100_000, size=200_000)).astype(
                np.int64)

        def run() -> float:
            from repro.analysis.metrics import interarrival_jitter_ps

            return interarrival_jitter_ps(arrivals, 1_000_000)

        return run

    def check_jitter(value: Any) -> bool:
        from repro.analysis.reference import (
            reference_interarrival_jitter_ps,
        )

        rng = np.random.default_rng(7)
        arrivals = np.cumsum(
            rng.integers(900_000, 1_100_000, size=200_000)).astype(
                np.int64)
        spec = reference_interarrival_jitter_ps(arrivals.tolist(),
                                                1_000_000)
        return abs(value - spec) <= 1e-9 * max(1.0, abs(spec))

    register_bench(Bench(
        name="packetpath.analysis.jitter.200k", make=make_jitter,
        group="packetpath", quick=True,
        meta={"samples": 200_000}, check=check_jitter))

    def make_warmup() -> Callable[[], Any]:
        rng = np.random.default_rng(9)
        series = np.concatenate([
            rng.normal(10.0, 1.0, 2_000) + np.linspace(5.0, 0.0, 2_000),
            rng.normal(10.0, 1.0, 18_000),
        ])

        def run() -> int:
            from repro.analysis.stats import truncate_warmup

            cut, __ = truncate_warmup(series)
            return cut

        return run

    def check_warmup(cut: Any) -> bool:
        from repro.analysis.reference import reference_truncate_warmup

        rng = np.random.default_rng(9)
        series = np.concatenate([
            rng.normal(10.0, 1.0, 2_000) + np.linspace(5.0, 0.0, 2_000),
            rng.normal(10.0, 1.0, 18_000),
        ])
        spec_cut, __ = reference_truncate_warmup(series)
        return cut == spec_cut

    register_bench(Bench(
        name="packetpath.analysis.warmup.20k", make=make_warmup,
        group="packetpath", quick=True,
        meta={"samples": 20_000}, check=check_warmup))


def _register_service_dispatch_benches() -> None:
    """Daemon dispatch overhead: 64 no-op jobs through the service.

    The pair isolates what each dispatch layer costs per job.
    ``.local`` submits to an in-process daemon that executes on its
    own pool (the ``--server`` path); ``.remote`` runs the same
    daemon with local execution off and one registered TCP worker,
    so every spec makes the full fleet round trip (lease → execute →
    upload → stream).  The entry point is a no-op, so nearly all
    measured time is protocol framing plus scheduling.  Both daemons
    run with the cache off — a cache hit would bypass the very
    dispatch path under measurement.
    """
    _JOBS = 64
    harness: Dict[str, Any] = {}

    def _noop_entry(config: Any) -> Any:
        from repro.experiments.base import ExperimentReport

        return ExperimentReport(
            experiment_id="esvc-dispatch", title="dispatch bench",
            data={"seed": config.seed})

    def _daemon(remote: bool) -> Any:
        import threading

        from repro import experiments
        from repro.service.daemon import ReproDaemon
        from repro.service.worker import ReproWorker

        experiments.ENTRY_POINTS.setdefault("esvc-dispatch",
                                            _noop_entry)
        key = "remote" if remote else "local"
        if key not in harness:
            daemon = ReproDaemon("127.0.0.1:0", jobs=1, quiet=True,
                                 local_execution=not remote)
            thread = threading.Thread(target=daemon.run, daemon=True)
            thread.start()
            if not daemon.wait_ready(10):
                raise RuntimeError("bench daemon never bound")
            if remote:
                worker = ReproWorker(daemon.bound_address, jobs=1,
                                     quiet=True)
                wthread = threading.Thread(target=worker.run,
                                           daemon=True)
                wthread.start()
                if not worker.wait_registered(10):
                    raise RuntimeError(
                        "bench worker never registered")
            harness[key] = daemon
        return harness[key]

    def _make(remote: bool) -> Callable[[], Callable[[], Any]]:
        def make() -> Callable[[], Any]:
            from repro.runner.spec import RunSpec
            from repro.service.client import execute_via_server

            daemon = _daemon(remote)
            specs = [RunSpec("esvc-dispatch", seed=seed)
                     for seed in range(_JOBS)]
            return lambda: execute_via_server(daemon.bound_address,
                                              specs)

        return make

    def check(outcomes: Any) -> bool:
        return (len(outcomes) == _JOBS
                and all(o.error is None and not o.cached
                        for o in outcomes)
                and [o.report.data["seed"] for o in outcomes]
                == list(range(_JOBS)))

    meta = {"jobs": _JOBS, "entry": "noop"}
    register_bench(Bench(
        name="service.dispatch.local.64jobs", make=_make(False),
        group="service", quick=True,
        meta={**meta, "path": "local"}, check=check))
    register_bench(Bench(
        name="service.dispatch.remote.64jobs", make=_make(True),
        group="service", quick=True,
        meta={**meta, "path": "remote", "workers": 1}, check=check))


def _register_all() -> None:
    _register_scheduler_benches()
    _register_engine_benches()
    _register_fabric_benches()
    _register_sweep_fabric_benches()
    _register_runner_benches()
    _register_sweep_e2e_benches()
    _register_packetpath_source_benches()
    _register_packetpath_e2e_benches()
    _register_packetpath_analysis_benches()
    _register_service_dispatch_benches()


_register_all()

__all__ = ["Bench", "register_bench", "get_bench", "iter_benches",
           "bench_names"]
