"""Command-line entry point: ``repro``.

Run paper experiments by id and inspect the registries::

    repro list                 # experiments + schedulers + presets
    repro run e1               # full-size experiment
    repro run e5 --quick       # reduced-size for smoke checks
    repro run all --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS
from repro.hwmodel.presets import TIMING_PRESETS
from repro.schedulers.registry import available_schedulers


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for exp_id in sorted(EXPERIMENTS):
        print(f"  {exp_id}")
    print("schedulers:")
    for name in available_schedulers():
        print(f"  {name}")
    print("timing presets:")
    for name in sorted(TIMING_PRESETS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment == "all":
        experiment_ids = sorted(EXPERIMENTS)
    else:
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; "
                  f"try: {', '.join(sorted(EXPERIMENTS))}",
                  file=sys.stderr)
            return 2
        experiment_ids = [args.experiment]
    for exp_id in experiment_ids:
        report = EXPERIMENTS[exp_id](quick=args.quick)
        print(report.render())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid EPS/OCS scheduling framework — paper "
                    "experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments, schedulers, presets"
                   ).set_defaults(func=_cmd_list)
    run = sub.add_parser("run", help="run an experiment (e1..e8 or all)")
    run.add_argument("experiment", help="experiment id, or 'all'")
    run.add_argument("--quick", action="store_true",
                     help="reduced problem sizes (CI/smoke)")
    run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
