"""Tests for TDMA / fixed-sequence schedulers."""

import numpy as np
import pytest

from repro.schedulers.base import ScheduleResult
from repro.schedulers.fixed import FixedSequence, RoundRobinTdma
from repro.schedulers.matching import Matching
from repro.sim.errors import SchedulingError


def _demand(n):
    demand = np.ones((n, n))
    np.fill_diagonal(demand, 0.0)
    return demand


class TestRoundRobinTdma:
    def test_rotates_through_all_nontrivial_shifts(self):
        tdma = RoundRobinTdma(4)
        shifts = []
        for __ in range(6):
            matching = tdma.compute(_demand(4)).first
            shifts.append(matching.output_for(0))
        # Shifts 1, 2, 3 then wrap.
        assert shifts == [1, 2, 3, 1, 2, 3]

    def test_matchings_are_full_permutations(self):
        tdma = RoundRobinTdma(5)
        for __ in range(4):
            assert tdma.compute(_demand(5)).first.is_full()

    def test_ignores_demand_content(self):
        tdma = RoundRobinTdma(4)
        first = tdma.compute(np.zeros((4, 4))).first
        assert first.size == 4

    def test_frame_mode_returns_whole_frame(self):
        tdma = RoundRobinTdma(4, slot_hold_ps=100, frame_mode=True)
        result = tdma.compute(_demand(4))
        assert len(result.matchings) == 3
        assert result.total_hold_ps == 300
        served = result.served_matrix()
        # A full TDMA frame serves every off-diagonal pair.
        assert served.sum() == 4 * 3

    def test_slot_hold_attached(self):
        tdma = RoundRobinTdma(4, slot_hold_ps=777)
        assert tdma.compute(_demand(4)).matchings[0][1] == 777

    def test_validates_demand_shape(self):
        tdma = RoundRobinTdma(4)
        with pytest.raises(SchedulingError):
            tdma.compute(np.zeros((3, 3)))

    def test_rejects_negative_demand(self):
        tdma = RoundRobinTdma(3)
        demand = _demand(3)
        demand[0, 1] = -5
        with pytest.raises(SchedulingError):
            tdma.compute(demand)

    def test_accepts_diagonal_demand(self):
        # Crossbar algorithms treat port i->i like any other pair; only
        # the rack framework guarantees a zero diagonal.
        tdma = RoundRobinTdma(3)
        demand = _demand(3)
        demand[1, 1] = 5
        assert tdma.compute(demand).first.is_full()


class TestFixedSequence:
    def test_cycles_through_sequence(self):
        seq = [Matching.cyclic_shift(3, 1), Matching.cyclic_shift(3, 2)]
        sched = FixedSequence(3, seq)
        outs = [sched.compute(_demand(3)).first.output_for(0)
                for __ in range(4)]
        assert outs == [1, 2, 1, 2]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            FixedSequence(3, [])

    def test_port_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FixedSequence(3, [Matching.empty(4)])


class TestScheduleResult:
    def test_first_on_empty_plan_raises(self):
        with pytest.raises(SchedulingError):
            ScheduleResult().first

    def test_served_matrix_on_empty_plan_raises(self):
        with pytest.raises(SchedulingError):
            ScheduleResult().served_matrix()
