"""Job execution: sequential or warm-worker parallel, same bits.

The executor runs a planned list of specs and returns one
:class:`RunOutcome` per spec, in spec order.  Three properties the rest
of the system leans on:

* **Bit-identity** — a job's report depends only on its spec.  Every
  RNG an experiment touches is seeded from the spec, and both paths
  reset the one piece of process-global state the simulator owns (the
  packet-id counter) before each job, so ``--jobs N`` output is
  byte-identical to ``--jobs 1`` regardless of which worker ran what.
* **Cache short-circuit** — with a :class:`ResultCache`, hits never
  reach a worker; a fully warm run executes zero experiments.
* **Order preservation** — outcomes line up with the input specs, so
  callers can zip plans with results regardless of completion order.

Parallel execution runs on the persistent warm-worker pool
(:mod:`repro.runner.pool`): workers spawn and import ``repro`` once per
process lifetime, jobs are dispatched in dynamically sized chunks, and
large reports return through shared memory.  A worker *crash* (process
death — distinct from an ordinary exception, which propagates as
before) is isolated to the poisonous job, surfaced as a failed outcome
carrying :attr:`RunOutcome.error`, and the remaining jobs still run;
the manifest renders the failing job id instead of the run hanging.

Replica batching (``replica_batch=True``) additionally groups specs
that differ only in their seed and runs each group through the
experiment's batch entry point
(``repro.experiments.BATCH_ENTRY_POINTS``), where the replica axis is
simulated in one set of vectorised operations
(:mod:`repro.fabric.replicas`).  Reports stay byte-identical to
per-spec execution; specs without a batch entry point fall back
transparently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.experiments.base import ExperimentReport
from repro.net.packet import reset_packet_ids
from repro.runner.cache import ResultCache
from repro.runner.governance import (
    FAIL_CRASH,
    FAIL_ERROR,
    GovernedFailure,
    ResourceLimits,
)
from repro.runner.pool import WorkerCrashError, get_pool
from repro.runner.spec import RunSpec

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class RunOutcome:
    """One executed (or cache-served, or failed) job."""

    spec: RunSpec
    report: ExperimentReport
    cached: bool
    elapsed_s: float  # wall time of this execution; 0.0 for cache hits
    #: Failure description when the job could not produce a report
    #: (worker crash after the isolation retry); ``None`` on success.
    #: Failed outcomes are never cached.
    error: Optional[str] = None
    #: Failure-taxonomy tag (``CRASH``/``TIMEOUT``/``OOM``/
    #: ``QUARANTINED``/``ERROR``) when ``error`` is set; ``None`` on
    #: success.  See :mod:`repro.runner.governance`.
    kind: Optional[str] = None


def _run_one(spec: RunSpec) -> Tuple[ExperimentReport, float]:
    """Execute a single spec in a fresh deterministic context.

    Dispatches on the job family: ``scenario:<name>`` specs resolve
    against the scenario registry, everything else against the
    experiment entry points.  Top-level so it pickles under the
    ``spawn`` start method.
    """
    reset_packet_ids()
    start = time.perf_counter()
    scenario_name = spec.scenario_name
    if scenario_name is not None:
        from repro.scenario import get_scenario, run_scenario

        report = run_scenario(get_scenario(scenario_name),
                              spec.to_config())
    else:
        from repro.experiments import ENTRY_POINTS

        report = ENTRY_POINTS[spec.experiment_id](spec.to_config())
    return report, time.perf_counter() - start


def _run_replica_group(
        specs: Sequence[RunSpec]) -> List[Tuple[ExperimentReport, float]]:
    """Execute a seed-only replica group through the batch entry point.

    Top-level for worker pickling.  The batch entry point guarantees
    reports byte-identical to running each spec alone; elapsed time is
    attributed evenly (the batch is one fused execution).
    """
    from repro.experiments import BATCH_ENTRY_POINTS

    run_batch = BATCH_ENTRY_POINTS.get(specs[0].experiment_id)
    if run_batch is None or len(specs) == 1:
        return [_run_one(spec) for spec in specs]
    reset_packet_ids()
    start = time.perf_counter()
    reports = run_batch([spec.to_config() for spec in specs])
    if len(reports) != len(specs):
        raise RuntimeError(
            f"batch entry point for {specs[0].experiment_id!r} returned "
            f"{len(reports)} reports for {len(specs)} configs")
    elapsed = (time.perf_counter() - start) / len(specs)
    return [(report, elapsed) for report in reports]


def map_jobs(fn: Callable[[T], R], items: Sequence[T],
             jobs: int = 1) -> List[R]:
    """Order-preserving map, optionally across warm worker processes.

    The generic primitive under :func:`execute`, also used directly by
    benchmark drivers (``benchmarks/bench_ablation.py``) to fan their
    per-knob runs out without changing result order.  ``fn`` must be a
    module-level callable when ``jobs > 1`` (task pickling).
    """
    return list(imap_jobs(fn, items, jobs=jobs))


def imap_jobs(fn: Callable[[T], R], items: Sequence[T],
              jobs: int = 1,
              limits: Optional[ResourceLimits] = None) -> Iterator[R]:
    """Like :func:`map_jobs`, but yields results as they arrive.

    Results come back in item order (workers may finish out of order;
    delivery is still ordered).  Streaming matters for failure
    behaviour: everything yielded before a job raises has already been
    consumed by the caller — e.g. stored in the result cache — rather
    than discarded with the batch.  With ``jobs > 1`` the work runs on
    the persistent warm pool (:func:`repro.runner.pool.get_pool`).

    With ``limits`` set, *every* item runs on the pool — even at
    ``jobs=1`` — because governance needs a killable worker process
    whose main thread can host the deadline alarm; deadline/memory
    overruns stream back as in-band ``GovernedFailure`` values.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    governed = limits is not None and limits.enabled
    if not governed and (jobs == 1 or len(items) <= 1):
        for item in items:
            yield fn(item)
        return
    yield from get_pool(max(1, jobs)).imap(fn, items, limit=jobs,
                                           limits=limits)


def _crash_outcome(spec: RunSpec, exc: WorkerCrashError) -> RunOutcome:
    """A failed outcome for a job whose worker died (not cacheable)."""
    message = f"{spec.key()}: {exc}"
    kind = getattr(exc, "kind", FAIL_CRASH) or FAIL_CRASH
    title = ("job failed — worker crashed" if kind == FAIL_CRASH
             else f"job failed — {kind.lower()}")
    report = ExperimentReport(
        experiment_id=spec.experiment_id,
        title=title,
        warnings=[message],
    )
    return RunOutcome(spec, report, cached=False, elapsed_s=0.0,
                      error=message, kind=kind)


def _governed_outcome(spec: RunSpec,
                      failure: GovernedFailure) -> RunOutcome:
    """A typed failed outcome for a limit trip (not cacheable)."""
    message = f"{spec.key()}: {failure.message}"
    report = ExperimentReport(
        experiment_id=spec.experiment_id,
        title=f"job failed — {failure.kind.lower()}",
        warnings=[message],
    )
    return RunOutcome(spec, report, cached=False, elapsed_s=0.0,
                      error=message, kind=failure.kind)


def _group_for_batch(specs: Sequence[RunSpec],
                     indices: Sequence[int]) -> List[List[int]]:
    """Partition pending spec indices into batchable replica groups.

    A group is a maximal set of specs identical except for ``seed``
    (and with a real seed), over an experiment that publishes a batch
    entry point.  Everything else stays a singleton.  Groups preserve
    first-appearance order, so outputs remain deterministic.
    """
    from repro.experiments import BATCH_ENTRY_POINTS
    from repro.runner.spec import canonical_json

    groups: Dict[str, List[int]] = {}
    order: List[str] = []
    for index in indices:
        spec = specs[index]
        if (spec.seed is None
                or spec.experiment_id not in BATCH_ENTRY_POINTS):
            key = f"solo:{index}"
        else:
            canonical = spec.canonical()
            canonical["seed"] = None
            key = f"group:{canonical_json(canonical)}"
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    return [groups[key] for key in order]


#: Flow-control constant shared by the sweep daemon's dispatch
#: scheduler and remote workers: an executor may hold this many times
#: its parallel width in leased-but-unsettled specs — one batch
#: running, one queued behind it, so a fast executor never idles
#: between leases while a slow one cannot hoard the queue.
CREDIT_FACTOR = 2


def credit_window(jobs: int) -> int:
    """Max specs an executor of parallel width ``jobs`` may hold."""
    return CREDIT_FACTOR * max(1, jobs)


class JobRunner:
    """The execution seam: one warm pool + cache serving many batches.

    A ``JobRunner`` binds the three execution knobs (``jobs``,
    ``cache``, ``replica_batch``) once and then runs successive spec
    batches through them.  Two job sources share it:

    * a **local sweep** — the CLI plans one batch and calls
      :meth:`run` once (this is what :func:`execute` wraps);
    * the **daemon queue** — ``repro serve`` holds one runner for its
      whole lifetime and feeds it batch after batch as submissions
      arrive, so every client shares the same warm workers and the
      same content-addressed cache.

    The warm pool admits one result stream at a time; the runner's
    lock enforces that at this seam, so concurrent callers serialise
    instead of tripping the pool's internal guard.  :meth:`warm`
    pre-spawns the workers (and pre-imports the heavy entry-point
    modules) so a long-lived service pays the startup cost at boot,
    not on the first submission — and, crucially for ``fork`` safety,
    from the main thread before any server threads exist.
    """

    def __init__(self, *, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 replica_batch: bool = False,
                 limits: Optional[ResourceLimits] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.replica_batch = replica_batch
        self.limits = limits
        import threading

        self._lock = threading.Lock()

    @property
    def lease_size(self) -> int:
        """Specs per dispatch batch when this runner shares a queue
        with other executors (one full-width :func:`execute` call)."""
        return max(1, self.jobs)

    @property
    def credit_window(self) -> int:
        """Max specs a scheduler should hand this runner at once."""
        return credit_window(self.jobs)

    def warm(self) -> None:
        """Spawn the worker fleet (and import entry points) eagerly.

        Governed runners fork the pool even at ``jobs=1``: enforcement
        lives in worker processes, and forking must happen from the
        main thread before a long-lived service starts its threads.
        """
        if self.jobs > 1 or (self.limits is not None
                             and self.limits.enabled):
            get_pool(max(1, self.jobs))
        else:
            import repro.experiments  # noqa: F401
            import repro.scenario  # noqa: F401

    def run(self, specs: Sequence[RunSpec],
            on_outcome: Optional[Callable[[RunOutcome], None]] = None,
            ) -> List[RunOutcome]:
        """One batch through the bound pool/cache (see :func:`execute`)."""
        with self._lock:
            return execute(specs, jobs=self.jobs, cache=self.cache,
                           on_outcome=on_outcome,
                           replica_batch=self.replica_batch,
                           limits=self.limits)


def execute(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    on_outcome: Optional[Callable[[RunOutcome], None]] = None,
    replica_batch: bool = False,
    limits: Optional[ResourceLimits] = None,
) -> List[RunOutcome]:
    """Run every spec; outcomes are returned in spec order.

    ``on_outcome`` fires once per job as results settle (cache hits
    first, then executed jobs in plan order as they stream back) —
    for progress lines, not ordering.  Executed reports are stored to
    the cache as they arrive, so a job failing late in a long run
    never discards the completed work before it.  ``replica_batch``
    fuses seed-only replica groups through experiment batch entry
    points (byte-identical reports, one fused execution per group).
    ``limits`` puts every job under resource governance
    (:mod:`repro.runner.governance`): a deadline or memory overrun
    fails that one job with a typed ``TIMEOUT``/``OOM`` outcome while
    the rest of the batch completes untouched.
    """
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        report = cache.load(spec) if cache is not None else None
        if report is not None:
            outcomes[index] = RunOutcome(spec, report, cached=True,
                                         elapsed_s=0.0)
            if on_outcome:
                on_outcome(outcomes[index])
        else:
            pending.append(index)

    def settle(index: int, report: ExperimentReport,
               elapsed: float) -> None:
        outcome = RunOutcome(specs[index], report, cached=False,
                             elapsed_s=elapsed)
        if cache is not None:
            cache.store(outcome.spec, outcome.report)
        outcomes[index] = outcome
        if on_outcome:
            on_outcome(outcome)

    if replica_batch:
        remaining_groups = _group_for_batch(specs, pending)
        while remaining_groups:
            stream = imap_jobs(
                _run_replica_group,
                [tuple(specs[i] for i in group)
                 for group in remaining_groups],
                jobs=jobs, limits=limits)
            try:
                for group, group_results in zip(remaining_groups,
                                                stream):
                    if isinstance(group_results, GovernedFailure):
                        # The whole fused group tripped a limit: each
                        # member fails typed, remaining groups run.
                        for failed in group:
                            outcomes[failed] = _governed_outcome(
                                specs[failed], group_results)
                            if on_outcome:
                                on_outcome(outcomes[failed])
                        continue
                    for index, (report, elapsed) in zip(group,
                                                        group_results):
                        settle(index, report, elapsed)
            except WorkerCrashError as exc:
                # Same isolation contract as the per-spec path: every
                # spec of the crashed group fails visibly, the other
                # groups still run.
                for failed in remaining_groups[exc.item_index]:
                    outcomes[failed] = _crash_outcome(specs[failed],
                                                      exc)
                    if on_outcome:
                        on_outcome(outcomes[failed])
                remaining_groups = \
                    remaining_groups[exc.item_index + 1:]
                continue
            break
        return list(outcomes)  # type: ignore[arg-type]

    remaining = pending
    while remaining:
        stream = imap_jobs(_run_one, [specs[i] for i in remaining],
                           jobs=jobs, limits=limits)
        try:
            for index, value in zip(remaining, stream):
                if isinstance(value, GovernedFailure):
                    outcomes[index] = _governed_outcome(specs[index],
                                                        value)
                    if on_outcome:
                        on_outcome(outcomes[index])
                    continue
                report, elapsed = value
                settle(index, report, elapsed)
        except WorkerCrashError as exc:
            # The poisonous job is isolated; fail it visibly (the
            # manifest shows the job id) and keep going with the rest.
            failed = remaining[exc.item_index]
            outcomes[failed] = _crash_outcome(specs[failed], exc)
            if on_outcome:
                on_outcome(outcomes[failed])
            remaining = remaining[exc.item_index + 1:]
            continue
        break
    return list(outcomes)  # type: ignore[arg-type]


__all__ = ["RunOutcome", "JobRunner", "execute", "map_jobs",
           "imap_jobs", "WorkerCrashError", "CREDIT_FACTOR",
           "credit_window"]
