"""Eclipse-style scheduling: jointly choose matchings *and* durations.

Solstice peels power-of-two slices; Eclipse (Bojja Venkatakrishnan et
al., 2016) improves on it by treating circuit scheduling as coverage
maximisation: each step greedily picks the (matching, duration) pair
with the best **useful-bytes per unit of occupied time**, where
occupied time includes the reconfiguration blackout ``delta``:

    value(M, tau) = sum_{(i,j) in M} min(D[i,j], rate * tau)
                    -----------------------------------------
                              tau + delta

For a fixed duration ``tau`` the numerator is maximised by a
maximum-weight matching on the capped demand ``min(D, rate * tau)`` —
so each greedy step solves one MWM per candidate duration and keeps the
best.  Candidate durations are the distinct service times of the
remaining demand entries (clipped to a candidate budget), which is
where the optimum must lie: increasing ``tau`` beyond the largest
matched entry only adds dead air.

The greedy stops when either ``max_matchings`` is reached or the next
step's value drops below ``min_value_fraction`` of the first step's —
the knee where circuits stop paying for their blackouts.  Everything
unserved goes to the EPS residue.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching
from repro.sim.errors import SchedulingError
from repro.sim.time import GIGABIT, SECONDS


class EclipseScheduler(Scheduler):
    """Greedy joint (matching, duration) coverage scheduler.

    Parameters
    ----------
    n_ports:
        Port count.
    link_rate_bps:
        Circuit rate (converts bytes to service time).
    reconfig_ps:
        The blackout ``delta`` each additional matching costs.
    max_matchings:
        Hard cap on schedule length (Eclipse's k).
    max_candidate_durations:
        Candidate taus evaluated per greedy step (largest distinct
        entry-service-times of the remaining demand).
    min_value_fraction:
        Stop when a step's value falls below this fraction of the first
        step's value.
    """

    name = "eclipse"

    def __init__(self, n_ports: int, link_rate_bps: float = 10 * GIGABIT,
                 reconfig_ps: int = 0, max_matchings: int = 8,
                 max_candidate_durations: int = 6,
                 min_value_fraction: float = 0.05) -> None:
        super().__init__(n_ports)
        if link_rate_bps <= 0:
            raise SchedulingError("link rate must be positive")
        if max_matchings < 1:
            raise SchedulingError("max_matchings must be >= 1")
        if max_candidate_durations < 1:
            raise SchedulingError("need >= 1 candidate duration")
        if not 0.0 <= min_value_fraction < 1.0:
            raise SchedulingError(
                "min_value_fraction must be in [0, 1)")
        self.link_rate_bps = link_rate_bps
        self.reconfig_ps = reconfig_ps
        self.max_matchings = max_matchings
        self.max_candidate_durations = max_candidate_durations
        self.min_value_fraction = min_value_fraction

    # -- unit helpers -----------------------------------------------------------

    def _bytes_to_ps(self, nbytes: float) -> float:
        return nbytes * 8 * SECONDS / self.link_rate_bps

    def _ps_to_bytes(self, ps: float) -> float:
        return ps * self.link_rate_bps / (8 * SECONDS)

    # -- one greedy step ----------------------------------------------------------

    def _best_step(self, remaining: np.ndarray
                   ) -> Optional[Tuple[Matching, int, float]]:
        """Best (matching, hold_ps, value) for the current residue.

        The MWM solve per candidate duration stays in scipy; the pair
        filter is a mask over the assignment vectors and the served
        total is summed in the same left-to-right order as the scalar
        original (``repro.schedulers.reference``), so the greedy's
        tie-breaks — and therefore the whole plan — are bit-identical.
        """
        positive = remaining[remaining > 0]
        if positive.size == 0:
            return None
        service_ps = np.unique(
            np.ceil(self._bytes_to_ps(positive)).astype(np.int64))
        candidates = service_ps[-self.max_candidate_durations:]
        best: Optional[Tuple[Matching, int, float]] = None
        for tau in candidates.tolist():
            tau = max(1, int(tau))
            capped = np.minimum(remaining, self._ps_to_bytes(tau))
            rows, cols = linear_sum_assignment(-capped)
            real = remaining[rows, cols] > 0
            if not real.any():
                continue
            real_rows = rows[real]
            real_cols = cols[real]
            # Sequential Python sum, not np.sum: pairwise summation
            # rounds differently and could flip equal-value greedy
            # tie-breaks away from the reference implementation.
            served = sum(capped[real_rows, real_cols].tolist())
            value = served / (tau + self.reconfig_ps)
            if best is None or value > best[2]:
                out_of = np.full(self.n_ports, -1, dtype=np.int64)
                out_of[real_rows] = real_cols
                best = (Matching.from_output_array(out_of), tau, value)
        return best

    # -- Scheduler --------------------------------------------------------------------

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        return self._schedule(self._check_demand(demand))

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        """Validation-free entry; see the base-class contract."""
        return self._schedule(np.asarray(demand, dtype=np.float64))

    def _schedule(self, demand: np.ndarray) -> ScheduleResult:
        remaining = demand.copy()
        plan: List[Tuple[Matching, int]] = []
        first_value: Optional[float] = None
        steps = 0
        while len(plan) < self.max_matchings:
            step = self._best_step(remaining)
            if step is None:
                break
            matching, tau, value = step
            if first_value is None:
                first_value = value
            elif value < self.min_value_fraction * first_value:
                break
            steps += 1
            plan.append((matching, tau))
            cap = self._ps_to_bytes(tau)
            matched = matching.as_array()
            src = np.nonzero(matched >= 0)[0]
            dst = matched[src]
            vals = remaining[src, dst]
            remaining[src, dst] = np.maximum(
                0.0, vals - np.minimum(vals, cap))
        if not plan:
            plan = [(Matching.empty(self.n_ports), 0)]
        self.last_stats = {
            "iterations": steps * self.max_candidate_durations,
            "matchings": len(plan),
        }
        return ScheduleResult(matchings=plan, eps_residue=remaining)


__all__ = ["EclipseScheduler"]
