#!/usr/bin/env python3
"""A realistic rack: elephants on circuits, mice on the EPS, VOIP safe.

The workload the paper's introduction motivates: long bursts (elephant
flows) that belong on the optical circuit switch, short flows that the
electrical switch should carry, and a latency-sensitive VOIP stream
whose jitter must survive the mix.  Compares a c-Through-style hotspot
scheduler with a Solstice-style multi-matching scheduler.

The whole workload is the library scenario ``datacenter-mix`` (see
``repro.scenario.library``); the scheduler comparison is two
derivations of one spec rather than two hand-wired rebuilds.

    python examples/datacenter_workload.py
"""

from repro.scenario import get_scenario
from repro.sim.time import MICROSECONDS, format_time


def build_and_run(scheduler: str, scheduler_kwargs: dict) -> None:
    scenario = get_scenario("datacenter-mix").derive(
        scheduler=scheduler, scheduler_kwargs=scheduler_kwargs)
    run = scenario.build()
    # The VOIP stream is the scenario's first phase (CBR on host 0).
    voip = run.phase_sources(0)[0].source
    result = run.run()

    voip_summary = result.latency(priority=1)
    jitter = result.flow_jitter_ps(voip.flow_id, 200 * MICROSECONDS)
    print(f"-- scheduler: {scheduler} --")
    print(f"  utilisation      : {result.utilisation():.3f}")
    print(f"  OCS byte share   : {result.ocs_fraction:.1%} "
          f"(elephants on circuits)")
    print(f"  reconfigurations : {result.ocs_reconfigurations} "
          f"({format_time(result.ocs_blackout_ps)} dark)")
    print(f"  VOIP p99 latency : "
          f"{format_time(round(voip_summary.p99_ps))}")
    print(f"  VOIP jitter      : {format_time(round(jitter))}")
    print(f"  drops            : {result.total_drops}")


def main() -> None:
    build_and_run("hotspot", {"threshold_bytes": 50_000.0})
    build_and_run("solstice", {
        "reconfig_ps": 20 * MICROSECONDS,
        "min_slice_factor": 2.0,
        "max_matchings": 4,
    })


if __name__ == "__main__":
    main()
