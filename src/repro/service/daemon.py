"""The always-on sweep daemon behind ``repro serve``.

One daemon process owns the two things worth keeping warm between
sweeps: the :class:`~repro.runner.cache.ResultCache` and the
warm-worker pool (via the :class:`~repro.runner.executor.JobRunner`
seam).  Clients connect over a local socket, speak the length-prefixed
JSON protocol of :mod:`repro.service.protocol`, and submit batches of
:class:`~repro.runner.spec.RunSpec` payloads; the daemon streams back
one ``result`` frame per spec as jobs finish, in whatever order they
settle (each frame carries the spec's index in its submission, so
clients reassemble plan order trivially).

What the daemon adds over ``repro run --jobs N``:

* **Zero startup on the client side** — interpreter boot, ``import
  repro`` and worker spawn were paid once, at ``repro serve`` time.
* **One shared cache** — every client's results land in (and are
  served from) the same content-addressed store, so a sweep one user
  ran this morning is a pure cache read for everyone else all day.
* **Cross-client dedup** — submissions are coalesced *in flight*:
  a spec already queued or executing is never queued twice, it just
  gains a subscriber, and the single result is fanned out to every
  subscriber when it settles.  Two clients racing the same sweep cost
  one execution.
* **Resumability** — a client that dies mid-sweep loses nothing:
  completed jobs are in the shared cache, so a resubmission streams
  them back as instant hits and only genuinely unfinished work runs.
* **Backpressure** — per-session watermarks stop reading from clients
  with too much outstanding work (see :mod:`repro.service.session`),
  bounding daemon memory under firehose submission.
* **Graceful drain** — SIGTERM (or a ``shutdown`` frame) stops
  accepting work, finishes and streams everything in flight, sends
  ``bye`` to connected clients and exits 0.
* **A worker fleet** — remote nodes (``repro worker --connect``,
  :mod:`repro.service.worker`) register into the pool over the same
  socket protocol.  The execution loop is a lease scheduler: queued
  specs are leased to whichever executor (the local ``JobRunner`` or
  a registered worker) has free credits, bounded per worker by a
  credit window of ``CREDIT_FACTOR × jobs`` — work stealing falls out,
  because a fast worker frees credits sooner and keeps winning leases.
  Results upload as canonical report payloads into the one shared
  cache, so server-vs-direct byte-identity holds with N remote nodes.
* **Fleet fault tolerance** — workers heartbeat; a worker whose
  connection drops (or whose heartbeats stop for longer than the
  lease timeout — the partition case, reaped by a periodic sweep) is
  expelled and its in-flight leases are requeued at the front of the
  queue for another executor.  The submitting client never sees a
  gap, only a result that took one re-execution longer.
* **Reconnect-without-requeue** — workers carry a stable identity
  (``uid`` in the register frame).  A dropped *connection* parks the
  worker's leases instead of requeueing them; the same uid
  re-registering within the lease timeout reclaims them, so a network
  flap costs zero re-executions.  The reaper distinguishes "flapping"
  (parked, awaiting reconnect) from "gone" (deadline passed → leases
  requeued as before).
* **Crash recovery** — with a cache directory, every accepted spec is
  written to a write-ahead journal (:mod:`repro.service.journal`)
  before it is queued, and retired when it settles.  A SIGKILLed
  daemon restarted with ``--resume`` (the default) replays the
  journal: unsettled specs re-enter the queue, warm ones settle
  straight from the cache, and reconnecting clients resubmit into
  coalescence — zero client-visible loss, byte-identical manifests.
* **Fleet cache transport** — workers interrogate the hub's cache
  before executing (``cache-lookup``: the daemon settles warm keys
  itself and the worker runs only the cold remainder) and ship
  results hub-ward as canonical payloads (``upload``/``cache-push``),
  so a worker joining mid-campaign benefits from the fleet's whole
  history and a flapped worker's finished work is never re-run.
* **Hub failover** — a standby daemon (``repro serve --standby
  --follow ADDR``, :mod:`repro.service.standby`) connects as a
  ``peer`` and receives a snapshot of the journal state plus every
  later append (``journal-sync``), digest-verified, mirrored into its
  own journal.  When the primary dies the standby promotes itself —
  a journal replay identical to ``--resume`` — and multi-address
  clients/workers rotate onto it; ``promotions`` in its stats records
  the takeover.
* **Resource governance** — optional per-job deadlines and memory
  ceilings (``--job-timeout``/``--job-memory-mb``) bound local
  execution; a spec that fails the same way twice is **quarantined**
  (journaled, reported once, never re-leased) so retry storms cannot
  livelock the scheduler; admission control sheds submits past
  ``--max-queue`` with a ``busy`` frame clients back off on; and a
  nearly-full cache volume turns new work away with a typed
  ``cache-full`` refusal instead of corrupting the journal.

Local execution is delegated batch-by-batch to the ``JobRunner`` in
a worker thread; the asyncio side never blocks on simulation work.
Dedup, fan-out and lease state live entirely on the event loop
thread — results cross back in via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import itertools
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.runner.cache import (
    ResultCache,
    free_disk_bytes,
    report_from_payload,
    report_to_payload,
)
from repro.runner.executor import JobRunner, RunOutcome, credit_window
from repro.runner.governance import (
    FAIL_ERROR,
    FAIL_QUARANTINED,
    ResourceLimits,
)
from repro.runner.spec import RunSpec
from repro.service.journal import ServiceJournal, journal_path
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_frame,
    parse_address,
    read_frame_async,
    sync_digest,
    write_frame_async,
)
from repro.service.session import Session, Submission
from repro.sim.errors import ConfigurationError


@dataclass
class DaemonStats:
    """Daemon-lifetime counters (the ``stats`` frame's payload)."""

    submitted: int = 0      # spec payloads accepted across all SUBMITs
    executed: int = 0       # jobs that actually ran (any executor)
    cache_hits: int = 0     # jobs answered straight from the cache
    coalesced: int = 0      # subscriptions merged onto an in-flight job
    failed: int = 0         # jobs surfacing a worker-crash error
    dropped: int = 0        # queued jobs abandoned by all subscribers
    results_streamed: int = 0
    sessions_opened: int = 0
    protocol_errors: int = 0
    remote_executed: int = 0       # of `executed`, ran on a remote worker
    remote_failed: int = 0         # of `failed`, failed on a remote worker
    workers_registered: int = 0    # register handshakes accepted, ever
    workers_lost: int = 0          # workers expelled dirty (leases/timeout)
    leases_reassigned: int = 0     # specs requeued off a lost worker
    workers_flapped: int = 0       # connections lost with leases parked
    workers_reconnected: int = 0   # re-registers that reclaimed a parked id
    leases_reclaimed: int = 0      # leases handed back on reconnect
    cache_lookup_hits: int = 0     # leased keys settled via cache-lookup
    cache_lookup_misses: int = 0   # leased keys a lookup found cold
    remote_cache_hits: int = 0     # uploads served from a worker's cache
    cache_pushes: int = 0          # out-of-lease results shipped hub-ward
    recovered_jobs: int = 0        # specs re-queued from the journal
    quarantined: int = 0           # poison specs locked out (failed same way twice)
    quarantine_hits: int = 0       # submits answered by a quarantine verdict
    busy_rejections: int = 0       # submits shed by admission control
    disk_refusals: int = 0         # submits refused: cache volume nearly full
    promotions: int = 0            # 1 when this hub rose from a standby
    peers_connected: int = 0       # standby peer handshakes accepted, ever
    sync_records_relayed: int = 0  # journal records relayed to peers

    def payload(self) -> Dict[str, Any]:
        return dict(vars(self))


@dataclass
class _Job:
    """One unique spec somewhere between SUBMIT and its result."""

    spec: RunSpec
    key: str
    #: (submission, index-within-submission) fan-out targets.
    subscribers: List[Tuple[Submission, int]] = field(
        default_factory=list)
    started: bool = False
    #: Replayed from the journal after a crash: owed to a client that
    #: has not (yet) reconnected, so it must run even with zero
    #: subscribers instead of being dropped as abandoned.
    recovered: bool = False


@dataclass
class WorkerState:
    """One registered remote worker, daemon side.

    ``leased`` maps spec keys to the in-flight :class:`_Job` records
    this worker currently owes results for; its length against the
    credit window is the whole flow-control state.
    """

    id: int
    session: Session
    name: str
    address: str
    jobs: int
    replica_batch: bool
    version: str
    registered_at: float
    last_seen: float
    #: Stable identity from the register frame; ``None`` for legacy
    #: workers, which get per-connection identity and no flap parking.
    uid: Optional[str] = None
    #: monotonic deadline while parked in ``_flapping``; 0 when live.
    flap_deadline: float = 0.0
    #: Worker-requested heartbeat override (``--heartbeat``); 0 means
    #: "derive from the lease timeout" (the pre-override behaviour).
    heartbeat_s: float = 0.0
    leased: Dict[str, _Job] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0

    @property
    def credit_window(self) -> int:
        return credit_window(self.jobs)

    @property
    def free_credits(self) -> int:
        return self.credit_window - len(self.leased)

    def stats_row(self, now: float,
                  status: str = "up") -> Dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "uid": self.uid,
            "status": status,
            "address": self.address,
            "jobs": self.jobs,
            "replica_batch": self.replica_batch,
            "version": self.version,
            "leased": len(self.leased),
            "completed": self.completed,
            "failed": self.failed,
            "heartbeat_age_s": round(max(0.0, now - self.last_seen), 3),
        }


@dataclass
class PeerState:
    """One connected standby hub, primary side.

    Peers are read-mostly: after the ``peer-welcome`` snapshot they
    just receive every journal append (``journal-sync``) plus a
    reaper-paced ``sync-ping`` that keeps their read timeout fed, so
    a silent primary reads as a dead primary.
    """

    session: Session
    name: str
    address: str
    registered_at: float
    synced: int = 0


class ReproDaemon:
    """``repro serve``: accept sweep jobs over a socket, forever.

    ``address`` is anything :func:`repro.service.protocol.parse_address`
    accepts (a unix-socket path or ``host:port``).  Construct, then
    either :meth:`run` on the main thread (the CLI path — installs
    SIGTERM/SIGINT drain handlers) or hand :meth:`run` to a background
    thread (tests — use :meth:`wait_ready` / :meth:`request_shutdown`).
    """

    def __init__(self, address: str, *, jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 replica_batch: bool = False,
                 high_watermark: int = 1024,
                 low_watermark: int = 512,
                 max_submit: int = 4096,
                 lease_timeout_s: float = 30.0,
                 local_execution: bool = True,
                 resume: bool = True,
                 limits: Optional[ResourceLimits] = None,
                 max_queue: int = 4096,
                 busy_retry_s: float = 1.0,
                 min_free_mb: int = 64,
                 promoted: bool = False,
                 quiet: bool = False) -> None:
        self.address = address
        self._kind, self._target = parse_address(address)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self._runner = JobRunner(jobs=jobs, cache=self.cache,
                                 replica_batch=replica_batch,
                                 limits=limits)
        self.stats = DaemonStats()
        self.high_watermark = high_watermark
        self.low_watermark = min(low_watermark, high_watermark)
        self.max_submit = max_submit
        if lease_timeout_s <= 0:
            raise ValueError(
                f"lease_timeout_s must be > 0, got {lease_timeout_s}")
        self.lease_timeout_s = lease_timeout_s
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if busy_retry_s <= 0:
            raise ValueError(
                f"busy_retry_s must be > 0, got {busy_retry_s}")
        if min_free_mb < 0:
            raise ValueError(
                f"min_free_mb must be >= 0, got {min_free_mb}")
        self.limits = limits
        self.max_queue = max_queue
        self.busy_retry_s = busy_retry_s
        self.min_free_mb = min_free_mb
        self.local_execution = local_execution
        self.resume = resume
        self.quiet = quiet
        #: Write-ahead journal; opened in serve() when a cache dir
        #: exists (durability is keyed to the same root the results
        #: land in — no cache, nothing worth replaying into).
        self._journal: Optional[ServiceJournal] = None
        self._started = time.monotonic()
        # Event-loop-side state, created inside serve().
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._jobs: Dict[str, _Job] = {}
        self._queue: Deque[_Job] = collections.deque()
        self._wake: Optional[asyncio.Event] = None
        self._sessions: Dict[int, Session] = {}
        self._outboxes: Dict[int, asyncio.Queue] = {}
        self._writer_tasks: Dict[int, asyncio.Task] = {}
        #: registered workers, keyed by their session id.
        self._workers: Dict[int, WorkerState] = {}
        #: connected standby hubs, keyed by their session id.
        self._peers: Dict[int, PeerState] = {}
        self._sync_seq = 0
        #: disconnected-but-not-dead workers, keyed by uid, leases
        #: parked until reconnect or flap deadline.
        self._flapping: Dict[str, WorkerState] = {}
        self._worker_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)
        #: Poison-job quarantine: key -> {"kind", "error"}.  Specs in
        #: here are never queued or leased again; submits against them
        #: settle immediately with a QUARANTINED verdict.
        self._quarantined: Dict[str, Dict[str, str]] = {}
        #: key -> {kind: consecutive-failure count}; two failures of
        #: the same kind quarantine the key, a success clears it.
        self._failures: Dict[str, Dict[str, int]] = {}
        self._local_busy = False
        self._local_task: Optional[asyncio.Task] = None
        self._draining = False
        self._ready = threading.Event()
        self._exit_requested = False
        if promoted:
            self.stats.promotions = 1

    # -- lifecycle -----------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro-serve] {message}", file=sys.stderr,
                  flush=True)

    def run(self) -> int:
        """Blocking entry point; returns the process exit code."""
        self._runner.warm()  # fork workers before any server threads
        try:
            asyncio.run(self.serve())
        except KeyboardInterrupt:  # pragma: no cover — belt and braces
            return 130
        return 0

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until the daemon is listening (thread-mode tests)."""
        return self._ready.wait(timeout)

    @property
    def bound_address(self) -> str:
        """The concrete address clients should dial (after binding,
        a TCP ``:0`` request reflects the kernel-assigned port)."""
        if self._kind == "unix":
            return str(self._target)
        host, port = self._target
        return f"{host}:{port}"

    def request_shutdown(self) -> None:
        """Thread-safe graceful-drain request (SIGTERM equivalent)."""
        loop = self._loop
        if loop is not None:
            with contextlib.suppress(RuntimeError):  # already stopped
                loop.call_soon_threadsafe(self.initiate_shutdown)

    def initiate_shutdown(self) -> None:
        """Begin the graceful drain (event-loop thread only)."""
        if not self._draining:
            self.log("shutdown requested — draining in-flight work")
        self._draining = True
        if self._wake is not None:
            self._wake.set()

    async def serve(self) -> None:
        """Listen, execute, drain; returns after a graceful shutdown."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._open_journal()
        if self._kind == "unix":
            # A leftover socket file from a crashed daemon blocks
            # bind(); nothing else can legitimately own the path.
            with contextlib.suppress(OSError):
                os.unlink(self._target)
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self._target)
        else:
            host, port = self._target
            server = await asyncio.start_server(
                self._handle_connection, host=host, port=port)
            self._target = server.sockets[0].getsockname()[:2]
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError,
                                     ValueError):
                self._loop.add_signal_handler(signum,
                                              self.initiate_shutdown)
        self.log(f"listening on {self.address} "
                 f"(jobs={self._runner.jobs}, "
                 f"cache={'on' if self.cache is not None else 'off'})")
        # One machine-parseable readiness line on stdout: supervisors
        # and CI wait for this instead of scraping stderr heuristics.
        print(json.dumps(self.ready_banner(), sort_keys=True),
              flush=True)
        self._ready.set()
        drained_clean = False
        try:
            await self._execution_loop()
            drained_clean = True
        finally:
            self._ready.clear()
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
            await self._farewell()
            if self._journal is not None:
                if drained_clean:
                    self._journal.record_drained()
                self._journal.close()
            if self._kind == "unix":
                with contextlib.suppress(OSError):
                    os.unlink(self._target)
            self.log("drained and stopped")

    def ready_banner(self) -> Dict[str, Any]:
        """The startup banner payload (printed as one stdout line)."""
        return {
            "event": "serve-ready",
            "address": self.bound_address,
            "pid": os.getpid(),
            "jobs": self._runner.jobs,
            "cache": str(self.cache.root) if self.cache is not None
            else None,
            "local_execution": self.local_execution,
            "lease_timeout_s": self.lease_timeout_s,
            "max_queue": self.max_queue,
            "governed": self.limits is not None and self.limits.enabled,
            "resume": self.resume,
            "recovered_jobs": self.stats.recovered_jobs,
            "quarantined_keys": len(self._quarantined),
            "promotions": self.stats.promotions,
            "version": PROTOCOL_VERSION,
        }

    def _open_journal(self) -> None:
        """Open the WAL and (by default) replay the previous life's debt."""
        if self.cache is None:
            return
        if self.resume:
            self._journal, debt = ServiceJournal.recover(self.cache.root)
            if self._journal.quarantined:
                self._quarantined.update(self._journal.quarantined)
                self.log(f"journal replay: {len(self._quarantined)} "
                         f"quarantined spec(s) stay locked out")
            self._recover_jobs(debt)
        else:
            self._journal = ServiceJournal(journal_path(self.cache.root))
            self._journal.compact({})  # explicitly forget the past
        self._journal.on_append = self._relay_journal

    def _recover_jobs(self, debt: Dict[str, dict]) -> None:
        """Re-queue every journaled spec the last daemon still owed.

        Warm specs settle from the cache on the first dispatch pass;
        cold ones re-execute.  Either way, a client reconnecting with
        a resubmit coalesces onto these jobs instead of starting over.
        """
        recovered = 0
        for key, payload in debt.items():
            try:
                spec = RunSpec.from_canonical(payload).validate()
            except (ConfigurationError, KeyError, TypeError,
                    AttributeError):
                continue  # a journal tear or a stale spec format
            if spec.key() != key or key in self._jobs:
                continue
            job = _Job(spec=spec, key=key, recovered=True)
            self._jobs[key] = job
            self._queue.append(job)
            recovered += 1
        if recovered:
            self.stats.recovered_jobs += recovered
            self.log(f"journal replay: recovered {recovered} "
                     f"unsettled job(s) from the previous daemon")
            assert self._wake is not None
            self._wake.set()

    async def _farewell(self) -> None:
        """``bye`` every connected client, then close their writers."""
        for session in list(self._sessions.values()):
            self._post(session, {"type": "bye"})
        for sid, outbox in list(self._outboxes.items()):
            outbox.put_nowait(None)
        for task in list(self._writer_tasks.values()):
            with contextlib.suppress(Exception):
                await asyncio.wait_for(task, timeout=2.0)

    # -- lease scheduler -----------------------------------------------------

    async def _execution_loop(self) -> None:
        """The scheduler: lease queued specs to whoever has credits.

        Every state change that could create dispatch opportunity —
        a submit, a freed credit, a finished local batch, a lost
        worker, a drain request — sets ``_wake``; each wake runs one
        :meth:`_dispatch` pass and then checks the drain condition.
        """
        assert self._wake is not None
        reaper = asyncio.ensure_future(self._reaper_loop())
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                self._dispatch()
                if self._draining:
                    self._fail_stranded()
                    if (not self._queue
                            and not self._local_busy
                            and not any(worker.leased
                                        for worker
                                        in self._workers.values())
                            and not any(worker.leased
                                        for worker
                                        in self._flapping.values())):
                        return
        finally:
            reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await reaper

    async def _reaper_loop(self) -> None:
        """Expel workers whose heartbeats stopped (the partition
        case — a SIGKILLed worker is caught faster, by its EOF) and
        flapped workers whose reconnect window closed (the "gone"
        verdict on what looked like a flap)."""
        interval = max(0.05, self.lease_timeout_s / 4.0)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for session_id in list(self._workers):
                worker = self._workers[session_id]
                age = now - worker.last_seen
                if age > self.lease_timeout_s:
                    self._expel_worker(
                        session_id,
                        f"no heartbeat for {age:.1f}s "
                        f"(lease timeout {self.lease_timeout_s:.1f}s)",
                        timed_out=True)
            for uid in list(self._flapping):
                if now >= self._flapping[uid].flap_deadline:
                    self._expel_flapped(
                        uid, "reconnect window expired — gone, "
                        "not flapping")
            # Standby peers read with a lease-timeout-sized deadline;
            # this ping keeps a quiet-but-alive primary from looking
            # dead to them (and a wedged one from looking alive).
            for peer in list(self._peers.values()):
                self._post(peer.session, {"type": "sync-ping"})

    def _dispatch(self) -> None:
        """One scheduling pass: drain the queue onto free capacity.

        Per job, in order: a cache hit settles immediately; otherwise
        the executor with the most free credits wins it (ties prefer
        the local pool).  Jobs stay queued when nobody has capacity —
        every ``upload`` frees a credit and re-wakes the loop.
        """
        local_batch: List[_Job] = []
        planned: Dict[int, List[_Job]] = {}
        while self._queue:
            job = self._queue[0]
            if self._jobs.get(job.key) is not job:
                # Settled out from under the queue (a cache-push for
                # a key that was still waiting its turn).
                self._queue.popleft()
                continue
            if not job.subscribers and not job.recovered:
                # Every subscriber cancelled before it started.
                # (Recovered jobs are owed to clients that may not
                # have reconnected yet — they run regardless.)
                self._queue.popleft()
                self._jobs.pop(job.key, None)
                self.stats.dropped += 1
                continue
            if self.cache is not None and not job.started \
                    and not self._workers:
                # Hub-side warm check, fleetless mode only.  With
                # workers registered the warm check rides the lease
                # instead (``cache-lookup``), so the counters measure
                # the transport and a local hit can't starve the
                # fleet's view of the cache.  The local pool path
                # still checks per spec inside execute().
                report = self.cache.load(job.spec)
                if report is not None:
                    self._queue.popleft()
                    self._settle(RunOutcome(job.spec, report,
                                            cached=True, elapsed_s=0.0))
                    continue
            target = self._pick_executor(len(local_batch), planned)
            if target is None:
                break  # no free credits anywhere; wait for an upload
            self._queue.popleft()
            job.started = True
            if target == "local":
                local_batch.append(job)
            else:
                planned.setdefault(target, []).append(job)
        for session_id, jobs in planned.items():
            self._lease(self._workers[session_id], jobs)
        if local_batch:
            self._start_local(local_batch)

    def _pick_executor(self, local_planned: int,
                       planned: Dict[int, List[_Job]],
                       ) -> Union[str, int, None]:
        """``"local"``, a worker's session id, or ``None`` if every
        executor's credit window is full for this pass."""
        best: Union[str, int, None] = None
        best_free = 0
        if self.local_execution and not self._local_busy:
            # With no fleet, the local pool takes the whole queue in
            # one batch (the pre-fleet behaviour, which also keeps
            # replica groups intact for --replica-batch).  With
            # workers registered, it is window-bounded like them so
            # there is work left for the fleet to steal.
            capacity = (self._runner.credit_window if self._workers
                        else len(self._queue) + local_planned)
            free = capacity - local_planned
            if free > 0:
                best, best_free = "local", free
        for session_id, worker in self._workers.items():
            free = worker.free_credits - len(planned.get(session_id, ()))
            if free > best_free:
                best, best_free = session_id, free
        return best

    def _lease(self, worker: WorkerState, jobs: List[_Job]) -> None:
        """Post ``jobs`` to a worker, one lease frame per full-width
        chunk so each lease runs at the worker's full parallelism."""
        for start in range(0, len(jobs), worker.jobs):
            chunk = jobs[start:start + worker.jobs]
            lease_id = f"L{next(self._lease_ids)}"
            for job in chunk:
                worker.leased[job.key] = job
                if self._journal is not None:
                    self._journal.record_leased(
                        job.key, worker.uid or f"worker-{worker.id}")
            self._post(worker.session, {
                "type": "lease",
                "lease_id": lease_id,
                "specs": [job.spec.canonical() for job in chunk],
            })
            self.log(f"leased {len(chunk)} job(s) to worker "
                     f"{worker.id} as {lease_id} "
                     f"({len(worker.leased)}/{worker.credit_window} "
                     f"credits used)")

    def _start_local(self, batch: List[_Job]) -> None:
        """Run one batch on the local JobRunner in a worker thread."""
        self._local_busy = True
        specs = [job.spec for job in batch]
        if self._journal is not None:
            for job in batch:
                self._journal.record_leased(job.key, "local")
        self.log(f"executing {len(specs)} job(s) on the local pool, "
                 f"{len(self._queue)} queued behind")
        loop = self._loop
        assert loop is not None

        def settle_threadsafe(outcome: RunOutcome) -> None:
            loop.call_soon_threadsafe(self._settle, outcome)

        async def run_batch() -> None:
            try:
                await asyncio.to_thread(self._runner.run, specs,
                                        settle_threadsafe)
            except Exception as exc:  # noqa: BLE001
                # An ordinary exception raised by a job aborts the
                # rest of its batch inside execute() (that is the
                # local-runner contract: the raise surfaces at the
                # failing job).  A daemon must outlive it: every
                # job the batch did not settle fails visibly to
                # its subscribers, and the service keeps serving.
                self.log(f"batch aborted by a job exception: "
                         f"{type(exc).__name__}: {exc}")
                self._fail_unsettled(batch, str(exc))
            finally:
                self._local_busy = False
                assert self._wake is not None
                self._wake.set()

        self._local_task = asyncio.ensure_future(run_batch())

    def _fail_stranded(self) -> None:
        """Draining with no executor left: fail the queue visibly.

        With ``--no-local`` and an empty fleet (never populated, or
        every worker lost mid-drain) nothing can ever run the queued
        jobs, and a draining daemon refuses new worker registrations
        — waiting on an empty queue would hang the shutdown forever.
        Each stranded job fails to its subscribers instead, so the
        drain still completes and clients still see every result.
        """
        if not self._queue or self.local_execution or self._workers \
                or self._flapping:
            # A flapping worker may yet reconnect and take the queue;
            # if it never does, the reaper expels it at the deadline
            # and the next wake re-evaluates with _flapping empty.
            return
        stranded = list(self._queue)
        self._queue.clear()
        self.log(f"draining with no eligible executor — failing "
                 f"{len(stranded)} stranded job(s)")
        self._fail_unsettled(
            stranded,
            "daemon draining with no eligible executor "
            "(local execution disabled, no workers registered)")

    def _enqueue(self, spec: RunSpec, submission: Submission,
                 index: int) -> None:
        """Queue one spec, or coalesce onto its in-flight twin."""
        key = spec.key()
        quarantine = self._quarantined.get(key)
        if quarantine is not None:
            # Poison spec: report the recorded verdict immediately,
            # never lease it again — a client retry loop cannot
            # livelock the scheduler with known-bad work.
            self.stats.quarantine_hits += 1
            job = _Job(spec=spec, key=key,
                       subscribers=[(submission, index)])
            self._jobs[key] = job
            self._settle(self._quarantine_outcome(spec, quarantine))
            return
        job = self._jobs.get(key)
        if job is not None:
            job.subscribers.append((submission, index))
            self.stats.coalesced += 1
            return
        job = _Job(spec=spec, key=key,
                   subscribers=[(submission, index)])
        if self._journal is not None:
            # WAL ordering: durable before queued, so a crash between
            # the two can only over-remember (re-run a settled spec —
            # harmless, it's a cache hit) and never under-remember.
            self._journal.record_queued(key, spec.canonical())
        self._jobs[key] = job
        self._queue.append(job)
        assert self._wake is not None
        self._wake.set()

    def _fail_unsettled(self, batch: List[_Job], message: str) -> None:
        """Fan an error outcome to every batch job still in flight."""
        from repro.experiments.base import ExperimentReport

        for job in batch:
            if job.key not in self._jobs:
                continue  # settled before the batch aborted
            error = f"{job.key}: {message}"
            report = ExperimentReport(
                experiment_id=job.spec.experiment_id,
                title="job failed — exception in the entry point",
                warnings=[error])
            self._settle(RunOutcome(job.spec, report, cached=False,
                                    elapsed_s=0.0, error=error,
                                    kind=FAIL_ERROR))

    def _quarantine_outcome(self, spec: RunSpec,
                            record: Dict[str, str]) -> RunOutcome:
        """The canned verdict a quarantined spec settles with."""
        from repro.experiments.base import ExperimentReport

        error = (f"{spec.key()}: quarantined after failing the same "
                 f"way twice ({record.get('kind', FAIL_ERROR)}: "
                 f"{record.get('error', '')})")
        report = ExperimentReport(
            experiment_id=spec.experiment_id,
            title="job failed — quarantined",
            warnings=[error])
        return RunOutcome(spec, report, cached=False, elapsed_s=0.0,
                          error=error, kind=FAIL_QUARANTINED)

    def _note_failure(self, job: _Job, outcome: RunOutcome) -> None:
        """Track repeated identical failures; quarantine on the 2nd.

        "Identical" means the same taxonomy kind: a TIMEOUT followed
        by another TIMEOUT is a deterministic hang, not bad luck.  A
        success wipes the key's history (a flaky environment that
        recovered owes nothing).  The quarantine record is journaled
        fsync-durably so a daemon restart cannot resurrect the storm.
        """
        if outcome.error is None:
            self._failures.pop(job.key, None)
            return
        if outcome.kind == FAIL_QUARANTINED:
            return  # a verdict, not a new failure
        kind = outcome.kind or FAIL_ERROR
        counts = self._failures.setdefault(job.key, {})
        counts[kind] = counts.get(kind, 0) + 1
        if counts[kind] < 2 or job.key in self._quarantined:
            return
        record = {"kind": kind, "error": outcome.error}
        self._quarantined[job.key] = record
        self._failures.pop(job.key, None)
        self.stats.quarantined += 1
        if self._journal is not None:
            self._journal.quarantined[job.key] = record
            self._journal.record_quarantined(job.key, kind,
                                             outcome.error)
        self.log(f"quarantined {job.key}: failed the same way twice "
                 f"({kind})")

    def _settle(self, outcome: RunOutcome,
                worker: Optional[WorkerState] = None) -> None:
        """Fan one finished job's result out to every subscriber."""
        job = self._jobs.pop(outcome.spec.key(), None)
        if job is None:  # pragma: no cover — defensive
            return
        self._note_failure(job, outcome)
        if self._journal is not None:
            self._journal.record_settled(job.key, outcome.error)
            if self._journal.wants_compaction:
                self._journal.compact({
                    key: live.spec.canonical()
                    for key, live in self._jobs.items()},
                    dict(self._quarantined))
        if outcome.error is not None:
            self.stats.failed += 1
            if worker is not None:
                worker.failed += 1
                self.stats.remote_failed += 1
        elif outcome.cached:
            self.stats.cache_hits += 1
        else:
            self.stats.executed += 1
            if worker is not None:
                worker.completed += 1
                self.stats.remote_executed += 1
        report_payload = report_to_payload(outcome.report)
        for submission, index in job.subscribers:
            if submission.cancelled:
                continue
            session = submission.session
            self._post(session, {
                "type": "result",
                "submit_id": submission.submit_id,
                "index": index,
                "key": job.key,
                "cached": outcome.cached,
                "coalesced": len(job.subscribers) > 1,
                "elapsed_s": outcome.elapsed_s,
                "error": outcome.error,
                "kind": outcome.kind,
                "report": report_payload,
            })
            self.stats.results_streamed += 1
            session.settle_one(submission,
                               executed=not outcome.cached
                               and outcome.error is None,
                               cached=outcome.cached,
                               failed=outcome.error is not None)
            if submission.pending <= 0:
                self._post(session, {
                    "type": "done",
                    "submit_id": submission.submit_id,
                    "executed": submission.executed,
                    "cached": submission.cached,
                    "failed": submission.failed,
                })

    # -- worker fleet --------------------------------------------------------

    def _expel_worker(self, session_id: int, reason: str, *,
                      timed_out: bool = False) -> None:
        """Forget a worker; requeue whatever it still owed us.

        Requeued jobs go to the *front* of the queue (``started`` is
        reset so the cache re-checks them — the dead worker may have
        uploaded some results already).  The submitting client never
        learns any of this happened.
        """
        worker = self._workers.pop(session_id, None)
        if worker is None:
            return
        reassigned = len(worker.leased)
        for job in reversed(list(worker.leased.values())):
            job.started = False
            self._queue.appendleft(job)
        worker.leased.clear()
        if reassigned or timed_out:
            self.stats.workers_lost += 1
            self.stats.leases_reassigned += reassigned
            self.log(f"worker {worker.id} ({worker.name}) lost "
                     f"({reason}); {reassigned} lease(s) reassigned")
        else:
            self.log(f"worker {worker.id} ({worker.name}) left "
                     f"({reason})")
        if timed_out:
            # The reaper path: the connection is still nominally open
            # (a partitioned peer), so break its blocked reader.  On
            # the disconnect path the reader already returned, and
            # closing here would race the writer loop out of flushing
            # a final error frame.
            with contextlib.suppress(Exception):
                worker.session.writer.close()
        if self._wake is not None:
            self._wake.set()

    def _park_worker(self, session_id: int) -> bool:
        """Connection lost with leases in flight: park, don't requeue.

        The flap bet: a worker that can present the same uid within
        the lease timeout still has those executions running (or
        finished, buffered) and will deliver them — requeueing now
        would pay for every one of them twice.  Returns ``False`` when
        the worker is not eligible (no uid, or nothing leased), in
        which case the caller falls back to a plain expel.
        """
        worker = self._workers.get(session_id)
        if worker is None or not worker.leased or not worker.uid:
            return False
        del self._workers[session_id]
        worker.flap_deadline = time.monotonic() + self.lease_timeout_s
        self._flapping[worker.uid] = worker
        self.stats.workers_flapped += 1
        self.log(f"worker {worker.id} ({worker.name}) connection lost "
                 f"with {len(worker.leased)} lease(s) in flight — "
                 f"parked for reconnect "
                 f"(window {self.lease_timeout_s:.1f}s)")
        return True

    def _expel_flapped(self, uid: str, reason: str) -> None:
        """A parked worker never came back: requeue what it owed."""
        worker = self._flapping.pop(uid, None)
        if worker is None:
            return
        reassigned = len(worker.leased)
        for job in reversed(list(worker.leased.values())):
            job.started = False
            self._queue.appendleft(job)
        worker.leased.clear()
        self.stats.workers_lost += 1
        self.stats.leases_reassigned += reassigned
        self.log(f"worker {worker.id} ({worker.name}) gone "
                 f"({reason}); {reassigned} lease(s) reassigned")
        if self._wake is not None:
            self._wake.set()

    def _handle_upload(self, worker: WorkerState,
                       frame: Dict[str, Any]) -> None:
        """One leased spec's result came back from a worker."""
        key = frame.get("key")
        job = worker.leased.get(key) if isinstance(key, str) else None
        if job is None:
            raise ProtocolError(
                "bad-upload",
                f"upload for a key this worker does not hold: {key!r}")
        error = frame.get("error")
        if error is not None and not isinstance(error, str):
            raise ProtocolError(
                "bad-upload", "upload 'error' must be null or a string")
        kind = frame.get("kind")
        if kind is not None and not isinstance(kind, str):
            raise ProtocolError(
                "bad-upload", "upload 'kind' must be null or a string")
        elapsed = frame.get("elapsed_s", 0.0)
        if isinstance(elapsed, bool) or \
                not isinstance(elapsed, (int, float)):
            raise ProtocolError(
                "bad-upload", "upload 'elapsed_s' must be a number")
        payload = frame.get("report")
        if not isinstance(payload, dict):
            raise ProtocolError(
                "bad-upload", "upload 'report' must be an object")
        try:
            report = report_from_payload(payload)
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            raise ProtocolError(
                "bad-upload",
                f"malformed report payload for {key}: {exc}") from exc
        cached = bool(frame.get("cached"))
        del worker.leased[key]
        if error is None and self.cache is not None:
            # Stored even for cached=True uploads: that is the
            # transport — a hit in the *worker's* local cache lands in
            # the hub's, where the whole fleet can see it.
            self.cache.store(job.spec, report)
        if cached:
            worker.completed += 1
            self.stats.remote_cache_hits += 1
        self._settle(RunOutcome(job.spec, report, cached=cached,
                                elapsed_s=float(elapsed), error=error,
                                kind=kind if error is not None
                                else None),
                     worker=worker)
        assert self._wake is not None
        self._wake.set()  # a credit came free — dispatch again

    def _handle_cache_lookup(self, worker: WorkerState,
                             frame: Dict[str, Any]) -> None:
        """A worker asks which of its leased keys are already warm.

        Hits are settled *here*, straight from the hub cache — the
        worker just drops them from its batch, so a warm spec costs
        one round trip and zero executions anywhere in the fleet.
        """
        keys = frame.get("keys")
        lookup_id = frame.get("lookup_id")
        if not isinstance(lookup_id, str) or not lookup_id:
            raise ProtocolError(
                "bad-lookup",
                "cache-lookup frame needs a string 'lookup_id'")
        if not isinstance(keys, list) \
                or not all(isinstance(k, str) for k in keys):
            raise ProtocolError(
                "bad-lookup",
                "cache-lookup frame needs a list of string 'keys'")
        hits: List[str] = []
        for key in keys:
            job = worker.leased.get(key)
            if job is None:
                # Not held here: either already settled (a reconnect
                # flush raced the re-lease) or never ours.  Either
                # way there is nothing for the worker to execute, so
                # it reads as droppable — but not as a cache hit.
                hits.append(key)
                continue
            report = self.cache.load(job.spec) \
                if self.cache is not None else None
            if report is None:
                self.stats.cache_lookup_misses += 1
                continue
            hits.append(key)
            del worker.leased[key]
            self.stats.cache_lookup_hits += 1
            self._settle(RunOutcome(job.spec, report, cached=True,
                                    elapsed_s=0.0))
        self._post(worker.session, {
            "type": "cache-result",
            "lookup_id": lookup_id,
            "hits": hits,
        })
        if hits:
            self.log(f"cache-lookup from worker {worker.id}: "
                     f"{len(hits)}/{len(keys)} warm, settled from "
                     "the hub cache")
            assert self._wake is not None
            self._wake.set()  # freed credits

    def _handle_cache_push(self, worker: WorkerState,
                           frame: Dict[str, Any]) -> None:
        """An out-of-lease result shipped hub-ward by a worker.

        The reconnect-flush path: results a worker finished while
        disconnected arrive here after its leases may have been
        reclaimed, reassigned, or even settled by someone else.
        Content addressing makes every case an idempotent merge —
        settle the job if it is still live (whoever holds the lease),
        and store the payload either way.
        """
        key = frame.get("key")
        spec_payload = frame.get("spec")
        if not isinstance(key, str) or not key:
            raise ProtocolError(
                "bad-push", "cache-push frame needs a string 'key'")
        if not isinstance(spec_payload, dict):
            raise ProtocolError(
                "bad-push", "cache-push frame needs a 'spec' object")
        error = frame.get("error")
        if error is not None and not isinstance(error, str):
            raise ProtocolError(
                "bad-push", "cache-push 'error' must be null or a string")
        kind = frame.get("kind")
        if kind is not None and not isinstance(kind, str):
            raise ProtocolError(
                "bad-push", "cache-push 'kind' must be null or a string")
        elapsed = frame.get("elapsed_s", 0.0)
        if isinstance(elapsed, bool) or \
                not isinstance(elapsed, (int, float)):
            raise ProtocolError(
                "bad-push", "cache-push 'elapsed_s' must be a number")
        payload = frame.get("report")
        if not isinstance(payload, dict):
            raise ProtocolError(
                "bad-push", "cache-push 'report' must be an object")
        try:
            spec = RunSpec.from_canonical(spec_payload)
            report = report_from_payload(payload)
        except (ConfigurationError, KeyError, TypeError,
                AttributeError, ValueError) as exc:
            raise ProtocolError(
                "bad-push",
                f"malformed cache-push for {key}: {exc}") from exc
        if spec.key() != key:
            raise ProtocolError(
                "bad-push",
                f"cache-push key {key!r} does not match its spec's "
                f"content hash {spec.key()!r}")
        self.stats.cache_pushes += 1
        if error is None and self.cache is not None:
            self.cache.store(spec, report)
        live = self._jobs.get(key)
        if live is None:
            return  # already settled (or never ours) — store was enough
        # Whoever currently holds the lease is off the hook.
        worker.leased.pop(key, None)
        for other in self._workers.values():
            other.leased.pop(key, None)
        for other in self._flapping.values():
            other.leased.pop(key, None)
        self._settle(RunOutcome(live.spec, report, cached=False,
                                elapsed_s=float(elapsed), error=error,
                                kind=kind if error is not None
                                else None),
                     worker=worker)
        assert self._wake is not None
        self._wake.set()

    async def _worker_loop(self, session: Session,
                           reader: asyncio.StreamReader,
                           register: Dict[str, Any]) -> None:
        """One registered worker's connection: leases out, uploads in."""
        version = register.get("version")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                "version-mismatch",
                f"worker speaks protocol {version!r}, "
                f"server speaks {PROTOCOL_VERSION}")
        jobs = register.get("jobs", 1)
        if isinstance(jobs, bool) or not isinstance(jobs, int) \
                or not 1 <= jobs <= 4096:
            raise ProtocolError(
                "bad-register",
                f"register frame needs an integer 'jobs' in "
                f"[1, 4096], got {jobs!r}")
        uid = register.get("uid")
        if uid is not None and (not isinstance(uid, str)
                                or not uid or len(uid) > 256):
            raise ProtocolError(
                "bad-register",
                "register 'uid' must be a non-empty string "
                "of at most 256 chars")
        heartbeat_s = register.get("heartbeat_s")
        if heartbeat_s is not None:
            if isinstance(heartbeat_s, bool) \
                    or not isinstance(heartbeat_s, (int, float)) \
                    or heartbeat_s <= 0:
                raise ProtocolError(
                    "bad-register",
                    f"register 'heartbeat_s' must be a positive "
                    f"number, got {heartbeat_s!r}")
            if heartbeat_s > self.lease_timeout_s / 2.0:
                # A worker beating slower than half the lease timeout
                # is one dropped packet away from being reaped as
                # dead; refuse at registration, where the operator
                # sees both numbers, instead of expelling it later.
                raise ProtocolError(
                    "bad-heartbeat",
                    f"requested heartbeat interval {heartbeat_s}s "
                    f"exceeds half this daemon's lease timeout "
                    f"({self.lease_timeout_s}s); lower --heartbeat "
                    "or raise the daemon's --lease-timeout")
        name = register.get("name")
        if not isinstance(name, str) or not name:
            name = session.peer
        now = time.monotonic()
        worker = self._reclaim_worker(uid)
        if worker is None and self._draining:
            # A brand-new worker has nothing the drain is waiting on;
            # a reclaiming one holds leases the drain *needs*, so it
            # is always let back in.
            self._post(session, error_frame(
                "draining",
                "daemon is shutting down and not registering workers"))
            return
        if worker is not None:
            reclaimed = len(worker.leased)
            worker.session = session
            worker.address = session.peer
            worker.name = name
            worker.jobs = jobs
            worker.replica_batch = bool(register.get("replica_batch"))
            worker.version = str(register.get("repro") or "unknown")
            worker.last_seen = now
            worker.flap_deadline = 0.0
            worker.heartbeat_s = float(heartbeat_s or 0.0)
            self.stats.workers_reconnected += 1
            self.stats.leases_reclaimed += reclaimed
            self.log(f"worker {worker.id} reconnected as {name} — "
                     f"{reclaimed} parked lease(s) reclaimed")
        else:
            reclaimed = 0
            worker = WorkerState(
                id=next(self._worker_ids), session=session, name=name,
                address=session.peer, jobs=jobs,
                replica_batch=bool(register.get("replica_batch")),
                version=str(register.get("repro") or "unknown"),
                registered_at=now, last_seen=now, uid=uid,
                heartbeat_s=float(heartbeat_s or 0.0))
            self.stats.workers_registered += 1
            self.log(f"worker {worker.id} registered: {name} "
                     f"(jobs={jobs}, repro {worker.version}) — "
                     f"fleet size {len(self._workers) + 1}")
        self._workers[session.id] = worker
        self._post(session, {
            "type": "registered",
            "worker_id": worker.id,
            "reclaimed": reclaimed,
            "heartbeat_interval_s": worker.heartbeat_s
            or max(0.05, self.lease_timeout_s / 3.0),
            "lease_timeout_s": self.lease_timeout_s,
            "credit_window": worker.credit_window,
        })
        if reclaimed:
            # Re-send the reclaimed specs as fresh lease frames: the
            # worker may never have received the originals (they can
            # die in the old connection's buffers).  Re-delivery is
            # harmless — the worker's cache-lookup drops everything
            # its reconnect flush already settled.
            release = list(worker.leased.values())
            worker.leased.clear()
            self._lease(worker, release)
        assert self._wake is not None
        self._wake.set()  # fresh capacity — dispatch
        try:
            while True:
                frame = await read_frame_async(reader)
                if frame is None:
                    return
                worker.last_seen = time.monotonic()
                kind = frame["type"]
                if kind == "heartbeat":
                    continue
                elif kind == "upload":
                    self._handle_upload(worker, frame)
                elif kind == "cache-lookup":
                    self._handle_cache_lookup(worker, frame)
                elif kind == "cache-push":
                    self._handle_cache_push(worker, frame)
                elif kind == "register":
                    raise ProtocolError("bad-handshake",
                                        "duplicate register frame")
                else:
                    self._post(session, error_frame(
                        "unknown-type",
                        f"unknown frame type {kind!r} on a worker "
                        "connection"))
        except ProtocolError:
            # A protocol violator is "gone", not "flapping" — its
            # byte stream can't be trusted, so neither can a reclaim.
            # Expel now (requeueing its leases) so the disconnect
            # cleanup below finds nothing to park.
            self._expel_worker(session.id, "protocol violation")
            raise

    def _reclaim_worker(self, uid: Optional[str]
                        ) -> Optional[WorkerState]:
        """The parked (or superseded) WorkerState for ``uid``, if any.

        A re-register may race the daemon's discovery of the old
        connection's death — the uid also reclaims straight out of
        ``_workers``, closing the stale session.
        """
        if not uid:
            return None
        worker = self._flapping.pop(uid, None)
        if worker is not None:
            return worker
        for session_id, live in list(self._workers.items()):
            if live.uid == uid:
                del self._workers[session_id]
                self.log(f"worker {live.id} re-registered over a "
                         f"stale connection — superseding it")
                with contextlib.suppress(Exception):
                    live.session.writer.close()
                return live
        return None

    # -- standby peers -------------------------------------------------------

    def _relay_journal(self, record: Dict[str, Any]) -> None:
        """Fan one freshly-journaled record out to every standby peer.

        Hung on :attr:`ServiceJournal.on_append`, so it runs on the
        event loop thread right after the record is durable locally —
        the standby's mirror can only ever trail ours, never lead it.
        """
        if not self._peers:
            return
        self._sync_seq += 1
        frame = {
            "type": "journal-sync",
            "seq": self._sync_seq,
            "records": [record],
            "digest": sync_digest([record]),
        }
        for peer in self._peers.values():
            peer.synced += 1
            self._post(peer.session, frame)
        self.stats.sync_records_relayed += 1

    async def _peer_loop(self, session: Session,
                         reader: asyncio.StreamReader,
                         first: Dict[str, Any]) -> None:
        """One standby hub's connection: snapshot, then live relay.

        The snapshot and the peer registration happen in one
        synchronous block (no await between them), so no journal
        append can fall in the gap — the standby sees exactly
        snapshot + every later record, in order, on one outbox.
        """
        version = first.get("version")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                "version-mismatch",
                f"peer speaks protocol {version!r}, "
                f"server speaks {PROTOCOL_VERSION}")
        if self._journal is None:
            self._post(session, error_frame(
                "no-journal",
                "this daemon has no journal to sync (no cache dir); "
                "start it with --cache-dir to support standby peers"))
            return
        name = first.get("name")
        if not isinstance(name, str) or not name:
            name = session.peer
        snapshot = {
            "live": {key: job.spec.canonical()
                     for key, job in self._jobs.items()},
            "quarantined": {key: dict(record)
                            for key, record
                            in self._quarantined.items()},
        }
        peer = PeerState(session=session, name=name,
                         address=session.peer,
                         registered_at=time.monotonic())
        self._peers[session.id] = peer
        self.stats.peers_connected += 1
        self._post(session, {
            "type": "peer-welcome",
            "snapshot": snapshot,
            "digest": sync_digest(snapshot),
            "lease_timeout_s": self.lease_timeout_s,
        })
        self.log(f"standby peer {name} connected "
                 f"({len(snapshot['live'])} live, "
                 f"{len(snapshot['quarantined'])} quarantined "
                 "in its snapshot)")
        try:
            while True:
                frame = await read_frame_async(reader)
                if frame is None:
                    return
                kind = frame["type"]
                if kind == "heartbeat":
                    continue
                self._post(session, error_frame(
                    "unknown-type",
                    f"unknown frame type {kind!r} on a peer "
                    "connection"))
        finally:
            self._peers.pop(session.id, None)
            self.log(f"standby peer {name} disconnected after "
                     f"{peer.synced} synced record(s)")

    # -- per-connection protocol ---------------------------------------------

    def _post(self, session: Session, frame: Dict[str, Any]) -> None:
        """Enqueue a frame on a session's ordered outbox."""
        if session.closed:
            return
        outbox = self._outboxes.get(session.id)
        if outbox is not None:
            outbox.put_nowait(frame)

    async def _writer_loop(self, session: Session,
                           outbox: asyncio.Queue) -> None:
        """Serialise one session's outbound frames (order-preserving)."""
        try:
            while True:
                frame = await outbox.get()
                if frame is None:
                    break
                await write_frame_async(session.writer, frame)
        except (ConnectionError, OSError):
            # Client vanished mid-stream; the reader loop (or the
            # farewell sweep) detaches its submissions.
            session.closed = True
        finally:
            with contextlib.suppress(Exception):
                session.writer.close()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        if isinstance(peername, (tuple, list)) and len(peername) >= 2:
            peername = f"{peername[0]}:{peername[1]}"
        session = Session(writer=writer, peer=str(peername or "local"),
                          high_watermark=self.high_watermark,
                          low_watermark=self.low_watermark)
        outbox: asyncio.Queue = asyncio.Queue()
        self._sessions[session.id] = session
        self._outboxes[session.id] = outbox
        self._writer_tasks[session.id] = asyncio.ensure_future(
            self._writer_loop(session, outbox))
        self.stats.sessions_opened += 1
        try:
            await self._session_loop(session, reader)
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            self.log(f"session {session.id}: protocol error "
                     f"[{exc.code}] {exc}")
            self._post(session, error_frame(exc.code, str(exc)))
        except (ConnectionError, OSError) as exc:
            self.log(f"session {session.id}: dropped ({exc})")
        finally:
            self._detach_session(session)
            outbox.put_nowait(None)
            self._sessions.pop(session.id, None)
            self._outboxes.pop(session.id, None)
            task = self._writer_tasks.pop(session.id, None)
            if task is not None:
                with contextlib.suppress(Exception):
                    await asyncio.wait_for(task, timeout=2.0)

    def _detach_session(self, session: Session) -> None:
        """Forget a dead client: its pending subscriptions are void.

        In-flight *executions* are not interrupted — their results
        land in the shared cache, which is exactly what makes a
        reconnecting client resume for free.

        A worker session is the inverse: the daemon owes its *leases*
        to other sessions' clients, so they are requeued for another
        executor instead of forgotten.
        """
        if session.id in self._workers:
            # A flap (identity + leases in flight) parks; anything
            # else is a plain expel with requeue.
            if not self._park_worker(session.id):
                self._expel_worker(session.id, "disconnected")
        session.closed = True
        for submission in list(session.submissions.values()):
            submission.cancelled = True
        for job in self._jobs.values():
            job.subscribers = [
                (submission, index)
                for submission, index in job.subscribers
                if submission.session is not session
            ]
        if self._wake is not None:
            # Jobs orphaned above are dropped on the next dispatch
            # pass; without this wake a drain could wait on them
            # indefinitely.
            self._wake.set()

    async def _session_loop(self, session: Session,
                            reader: asyncio.StreamReader) -> None:
        first = await read_frame_async(reader)
        if first is None:
            return
        if first.get("type") == "register":
            await self._worker_loop(session, reader, first)
            return
        if first.get("type") == "peer":
            await self._peer_loop(session, reader, first)
            return
        if first.get("type") != "hello":
            raise ProtocolError(
                "bad-handshake",
                f"expected a hello, register or peer frame, got "
                f"{first.get('type')!r}")
        if first.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(
                "version-mismatch",
                f"client speaks protocol {first.get('version')!r}, "
                f"server speaks {PROTOCOL_VERSION}")
        self._post(session, {
            "type": "welcome",
            "version": PROTOCOL_VERSION,
            "server": "repro-serve",
            "jobs": self._runner.jobs,
            "cache": self.cache is not None,
            "workers": len(self._workers),
        })
        while True:
            await session.throttle()  # backpressure: stop reading
            frame = await read_frame_async(reader)
            if frame is None:
                return
            kind = frame["type"]
            if kind == "submit":
                self._handle_submit(session, frame)
            elif kind == "cancel":
                self._handle_cancel(session, frame)
            elif kind == "stats":
                self._post(session, self._stats_frame())
            elif kind == "shutdown":
                self.initiate_shutdown()
            elif kind == "hello":
                raise ProtocolError("bad-handshake",
                                    "duplicate hello frame")
            else:
                self._post(session, error_frame(
                    "unknown-type",
                    f"unknown frame type {kind!r}"))

    def _handle_submit(self, session: Session,
                       frame: Dict[str, Any]) -> None:
        submit_id = frame.get("submit_id")
        payloads = frame.get("specs")
        if not isinstance(submit_id, str) or not submit_id:
            self._post(session, error_frame(
                "bad-submit", "submit frame needs a string submit_id"))
            return
        if not isinstance(payloads, list) or not payloads:
            self._post(session, error_frame(
                "bad-submit",
                "submit frame needs a non-empty 'specs' list"))
            return
        if submit_id in session.submissions:
            self._post(session, error_frame(
                "duplicate-submit",
                f"submit_id {submit_id!r} is already live on this "
                "connection"))
            return
        if self._draining:
            self._post(session, error_frame(
                "draining",
                "daemon is shutting down and not accepting new work"))
            return
        if len(payloads) > self.max_submit:
            self._post(session, error_frame(
                "submit-too-large",
                f"{len(payloads)} specs in one submit exceeds the "
                f"cap of {self.max_submit}; split the sweep"))
            return
        try:
            specs = [RunSpec.from_canonical(payload).validate()
                     for payload in payloads]
        except (ConfigurationError, KeyError, TypeError,
                AttributeError) as exc:
            self._post(session, error_frame(
                "bad-spec", f"submit {submit_id!r} rejected: {exc}"))
            return
        if self._disk_nearly_full():
            # Refusing to journal beats corrupting the journal: a full
            # cache volume turns new work away with a typed error the
            # operator can act on (gc or grow the disk).
            self.stats.disk_refusals += 1
            self._post(session, error_frame(
                "cache-full",
                f"cache volume has under {self.min_free_mb}MB free; "
                "refusing to journal new work — run `repro cache gc` "
                "or free disk space"))
            return
        # Admission control: count only keys that would *add* queue
        # depth — resubmits of in-flight work coalesce for free, and
        # quarantined keys settle instantly, so neither is load.
        new_keys = ({spec.key() for spec in specs}
                    - set(self._jobs) - set(self._quarantined))
        if len(self._jobs) + len(new_keys) > self.max_queue:
            self.stats.busy_rejections += 1
            self._post(session, {
                "type": "busy",
                "submit_id": submit_id,
                "retry_after_s": self.busy_retry_s,
                "queued": len(self._queue),
                "inflight": len(self._jobs),
                "max_queue": self.max_queue,
            })
            self.log(f"session {session.id}: shed submit "
                     f"{submit_id!r} ({len(new_keys)} new keys would "
                     f"exceed max_queue={self.max_queue})")
            return
        submission = session.accept(submit_id, len(specs))
        self.stats.submitted += len(specs)
        self._post(session, {
            "type": "accepted",
            "submit_id": submit_id,
            "total": len(specs),
            "keys": [spec.key() for spec in specs],
        })
        for index, spec in enumerate(specs):
            self._enqueue(spec, submission, index)
        self.log(f"session {session.id}: accepted {len(specs)} "
                 f"job(s) as {submit_id!r} "
                 f"({len(self._queue)} unique queued)")

    def _handle_cancel(self, session: Session,
                       frame: Dict[str, Any]) -> None:
        submit_id = frame.get("submit_id")
        submission = session.submissions.get(submit_id) \
            if isinstance(submit_id, str) else None
        if submission is None:
            self._post(session, error_frame(
                "unknown-submit",
                f"no live submission {submit_id!r} on this "
                "connection"))
            return
        submission.cancelled = True
        for job in self._jobs.values():
            job.subscribers = [
                (sub, index) for sub, index in job.subscribers
                if sub is not submission
            ]
        detached = submission.pending
        session.detach(submission, detached)
        if self._wake is not None:
            # As in _detach_session: promptly drop queued jobs whose
            # last subscriber just left.
            self._wake.set()
        self._post(session, {
            "type": "cancelled",
            "submit_id": submit_id,
            "detached": detached,
        })

    def _disk_nearly_full(self) -> bool:
        """Whether the cache volume is below the free-space floor."""
        if self.cache is None or self.min_free_mb <= 0:
            return False
        free = free_disk_bytes(self.cache.root)
        if free is None:
            return False
        return free < self.min_free_mb * 1024 * 1024

    def _stats_frame(self) -> Dict[str, Any]:
        now = time.monotonic()
        payload = self.stats.payload()
        payload.update({
            "type": "stats",
            "version": PROTOCOL_VERSION,
            "jobs": self._runner.jobs,
            "inflight": len(self._jobs),
            "queued": len(self._queue),
            "sessions": len(self._sessions),
            "draining": self._draining,
            "uptime_s": now - self._started,
            "cache": self.cache is not None,
            "local_execution": self.local_execution,
            "lease_timeout_s": self.lease_timeout_s,
            "journal": self._journal is not None,
            "resume": self.resume,
            "max_queue": self.max_queue,
            "min_free_mb": self.min_free_mb,
            "governed": self.limits is not None
            and self.limits.enabled,
            "quarantined_keys": len(self._quarantined),
            "peers": len(self._peers),
            "workers": [
                worker.stats_row(now)
                for worker in sorted(self._workers.values(),
                                     key=lambda w: w.id)
            ] + [
                worker.stats_row(now, status="flapping")
                for worker in sorted(self._flapping.values(),
                                     key=lambda w: w.id)
            ],
        })
        return payload


__all__ = ["ReproDaemon", "DaemonStats", "WorkerState", "PeerState"]
