"""Tests for Event / EventQueue determinism."""

import pytest

from repro.sim.errors import SimulationError
from repro.sim.events import Event, EventQueue


def _noop():
    pass


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        q.push(Event(30, _noop))
        q.push(Event(10, _noop))
        q.push(Event(20, _noop))
        assert [q.pop().time for _ in range(3)] == [10, 20, 30]

    def test_fifo_within_same_timestamp(self):
        q = EventQueue()
        order = []
        for tag in "abc":
            q.push(Event(5, _noop, label=tag))
        while len(q):
            order.append(q.pop().label)
        assert order == ["a", "b", "c"]

    def test_len_counts_live_events(self):
        q = EventQueue()
        e1 = Event(1, _noop)
        e2 = Event(2, _noop)
        q.push(e1)
        q.push(e2)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        e1 = Event(1, _noop, label="cancelled")
        e2 = Event(2, _noop, label="live")
        q.push(e1)
        q.push(e2)
        q.cancel(e1)
        assert q.pop().label == "live"

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        event = Event(1, _noop)
        q.push(event)
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time_none_when_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = Event(1, _noop)
        q.push(e1)
        q.push(Event(9, _noop))
        q.cancel(e1)
        assert q.peek_time() == 9

    def test_clear(self):
        q = EventQueue()
        q.push(Event(1, _noop))
        q.clear()
        assert len(q) == 0
        assert q.peek_time() is None

    def test_many_events_sorted(self):
        q = EventQueue()
        import random
        rng = random.Random(3)
        times = [rng.randrange(10_000) for _ in range(500)]
        for t in times:
            q.push(Event(t, _noop))
        popped = [q.pop().time for _ in range(500)]
        assert popped == sorted(times)
