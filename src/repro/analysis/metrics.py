"""Traffic metrics: latency percentiles, jitter, throughput.

These are the measurements behind E4 (latency/jitter of VOIP-class
traffic) and the generic quality numbers every experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.net.packet import Packet
from repro.sim.time import SECONDS, format_time


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Returns 0.0 for an empty sequence — experiments treat "no packets"
    as a degenerate-but-reportable outcome, not an error.
    """
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def interarrival_jitter_ps(arrival_times_ps: Sequence[int],
                           period_ps: int) -> float:
    """RFC 3550-style smoothed interarrival jitter, in picoseconds.

    For a nominally periodic stream (period ``period_ps``), jitter is
    the running average of ``|deviation of interarrival from period|``
    with gain 1/16, exactly as RTP receivers compute it.  This is the
    right measure for the paper's VOIP/gaming argument.
    """
    if len(arrival_times_ps) < 2:
        return 0.0
    jitter = 0.0
    previous = arrival_times_ps[0]
    for arrival in arrival_times_ps[1:]:
        deviation = abs((arrival - previous) - period_ps)
        jitter += (deviation - jitter) / 16.0
        previous = arrival
    return jitter


def latency_std_ps(latencies_ps: Sequence[int]) -> float:
    """Standard deviation of latency — the coarse jitter measure."""
    if len(latencies_ps) < 2:
        return 0.0
    return float(np.std(np.asarray(latencies_ps, dtype=np.float64)))


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution of a packet population, in picoseconds."""

    count: int
    mean_ps: float
    p50_ps: float
    p95_ps: float
    p99_ps: float
    max_ps: float
    std_ps: float

    def row(self) -> List[str]:
        """Human-readable table row (count, mean, p50, p99, max, std)."""
        return [
            str(self.count),
            format_time(round(self.mean_ps)),
            format_time(round(self.p50_ps)),
            format_time(round(self.p99_ps)),
            format_time(round(self.max_ps)),
            format_time(round(self.std_ps)),
        ]


def latency_summary(packets: Iterable[Packet],
                    priority: Optional[int] = None) -> LatencySummary:
    """Summarise delivered-packet latency, optionally filtered by priority."""
    latencies = [
        p.latency_ps for p in packets
        if p.latency_ps is not None
        and (priority is None or p.priority == priority)
    ]
    if not latencies:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    array = np.asarray(latencies, dtype=np.float64)
    return LatencySummary(
        count=len(latencies),
        mean_ps=float(array.mean()),
        p50_ps=float(np.percentile(array, 50)),
        p95_ps=float(np.percentile(array, 95)),
        p99_ps=float(np.percentile(array, 99)),
        max_ps=float(array.max()),
        std_ps=float(array.std()),
    )


def throughput_bps(delivered_bytes: int, duration_ps: int) -> float:
    """Achieved goodput over a window."""
    if duration_ps <= 0:
        return 0.0
    return delivered_bytes * 8 * SECONDS / duration_ps


def utilisation(delivered_bytes: int, duration_ps: int,
                capacity_bps: float) -> float:
    """Goodput as a fraction of ``capacity_bps``."""
    if capacity_bps <= 0 or duration_ps <= 0:
        return 0.0
    return min(1.0, throughput_bps(delivered_bytes, duration_ps)
               / capacity_bps)


__all__ = [
    "percentile",
    "interarrival_jitter_ps",
    "latency_std_ps",
    "LatencySummary",
    "latency_summary",
    "throughput_bps",
    "utilisation",
]
