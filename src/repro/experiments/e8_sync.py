"""E8 — sensitivity to host–switch clock skew.

§2: software scheduling "requires tight synchronization between the
host and switch, which is difficult to achieve at faster switching
times and higher transmission rates", while fast scheduling with
switch buffering "would remove issues relating to synchronization".

Setup: host-buffered (slow) mode with *uniform* traffic, so the
scheduler's matching changes from epoch to epoch (with static
permutation demand the same circuits come back every epoch and a late
host accidentally stays correct — skew only bites when schedules
move).  Sweep the hosts' clock skew: a skewed host opens its grant
window late, transmits past the true window edge, and its packets
arrive at an OCS that has moved to a different matching — counted as
misdirected/dark drops.  The switch-buffered (fast) regime runs the
same sweep as control: skew is irrelevant when grants act on
switch-side queues.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.scenario import Scenario, TrafficPhase
from repro.sim.time import (
    MICROSECONDS,
    MILLISECONDS,
    format_time,
)

N_PORTS = 8
EPOCH_PS = 200 * MICROSECONDS
HOLD_PS = 150 * MICROSECONDS
SWITCHING_PS = 20 * MICROSECONDS

#: Overrides this experiment honours (``repro run e8 --set ...``).
KNOWN_OVERRIDES = frozenset({"skews_ps", "duration_ps"})


def _run_point(skew_ps: int, buffer_mode: str, duration_ps: int,
               seed: int,
               scheduler: str = "hotspot") -> Tuple[float, float, int]:
    """Returns (delivery ratio, utilisation, ocs drop count)."""
    scenario = Scenario(
        name="e8-point",
        n_ports=N_PORTS,
        switching_time_ps=SWITCHING_PS,
        scheduler=scheduler,
        timing_preset="netfpga_sume",
        epoch_ps=EPOCH_PS,
        default_slot_ps=HOLD_PS,
        buffer_mode=buffer_mode,
        host_clock_skew_ps=skew_ps,
        duration_ps=duration_ps,
        seed=seed,
        traffic=(TrafficPhase(pattern="uniform", source="poisson",
                              load=0.3),),
    )
    result = scenario.build().run()
    ocs_drops = (result.drops["ocs_dark"]
                 + result.drops["ocs_misdirected"])
    return result.delivery_ratio, result.utilisation(), ocs_drops


def run(config: ExperimentConfig) -> ExperimentReport:
    """Goodput vs clock skew, host-buffered vs switch-buffered."""
    report = ExperimentReport(
        experiment_id="e8",
        title="host-switch synchronization sensitivity (slow needs it, "
              "fast does not)",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    skews = list(config.get(
        "skews_ps",
        [0, 50 * MICROSECONDS, 200 * MICROSECONDS]
        if config.quick else
        [0, 10 * MICROSECONDS, 50 * MICROSECONDS,
         100 * MICROSECONDS, 200 * MICROSECONDS,
         400 * MICROSECONDS]))
    duration = config.get(
        "duration_ps",
        6 * MILLISECONDS if config.quick else 20 * MILLISECONDS)
    seed = config.derive_seed(13)
    scheduler = config.scheduler or "hotspot"
    rows: List[List[str]] = []
    slow_ratio: List[float] = []
    fast_ratio: List[float] = []
    for skew_ps in skews:
        s_ratio, s_util, s_drops = _run_point(
            skew_ps, "host", duration, seed=seed, scheduler=scheduler)
        f_ratio, f_util, f_drops = _run_point(
            skew_ps, "switch", duration, seed=seed, scheduler=scheduler)
        slow_ratio.append(s_ratio)
        fast_ratio.append(f_ratio)
        rows.append([
            format_time(skew_ps),
            f"{s_ratio:.3f}", str(s_drops),
            f"{f_ratio:.3f}", str(f_drops),
        ])
    report.tables.append(render_table(
        ["clock skew", "slow delivery ratio", "slow OCS drops",
         "fast delivery ratio", "fast OCS drops"],
        rows,
        title=f"uniform traffic, {N_PORTS} ports, "
              f"epoch={format_time(EPOCH_PS)}, "
              f"switching={format_time(SWITCHING_PS)}"))
    report.data["skews_ps"] = skews
    report.data["slow_delivery_ratio"] = slow_ratio
    report.data["fast_delivery_ratio"] = fast_ratio
    if slow_ratio[-1] < slow_ratio[0] - 0.02:
        report.expectations.append(
            f"slow-mode delivery degrades with skew ({slow_ratio[0]:.3f} "
            f"-> {slow_ratio[-1]:.3f}) — 'tight synchronization' is "
            "load-bearing (paper §2)")
    spread = max(fast_ratio) - min(fast_ratio)
    if spread < 0.05:
        report.expectations.append(
            f"fast-mode delivery is skew-insensitive (spread "
            f"{spread:.3f}) — switch buffering 'remove[s] issues "
            "relating to synchronization'")
    return report


def run_e8(quick: bool = False) -> ExperimentReport:
    """Historical entry point; see :func:`run`."""
    return run(ExperimentConfig(quick=quick))


__all__ = ["run", "run_e8", "KNOWN_OVERRIDES"]
