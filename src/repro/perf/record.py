"""``BENCH_<rev>.json`` trajectory records: write, load, diff.

A record is one machine's measurement of the registered microbenchmark
suite at one revision.  Committing one per milestone (and uploading one
per CI run) gives the project a performance *trajectory*: regressions
show up as a ratio against the stored baseline instead of a vague
"feels slower".

Diffs are **advisory** by design — CI wall-clock on shared runners
jitters far too much to hard-fail on, so the gate warns on >25% drift
and a human decides.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import subprocess
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.perf.runner import BenchResult

#: Format version of the JSON document.
SCHEMA = 1
#: Relative drift beyond which a diff entry becomes a warning.
DEFAULT_THRESHOLD = 0.25
#: Suffix pairs that pair benches into (fast, baseline) speedup
#: comparisons: vector engine vs scalar reference, replica-batched
#: sweep path vs the sequential per-replica path, and the columnar
#: packet-path lane vs the per-packet reference lane.
_SPEEDUP_SUFFIXES = ((".vector", ".reference"),
                     (".batch", ".sequential"),
                     (".columnar", ".reference"))


def current_revision() -> str:
    """Identifier for the code being measured.

    ``REPRO_BENCH_REV`` overrides (CI and committed baselines use this
    for stable names); otherwise ``git describe --always --dirty``;
    ``unknown`` outside a checkout.
    """
    import os

    override = os.environ.get("REPRO_BENCH_REV")
    if override:
        return override
    try:
        described = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    revision = described.stdout.strip()
    return revision if described.returncode == 0 and revision else "unknown"


@dataclass(frozen=True)
class BenchRecord:
    """One suite measurement: environment + per-bench results."""

    revision: str
    created_utc: str
    python: str
    numpy: str
    machine: str
    quick: bool
    results: List[BenchResult] = field(default_factory=list)
    schema: int = SCHEMA

    @classmethod
    def capture(cls, results: List[BenchResult], quick: bool,
                revision: Optional[str] = None) -> "BenchRecord":
        """Wrap measured results with the current environment."""
        import datetime

        return cls(
            revision=revision or current_revision(),
            created_utc=datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds"),
            python=platform.python_version(),
            numpy=np.__version__,
            machine=f"{platform.system()}-{platform.machine()}",
            quick=quick,
            results=list(results),
        )

    def by_name(self) -> Dict[str, BenchResult]:
        """Results keyed by bench name."""
        return {result.name: result for result in self.results}

    def default_filename(self) -> str:
        """``BENCH_<rev>.json`` with filesystem-hostile characters
        replaced."""
        safe = "".join(c if c.isalnum() or c in "-._" else "-"
                       for c in self.revision)
        return f"BENCH_{safe}.json"

    # -- persistence ----------------------------------------------------------

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(dataclasses.asdict(self), indent=indent,
                          sort_keys=True)

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "BenchRecord":
        payload = json.loads(pathlib.Path(path).read_text())
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unsupported bench record schema "
                f"{payload.get('schema')!r} (expected {SCHEMA})")
        results = [BenchResult(**entry) for entry in payload["results"]]
        fields = {f.name for f in dataclasses.fields(cls)}
        meta = {key: value for key, value in payload.items()
                if key in fields and key != "results"}
        return cls(results=results, **meta)


def latest_record(directory: Union[str, pathlib.Path],
                  ) -> Optional[pathlib.Path]:
    """Newest ``BENCH_*.json`` in ``directory`` by recorded creation
    time (None when the directory holds none)."""
    directory = pathlib.Path(directory)
    best: Optional[pathlib.Path] = None
    best_created = ""
    for candidate in sorted(directory.glob("BENCH_*.json")):
        try:
            created = json.loads(candidate.read_text()).get(
                "created_utc", "")
        except (OSError, ValueError):
            continue
        if created >= best_created:
            best, best_created = candidate, created
    return best


@dataclass(frozen=True)
class BenchDelta:
    """One bench's drift between a baseline and a current record."""

    name: str
    #: ``regression`` / ``improvement`` / ``ok`` / ``new`` / ``missing``.
    status: str
    baseline_ns: Optional[float]
    current_ns: Optional[float]
    #: current / baseline (None when either side is absent).
    ratio: Optional[float]

    def render(self) -> str:
        if self.status == "new":
            return f"  NEW         {self.name}: no baseline entry"
        if self.status == "missing":
            return f"  MISSING     {self.name}: not in current run"
        assert self.ratio is not None
        drift = (self.ratio - 1.0) * 100.0
        tag = {"regression": "REGRESSION", "improvement": "IMPROVEMENT",
               "ok": "ok"}[self.status]
        return (f"  {tag:<11} {self.name}: {self.baseline_ns:,.0f} -> "
                f"{self.current_ns:,.0f} ns/op ({drift:+.1f}%)")


def diff_records(baseline: BenchRecord, current: BenchRecord,
                 threshold: float = DEFAULT_THRESHOLD) -> List[BenchDelta]:
    """Per-bench drift, current vs baseline, sorted worst-first.

    ``threshold`` is the relative change that flips an entry to
    ``regression`` (slower) or ``improvement`` (faster).

    A quick-mode current record diffed against a full-mode baseline
    (CI's perf-smoke vs the committed baseline) suppresses ``missing``
    entries: the full-only benches are absent by design, and permanent
    MISSING noise would train readers to ignore the one status that
    flags a bench silently dropped from the registry.
    """
    base = baseline.by_name()
    cur = current.by_name()
    expected_missing = current.quick and not baseline.quick
    deltas: List[BenchDelta] = []
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            deltas.append(BenchDelta(name, "new", None,
                                     cur[name].ns_per_op, None))
            continue
        if name not in cur:
            if not expected_missing:
                deltas.append(BenchDelta(name, "missing",
                                         base[name].ns_per_op, None, None))
            continue
        baseline_ns = base[name].ns_per_op
        current_ns = cur[name].ns_per_op
        ratio = current_ns / baseline_ns if baseline_ns else float("inf")
        if ratio > 1.0 + threshold:
            status = "regression"
        elif ratio < 1.0 - threshold:
            status = "improvement"
        else:
            status = "ok"
        deltas.append(
            BenchDelta(name, status, baseline_ns, current_ns, ratio))
    order = {"regression": 0, "missing": 1, "new": 2, "improvement": 3,
             "ok": 4}
    deltas.sort(key=lambda d: (order[d.status],
                               -(d.ratio or 0.0), d.name))
    return deltas


def engine_speedups(record: BenchRecord) -> Dict[str, float]:
    """Fast-over-baseline speedups from suffix-paired benches.

    Three pairings: ``<stem>.vector`` / ``<stem>.reference`` (the PR-3
    hot-path acceptance, ≥ 5× at ``fabric.islip1.uniform.n64``),
    ``<stem>.batch`` / ``<stem>.sequential`` (the sweep-throughput
    acceptance, ≥ 3× at ``sweep.fabric.uniform.n64``), and
    ``<stem>.columnar`` / ``<stem>.reference`` (the packet-path
    acceptance, ≥ 3× at ``packetpath.e2e.e4``).  The returned mapping
    is ``{stem: baseline_ns / fast_ns}``.
    """
    by_name = record.by_name()
    speedups: Dict[str, float] = {}
    for name, result in by_name.items():
        for fast_suffix, baseline_suffix in _SPEEDUP_SUFFIXES:
            if not name.endswith(fast_suffix):
                continue
            stem = name[: -len(fast_suffix)]
            baseline = by_name.get(stem + baseline_suffix)
            if baseline is not None and result.ns_per_op:
                speedups[stem] = baseline.ns_per_op / result.ns_per_op
    return speedups


__all__ = [
    "SCHEMA",
    "DEFAULT_THRESHOLD",
    "BenchRecord",
    "BenchDelta",
    "current_revision",
    "latest_record",
    "diff_records",
    "engine_speedups",
]
