"""Processing logic: classification, VOQs, requests, grant-driven dequeue.

Figure 2, left block.  "Incoming packets from hosts H1..Hn are sent to
the processing logic.  There, packets are classified into flows based on
configurable look-up rules and [placed] into their respective Virtual
Output Queue.  As the status of a VOQ changes, the subsystem generates
scheduling requests and transmits packets upon receiving transmission
grants from the scheduling logic."

Two operating modes mirror Figure 1:

* **switch-buffered** (fast scheduling) — packets land in VOQs here and
  leave on grants;
* **host-buffered** (slow scheduling) — hosts release packets only
  inside granted windows, so this block is a classify-and-forward
  pass-through toward the OCS (the switch has no memory to hold them;
  that is the premise of the slow regime).

Grant execution drains each granted VOQ at line rate into the OCS for
the duration of the window; packets that would overrun the window stay
queued.  Residue the scheduler assigned to the electrical path is moved
to the EPS on request (:meth:`ProcessingLogic.divert_to_eps`).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

import numpy as np

from repro.core.messages import Grant, Request
from repro.net.classifier import FlowClassifier
from repro.net.host import HostBufferMode
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.time import frame_tx_time_ps
from repro.sim.trace import Counter
from repro.switches.voq import VoqBank

#: Longest single batched drain run; bounds per-event work and the
#: chunk of future state committed at once.
_DRAIN_RUN_CAP = 512


class ProcessingLogic:
    """The ingress block of the hybrid switch.

    Parameters
    ----------
    sim, n_ports:
        Simulator and radix.
    port_rate_bps:
        Dequeue (fabric injection) rate per input port.
    mode:
        Buffering regime (see module docstring).
    classifier:
        Look-up rule table (a default-only table when None).
    voq_capacity_bytes:
        Per-VOQ cap (None = unbounded).
    ocs_sink / eps_sink:
        Where dequeued packets go; wired by the framework to the
        switching logic.
    on_request:
        Callback receiving each generated :class:`Request`.
    on_observe:
        Callback receiving ``(src, dst, nbytes)`` for every packet
        entering the VOQ path — the packet-stream tap a sketch-based
        demand estimator counts from.
    """

    def __init__(self, sim: Simulator, n_ports: int,
                 port_rate_bps: float,
                 mode: HostBufferMode = HostBufferMode.SWITCH_BUFFERED,
                 classifier: Optional[FlowClassifier] = None,
                 voq_capacity_bytes: Optional[int] = None,
                 ocs_sink: Optional[Callable[[Packet], None]] = None,
                 eps_sink: Optional[Callable[[Packet], None]] = None,
                 on_request: Optional[Callable[[Request], None]] = None,
                 on_observe: Optional[
                     Callable[[int, int, int], None]] = None,
                 ) -> None:
        self.sim = sim
        self.n_ports = n_ports
        self.port_rate_bps = port_rate_bps
        self.mode = mode
        self.classifier = classifier or FlowClassifier()
        self.ocs_sink = ocs_sink or _unwired
        self.eps_sink = eps_sink or _unwired
        self.on_request = on_request
        self.on_observe = on_observe
        self.voqs = VoqBank(sim, n_ports,
                            capacity_bytes=voq_capacity_bytes,
                            on_status_change=self._voq_changed)
        # Per-input active grant window: dst and window open/close times.
        self._window_dst: List[Optional[int]] = [None] * n_ports
        self._window_start: List[int] = [0] * n_ports
        self._window_end: List[int] = [0] * n_ports
        self._draining: List[bool] = [False] * n_ports
        self.requests_generated = Counter("processing.requests")
        self.classified_drops = Counter("processing.classified_drops")
        self.to_eps = Counter("processing.to_eps")
        self.to_ocs = Counter("processing.to_ocs")
        # Event labels precomputed per port: the drain loop schedules
        # one event per injected packet and must not build an f-string
        # for each.
        self._drain_labels = [f"drain[{src}]" for src in range(n_ports)]
        self._grant_labels = [f"grant.open[{src}]" for src in range(n_ports)]
        # Batched-drain fast lane (see enable_drain_batching).
        self._batch_inject: Optional[
            Callable[[List[Packet], List[int]], bool]] = None
        self._batch_gate: Optional[Callable[[int], bool]] = None

    # -- fast-lane wiring --------------------------------------------------------

    def enable_drain_batching(
            self,
            inject: Callable[[List[Packet], List[int]], bool],
            gate: Callable[[int], bool]) -> None:
        """Arm the batched drain: one event per drain run, not per packet.

        Within one open grant window the per-packet drain chain is a
        deterministic schedule: injection instants depend only on the
        head packets' sizes and the window edge, and nothing else may
        reconfigure the circuit or interleave on the egress wire while
        the fast lane's preconditions hold.  ``inject(packets, times)``
        commits a whole run into the fabric (the framework passes the
        switching logic's batched OCS entry); ``gate(dst)`` re-checks
        the dynamic preconditions per run (EPS quiescent, OCS stable,
        egress link reliable, bounded run).  Static preconditions —
        default classifier, no request listener, no queue hook — are
        checked here per run as well; any failure falls back to the
        per-packet reference path mid-window, packet for packet.
        """
        self._batch_inject = inject
        self._batch_gate = gate

    def disable_drain_batching(self) -> None:
        """Return to the per-packet drain (instrumentation hook)."""
        self._batch_inject = None
        self._batch_gate = None

    # -- ingress ---------------------------------------------------------------

    def ingress(self, packet: Packet) -> None:
        """Accept one packet from an uplink."""
        if not self.classifier.is_default:
            decision = self.classifier.classify(packet)
            if decision.action == "drop":
                self.classified_drops.add(1, packet.size)
                return
            if decision.action == "eps":
                self.to_eps.add(1, packet.size)
                self.eps_sink(packet)
                return
            if decision.dst != packet.dst:
                packet.dst = decision.dst
        if self.on_observe is not None:
            self.on_observe(packet.src, packet.dst, packet.size)
        if self.mode is HostBufferMode.HOST_BUFFERED:
            # The host released this packet against a grant; the switch
            # has no buffering for it — straight into the fabric.
            self.to_ocs.add(1, packet.size)
            self.ocs_sink(packet)
            return
        self.voqs.enqueue(packet)

    # -- demand view --------------------------------------------------------------

    def demand_bytes(self) -> np.ndarray:
        """Current VOQ occupancy matrix (the true demand)."""
        return self.voqs.demand_bytes()

    # -- grant execution -------------------------------------------------------------

    def apply_grant(self, grant: Grant) -> None:
        """Open the grant's transmission windows and start draining.

        A new grant for an input supersedes any previous window (the
        OCS has been reconfigured; the old circuit no longer exists).
        """
        if grant.matching.n != self.n_ports:
            raise ConfigurationError(
                f"grant matching is {grant.matching.n}-port, switch is "
                f"{self.n_ports}")
        for src, dst in grant.matching.pairs():
            self._window_dst[src] = dst
            self._window_start[src] = grant.start_ps
            self._window_end[src] = grant.end_ps

            def start(src_port: int = src) -> None:
                self._try_drain(src_port)

            if grant.start_ps <= self.sim.now:
                start()
            else:
                self.sim.at(grant.start_ps, start,
                            label=self._grant_labels[src])

    def close_windows(self) -> None:
        """Force-close every window (e.g. before an early reconfigure)."""
        for src in range(self.n_ports):
            self._window_dst[src] = None

    def divert_to_eps(self, residue_bytes: np.ndarray) -> int:
        """Move up to ``residue_bytes[i, j]`` from VOQ (i, j) to the EPS.

        Returns the number of bytes diverted.  Models the ToR-internal
        handoff of scheduler-designated residual traffic onto the
        electrical path; the EPS's own queues then pace it out.
        """
        diverted = 0
        src_idx, dst_idx = np.nonzero(residue_bytes > 0)
        for src, dst in zip(src_idx.tolist(), dst_idx.tolist()):
            if src == dst:
                continue
            budget = float(residue_bytes[src, dst])
            while budget > 0 and not self.voqs.is_empty(src, dst):
                head = self.voqs.head(src, dst)
                assert head is not None
                if head.size > budget:
                    break
                packet = self.voqs.dequeue(src, dst)
                budget -= packet.size
                diverted += packet.size
                self.to_eps.add(1, packet.size)
                self.eps_sink(packet)
        return diverted

    # -- internals ------------------------------------------------------

    def _voq_changed(self, src: int, dst: int, queued_bytes: int) -> None:
        """Status-change hook: emit a request, resume draining."""
        self.requests_generated.add(1)
        if self.on_request is not None:
            # Construct lazily: with no listener the Request object
            # would be allocated twice per packet just to be dropped.
            self.on_request(Request(src, dst, queued_bytes, self.sim.now))
        # A packet may have arrived inside an *open* window for this
        # pair; windows registered for a future start (the OCS is still
        # reconfiguring) must wait for their start event.
        if (queued_bytes > 0 and self._window_dst[src] == dst
                and self._window_start[src] <= self.sim.now
                and not self._draining[src]):
            self._try_drain(src)

    def _try_drain(self, src: int) -> None:
        """Drain VOQ (src, window dst) while the window stays open."""
        if self._draining[src]:
            return
        dst = self._window_dst[src]
        if dst is None:
            return
        self._draining[src] = True
        self._drain_step(src)

    def _drain_step(self, src: int) -> None:
        dst = self._window_dst[src]
        if (dst is None or self.sim.now >= self._window_end[src]
                or self.sim.now < self._window_start[src]):
            self._draining[src] = False
            return
        if self.voqs.is_empty(src, dst):
            self._draining[src] = False
            return
        if (self._batch_inject is not None
                and self.voqs._packet_rows[src][dst] > 1
                and self.on_request is None
                and self.classifier.is_default
                and self._batch_gate(dst)
                and self._drain_run(src, dst)):
            return
        head = self.voqs.head(src, dst)
        assert head is not None
        tx_ps = frame_tx_time_ps(head.size, self.port_rate_bps)
        if self.sim.now + tx_ps >= self._window_end[src]:
            # Would land on or past the window edge, where the next
            # reconfiguration may already be in progress; wait for the
            # next grant.
            self._draining[src] = False
            return
        packet = self.voqs.dequeue(src, dst)
        self.to_ocs.add(1, packet.size)

        def injected() -> None:
            self.ocs_sink(packet)
            self._drain_step(src)

        self.sim.schedule(tx_ps, injected, label=self._drain_labels[src])

    def _drain_run(self, src: int, dst: int) -> bool:
        """Batch one drain run; False to fall back to the per-packet path.

        Replays exactly the per-packet chain's schedule: packet ``i``
        is dequeued at ``t_i`` and injected at ``t_i + tx_i``, with
        ``t_0 = now`` and ``t_{i+1} = t_i + tx_i``, stopping at the
        packet whose serialisation would touch the window edge.  The
        run horizon-clips the way never-fired events would have: a
        packet is dequeued only if ``t_i`` is within the run bound, and
        injected only if its injection instant is.  One continuation
        event at the end of the run re-enters :meth:`_drain_step`,
        which handles the window-close / queue-empty terminals and any
        packets that arrived meanwhile.
        """
        queue = self.voqs.queue(src, dst)
        if queue.on_change is not None:
            return False
        horizon = self.sim.run_until
        window_end = self._window_end[src]
        rate = self.port_rate_bps
        times: List[int] = []
        inject_times: List[int] = []
        t = self.sim.now
        for packet in queue._queue:
            tx_ps = frame_tx_time_ps(packet.size, rate)
            if t + tx_ps >= window_end or t > horizon:
                break
            times.append(t)
            t += tx_ps
            if t <= horizon:
                inject_times.append(t)
            if len(times) == _DRAIN_RUN_CAP:
                break
        if len(times) < 2:
            return False
        packets = self.voqs.dequeue_run(src, dst, times)
        nbytes = 0
        for packet in packets:
            nbytes += packet.size
        self.to_ocs.add(len(packets), nbytes)
        if inject_times:
            self._batch_inject(packets[:len(inject_times)], inject_times)
        self.sim.at(t, partial(self._drain_step, src),
                    label=self._drain_labels[src])
        return True


def _unwired(packet: Packet) -> None:
    raise ConfigurationError(
        f"processing logic sink not wired (packet {packet.packet_id})")


__all__ = ["ProcessingLogic"]
