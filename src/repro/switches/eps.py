"""Electrical Packet Switch model.

In the hybrid architecture the EPS carries "the remaining traffic and
short bursts" (§1): anything the scheduler has not mapped onto a
circuit.  We model a store-and-forward, output-queued switch — the
standard abstraction for a commodity electrical ToR:

* per-output FIFO queues with a shared or per-port byte budget,
* a configurable fabric rate per output (the residual path is usually
  provisioned well below the OCS line rate — that asymmetry is exactly
  why hybrid designs need a good scheduler),
* a fixed forwarding latency (pipeline + lookup), defaulting to 500 ns,
  typical of a shallow-buffered commodity ASIC.

Output ports drain onto sinks (the shared egress downlinks) which the
framework connects.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.packet import Packet, wire_size
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, NANOSECONDS, transmission_time_ps
from repro.sim.trace import Counter
from repro.switches.buffers import DropPolicy, PacketQueue


class ElectricalPacketSwitch:
    """Output-queued store-and-forward packet switch.

    Parameters
    ----------
    sim, n_ports:
        Simulator and port count.
    port_rate_bps:
        Drain rate of each output queue onto its sink.
    forwarding_latency_ps:
        Ingress-to-egress-queue pipeline latency.
    queue_capacity_bytes:
        Per-output byte cap (tail drop beyond it); ``None`` = unbounded.
    output_sinks:
        ``output_sinks[j]`` consumes packets leaving output j.
    """

    def __init__(self, sim: Simulator, n_ports: int,
                 port_rate_bps: float = 10 * GIGABIT,
                 forwarding_latency_ps: int = 500 * NANOSECONDS,
                 queue_capacity_bytes: Optional[int] = None,
                 policy: DropPolicy = DropPolicy.TAIL_DROP,
                 output_sinks: Optional[
                     List[Callable[[Packet], None]]] = None) -> None:
        if n_ports < 2:
            raise ConfigurationError(f"EPS needs >= 2 ports, got {n_ports}")
        if port_rate_bps <= 0:
            raise ConfigurationError("EPS port rate must be positive")
        self.sim = sim
        self.n_ports = n_ports
        self.port_rate_bps = port_rate_bps
        self.forwarding_latency_ps = forwarding_latency_ps
        self._sinks = output_sinks or [_unconnected] * n_ports
        self._queues = [
            PacketQueue(sim, f"eps.out[{j}]",
                        capacity_bytes=queue_capacity_bytes, policy=policy)
            for j in range(n_ports)
        ]
        self._draining = [False] * n_ports
        self.forwarded = Counter("eps.forwarded")
        self.received = Counter("eps.received")
        # Packets accepted but not yet forwarded or dropped (pipeline +
        # queues + drain).  Plain int, independent of the counters, so
        # the fast lane's quiescence gate works even on untraced runs.
        self._inside = 0

    @property
    def is_quiescent(self) -> bool:
        """True when nothing is inside the EPS.

        While quiescent *and* no new ingress is possible except via
        scheduled events at least a pipeline + serialisation in the
        future, the EPS cannot put a packet onto a shared egress link —
        the condition the fast lane's batched OCS egress relies on.
        """
        return self._inside == 0

    def connect_output(self, port: int, sink: Callable[[Packet], None]) -> None:
        """Attach the consumer of output ``port``."""
        self._sinks[port] = sink

    # -- data plane ---------------------------------------------------------------

    def receive(self, packet: Packet) -> bool:
        """Accept a packet at ingress; False when tail-dropped at egress queue."""
        self.received.add(1, packet.size)
        self._inside += 1
        queue = self._queues[packet.dst]

        def arrive_at_output() -> None:
            if queue.enqueue(packet):
                self._start_drain(packet.dst)
            else:
                self._inside -= 1

        self.sim.schedule(self.forwarding_latency_ps, arrive_at_output,
                          label="eps.pipeline")
        return True

    # -- occupancy ------------------------------------------------------------------

    @property
    def total_queued_bytes(self) -> int:
        """Bytes across all output queues right now."""
        return sum(q.bytes for q in self._queues)

    def peak_queue_bytes(self) -> int:
        """Largest single-output peak occupancy seen so far."""
        return max(q.peak_bytes for q in self._queues)

    def drops_total(self) -> int:
        """Total packets tail-dropped across outputs."""
        return sum(q.drops.count for q in self._queues)

    def queue(self, port: int) -> PacketQueue:
        """The output queue for ``port`` (tests and probes)."""
        return self._queues[port]

    # -- internals ---------------------------------------------------------------------

    def _start_drain(self, port: int) -> None:
        if self._draining[port]:
            return
        self._draining[port] = True
        self._drain_next(port)

    def _drain_next(self, port: int) -> None:
        queue = self._queues[port]
        if queue.is_empty:
            self._draining[port] = False
            return
        packet = queue.dequeue()
        tx_ps = transmission_time_ps(wire_size(packet.size),
                                     self.port_rate_bps)

        def finish() -> None:
            packet.via = "eps"
            self.forwarded.add(1, packet.size)
            self._inside -= 1
            self._sinks[port](packet)
            self._drain_next(port)

        self.sim.schedule(tx_ps, finish, label="eps.drain")


def _unconnected(packet: Packet) -> None:
    raise ConfigurationError(
        f"EPS output for packet {packet.packet_id} is not connected")


__all__ = ["ElectricalPacketSwitch"]
