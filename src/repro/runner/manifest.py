"""Run manifests: merge shard outputs back into report shape.

After the executor finishes, the manifest is the durable record of what
ran: one row per job (spec key, what it was, cache hit or executed,
wall time, how many paper-shape checks passed).  ``merge_outcomes``
folds a whole sweep back into the existing
:class:`~repro.experiments.base.ExperimentReport` shape, so everything
downstream that knows how to render, assert on or persist a report
(benches, EXPERIMENTS.md tooling, tests) works unchanged on sweep
output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentReport
from repro.runner.executor import RunOutcome
from repro.runner.spec import jsonable


@dataclass
class ManifestEntry:
    key: str
    label: str
    cached: bool
    elapsed_s: float
    n_expectations: int
    #: Failure description for jobs that produced no real report
    #: (worker crash); ``None`` on success.
    error: "str | None" = None
    #: Failure-taxonomy tag (``CRASH``/``TIMEOUT``/``OOM``/
    #: ``QUARANTINED``/``ERROR``) when ``error`` is set, so automation
    #: can tell a governor kill from an entry-point exception.
    kind: "str | None" = None


class RunManifest:
    """Summary of one executor invocation."""

    def __init__(self, entries: List[ManifestEntry]) -> None:
        self.entries = entries

    @classmethod
    def from_outcomes(cls,
                      outcomes: Sequence[RunOutcome]) -> "RunManifest":
        return cls([
            ManifestEntry(
                key=o.spec.key(),
                label=o.spec.describe(),
                cached=o.cached,
                elapsed_s=o.elapsed_s,
                n_expectations=len(o.report.expectations),
                error=o.error,
                kind=o.kind,
            )
            for o in outcomes
        ])

    @classmethod
    def from_payload(cls, payload: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_payload` JSON.

        The inverse half of the taxonomy round-trip: CI and tests read
        a ``--json-out`` artifact back and assert on typed rows.
        Unknown fields are ignored; ``error``/``kind`` default to
        ``None`` for payloads written before the taxonomy existed.
        """
        entries = [
            ManifestEntry(
                key=str(raw["key"]),
                label=str(raw["label"]),
                cached=bool(raw["cached"]),
                elapsed_s=float(raw["elapsed_s"]),
                n_expectations=int(raw["n_expectations"]),
                error=raw.get("error"),
                kind=raw.get("kind"),
            )
            for raw in payload.get("entries", [])
        ]
        return cls(entries)

    @property
    def n_cached(self) -> int:
        return sum(1 for e in self.entries if e.cached)

    @property
    def n_failed(self) -> int:
        return sum(1 for e in self.entries if e.error is not None)

    @property
    def n_executed(self) -> int:
        return len(self.entries) - self.n_cached - self.n_failed

    def render(self) -> str:
        rows = [[e.key, e.label,
                 (e.kind or "FAIL") if e.error
                 else ("hit" if e.cached else "run"),
                 f"{e.elapsed_s:.2f}s", str(e.n_expectations)]
                for e in self.entries]
        failed = f", {self.n_failed} FAILED" if self.n_failed else ""
        table = render_table(
            ["spec", "job", "cache", "wall", "checks"], rows,
            title=f"run manifest: {len(self.entries)} jobs, "
                  f"{self.n_executed} executed, {self.n_cached} cached"
                  f"{failed}")
        if self.n_failed:
            lines = [table, ""]
            lines.extend(f"  [FAIL] {e.key}: {e.error}"
                         for e in self.entries if e.error)
            return "\n".join(lines)
        return table

    def to_payload(self) -> dict:
        return {
            "jobs": len(self.entries),
            "executed": self.n_executed,
            "cached": self.n_cached,
            "entries": [vars(e) for e in self.entries],
        }


def merge_outcomes(outcomes: Sequence[RunOutcome],
                   title: str = "sweep") -> ExperimentReport:
    """Shard outputs merged into one :class:`ExperimentReport`.

    ``data`` maps each spec key to ``{"spec", "data", "expectations"}``
    — the full per-job record, content-addressed like the cache.
    ``tables`` carries the manifest summary, and ``expectations``
    aggregates one line per job so ``report.render()`` reads as the
    sweep's checklist.
    """
    manifest = RunManifest.from_outcomes(outcomes)
    data: Dict[str, dict] = {}
    expectations: List[str] = []
    for outcome in outcomes:
        data[outcome.spec.key()] = {
            "spec": outcome.spec.canonical(),
            "data": outcome.report.data,
            "expectations": list(outcome.report.expectations),
        }
        expectations.append(
            f"{outcome.spec.describe()}: "
            f"{len(outcome.report.expectations)} checks satisfied")
    return ExperimentReport(
        experiment_id="sweep",
        title=title,
        tables=[manifest.render()],
        data=data,
        expectations=expectations,
    )


def write_json_report(outcomes: Sequence[RunOutcome], path) -> None:
    """Canonical JSON of a run: manifest + every report, spec-keyed.

    This is the machine-readable artifact CI uploads.  The
    ``"reports"`` section is deterministic — two runs of the same plan
    produce identical report payloads, which is what CI diffs.  The
    ``"manifest"`` section records *this* run (wall times, cache
    hit/run per job) and naturally differs between runs.
    """
    from repro.runner.cache import report_to_payload

    payload = {
        "manifest": RunManifest.from_outcomes(outcomes).to_payload(),
        "reports": {
            o.spec.key(): {
                "spec": o.spec.canonical(),
                "report": report_to_payload(o.report),
            }
            for o in outcomes
        },
    }
    Path(path).write_text(
        json.dumps(jsonable(payload), sort_keys=True, indent=1) + "\n",
        encoding="utf-8")


__all__ = ["RunManifest", "ManifestEntry", "merge_outcomes",
           "write_json_report"]
