"""c-Through-style hotspot scheduling.

The software baseline the paper measures itself against: c-Through
(Wang et al., SIGCOMM 2010) estimates demand from host buffer occupancy,
computes **one** maximum-weight perfect matching per epoch, holds the
circuits for the whole epoch, and lets everything else ride the
electrical network.

We reproduce that decision procedure:

* demand below ``threshold_bytes`` is ignored for circuit purposes
  (tiny flows never justify a circuit — they go to the EPS residue),
* an exact MWM picks the circuit set,
* the whole epoch duration ``hold_ps`` is attached to the single
  matching.

Pair this scheduler with the *software* timing model in
:mod:`repro.hwmodel.software` to get the full millisecond-era baseline,
or with the hardware model to see what the same policy would do at
nanosecond cadence.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching
from repro.sim.errors import SchedulingError


class HotspotScheduler(Scheduler):
    """One MWM per epoch over thresholded demand; residue to EPS."""

    name = "hotspot"

    def __init__(self, n_ports: int, hold_ps: int = 0,
                 threshold_bytes: float = 0.0) -> None:
        super().__init__(n_ports)
        if threshold_bytes < 0:
            raise SchedulingError("threshold must be >= 0")
        self.hold_ps = hold_ps
        self.threshold_bytes = threshold_bytes

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        eligible = np.where(demand >= max(self.threshold_bytes, 1e-12),
                            demand, 0.0)
        rows, cols = linear_sum_assignment(-eligible)
        out_of: List[Optional[int]] = [None] * n
        served = np.zeros_like(demand)
        for inp, out in zip(rows.tolist(), cols.tolist()):
            if eligible[inp, out] > 0:
                out_of[inp] = out
                served[inp, out] = demand[inp, out]
        residue = demand - served
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(
            matchings=[(Matching(out_of), self.hold_ps)],
            eps_residue=residue)


__all__ = ["HotspotScheduler"]
