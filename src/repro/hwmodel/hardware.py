"""FPGA/ASIC pipeline timing model.

Prices the scheduling loop as a synchronous digital design clocked at
``clock_hz`` — the NetFPGA-SUME fabric the paper targets runs its
datapath around 200–250 MHz; an ASIC implementation reaches 1 GHz.

Component models (all in clock cycles, converted to ps at the end):

* **Demand estimation** — per-VOQ byte counters update at line rate in
  parallel; snapshotting them into the scheduler is a register read
  behind a small mux tree: ``ceil(log2 n) + pipeline_depth`` cycles.
* **Computation** — per algorithm:

  - ``tdma``/``fixed-sequence``: one adder — 1 cycle.
  - ``pim``/``islip``: each iteration is a request wave, a grant
    priority-encoder (depth ``log2 n``) and an accept encoder:
    ``iterations * (2 * ceil(log2 n) + 2)`` cycles.  This is the
    classic single-cycle-per-iteration-at-moderate-n structure of
    commercial crossbar arbiters.
  - ``greedy-mwm``: a bitonic sort network over n² entries costs
    ``log2²(n²)/2`` stages pipelined, then n sweep cycles.
  - ``mwm``: exact MWM in hardware is a systolic auction: ~``n²``
    cycles with n parallel processing elements.
  - ``bvn``/``solstice``/``hotspot``: ``matchings`` sequential matching
    passes, each a Hopcroft–Karp-like wave of ~``2n`` cycles, plus an
    ``n``-cycle stuffing pass.

* **IO** — the grant matrix is n entries of ``ceil(log2 n)`` bits
  crossing a ``bus_bits``-wide on-chip bus.
* **Propagation** — board traces between the scheduler block and the
  switching logic: fixed ``propagation_ps`` (default 5 ns).
* **Synchronisation** — none: the scheduler and the datapath share a
  clock domain (this is the structural advantage the paper claims).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.hwmodel.timing import LatencyBreakdown, SchedulerTiming
from repro.sim.errors import ConfigurationError
from repro.sim.time import NANOSECONDS, SECONDS


class HardwareSchedulerTiming(SchedulerTiming):
    """Cycle-accurate-ish pricing of the loop on programmable logic.

    Parameters
    ----------
    clock_hz:
        Fabric clock (2e8 for NetFPGA-SUME class, 1e9 for ASIC class).
    pipeline_depth:
        Fixed pipeline stages for the demand snapshot path.
    bus_bits:
        Width of the grant/config bus between logic blocks.
    propagation_ps:
        Scheduler-to-switching-logic trace delay.
    """

    name = "hardware"

    def __init__(self, clock_hz: float = 200e6, pipeline_depth: int = 4,
                 bus_bits: int = 256,
                 propagation_ps: int = 5 * NANOSECONDS) -> None:
        if clock_hz <= 0:
            raise ConfigurationError("clock must be positive")
        if pipeline_depth < 1:
            raise ConfigurationError("pipeline depth must be >= 1")
        if bus_bits < 1:
            raise ConfigurationError("bus width must be >= 1 bit")
        self.clock_hz = clock_hz
        self.pipeline_depth = pipeline_depth
        self.bus_bits = bus_bits
        self.propagation_ps = propagation_ps

    # -- cycle helpers -----------------------------------------------------------

    @property
    def cycle_ps(self) -> float:
        """One clock period in picoseconds."""
        return SECONDS / self.clock_hz

    def _cycles_to_ps(self, cycles: float) -> int:
        return round(cycles * self.cycle_ps)

    def computation_cycles(self, algorithm: str, n_ports: int,
                           stats: Optional[Dict[str, int]] = None) -> int:
        """Cycle count of the schedule-computation stage (see module doc)."""
        stats = stats or {}
        log_n = max(1, math.ceil(math.log2(n_ports)))
        iterations = stats.get("iterations", log_n)
        matchings = stats.get("matchings", 1)
        if algorithm in ("tdma", "fixed-sequence"):
            return 1
        if algorithm in ("pim", "islip"):
            return iterations * (2 * log_n + 2)
        if algorithm == "wfa":
            # Pure combinational wavefront array: n wavefronts of one
            # gate delay each; ~16 waves settle per fabric clock.
            return max(1, math.ceil(n_ports / 16))
        if algorithm == "distributed-greedy":
            # One request/grant round — same structure as one PIM
            # iteration, plus a max-tree per port.
            return 2 * log_n + 2
        if algorithm == "greedy-mwm":
            sort_stages = (2 * log_n) * (2 * log_n + 1) // 2
            return sort_stages + n_ports
        if algorithm == "mwm":
            return n_ports * n_ports
        if algorithm in ("bvn", "solstice", "hotspot"):
            return n_ports + matchings * 2 * n_ports
        if algorithm == "eclipse":
            # Each greedy step prices several candidate MWMs; a
            # systolic MWM costs ~n^2 cycles and candidates pipeline.
            return iterations * n_ports * n_ports
        # Unknown algorithm: price it like an iterative matcher with a
        # full log-n iteration budget (conservative but not absurd).
        return log_n * (2 * log_n + 2)

    # -- SchedulerTiming -------------------------------------------------------------

    def breakdown(self, algorithm: str, n_ports: int,
                  stats: Optional[Dict[str, int]] = None) -> LatencyBreakdown:
        log_n = max(1, math.ceil(math.log2(n_ports)))
        demand_cycles = log_n + self.pipeline_depth
        compute_cycles = self.computation_cycles(algorithm, n_ports, stats)
        grant_bits = n_ports * log_n
        io_cycles = math.ceil(grant_bits / self.bus_bits)
        return LatencyBreakdown(
            demand_estimation_ps=self._cycles_to_ps(demand_cycles),
            computation_ps=self._cycles_to_ps(compute_cycles),
            io_ps=self._cycles_to_ps(io_cycles),
            propagation_ps=self.propagation_ps,
            synchronization_ps=0,
        )


__all__ = ["HardwareSchedulerTiming"]
