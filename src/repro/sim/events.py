"""Event and event-queue primitives.

The queue is a binary heap of ``(time, sequence, Event)`` tuples.  The
monotonically increasing sequence number guarantees a total order even
when many events share a timestamp, which makes runs deterministic and
lets FIFO semantics fall out naturally: events scheduled earlier at the
same instant fire earlier.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.errors import SimulationError


@dataclass
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute firing time in picoseconds.
    callback:
        Zero-argument callable invoked when the event fires.  Closures
        carry their own context; keeping the signature empty keeps the
        dispatch loop branch-free.
    label:
        Optional human-readable tag used by tracing and error messages.
    cancelled:
        Lazy-deletion flag.  Cancelled events stay in the heap but are
        skipped on pop; this is O(1) per cancel instead of O(n) removal.
    """

    time: int
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects.

    Not thread-safe; the simulator is single-threaded by design.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._sequence = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return self._live

    def push(self, event: Event) -> None:
        """Insert an event; O(log n)."""
        heapq.heappush(self._heap, (event.time, next(self._sequence), event))
        self._live += 1

    def pop(self) -> Event:
        """Remove and return the earliest live event; O(log n) amortised.

        Raises :class:`SimulationError` when empty.
        """
        while self._heap:
            __, __, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[int]:
        """Firing time of the earliest live event, or ``None`` if empty.

        Compacts cancelled events off the top as a side effect.
        """
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
        self._live = 0


__all__ = ["Event", "EventQueue"]
