"""Golden byte-identity for every quick experiment and library scenario.

``tests/golden/quick_report_hashes.json`` pins the canonical-JSON
payload hash of each quick report as produced by the tree *before* the
packet-path fast lane landed.  The fast lane (chunked sources, columnar
telemetry, eager egress, batched drains, vectorized analysis) is
default-on, so these tests are the proof that it is observably exact —
not approximately, byte for byte.

Regenerate the fixture only when a report is *intentionally* changed:

    PYTHONPATH=src python tests/test_golden_reports.py --regenerate
"""

import hashlib
import json
import pathlib

import pytest

from repro.experiments import ENTRY_POINTS
from repro.experiments.base import ExperimentConfig
from repro.runner.cache import report_to_payload
from repro.runner.spec import canonical_json
from repro.scenario.library import available_scenarios, get_scenario
from repro.scenario.report import run_scenario

GOLDEN_PATH = (pathlib.Path(__file__).parent / "golden"
               / "quick_report_hashes.json")


def _golden():
    return json.loads(GOLDEN_PATH.read_text())


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()


def _experiment_payload(exp_id: str) -> str:
    report = ENTRY_POINTS[exp_id](ExperimentConfig(quick=True))
    return canonical_json(report_to_payload(report))


def _scenario_payload(name: str) -> str:
    report = run_scenario(get_scenario(name),
                          ExperimentConfig(quick=True))
    return canonical_json(report_to_payload(report))


@pytest.mark.parametrize("exp_id", sorted(ENTRY_POINTS))
def test_quick_experiment_report_is_byte_identical(exp_id):
    golden = _golden()[f"exp:{exp_id}"]
    payload = _experiment_payload(exp_id)
    assert len(payload) == golden["bytes"]
    assert _digest(payload) == golden["sha256"]


@pytest.mark.parametrize("name", sorted(available_scenarios()))
def test_quick_scenario_report_is_byte_identical(name):
    golden = _golden()[f"scenario:{name}"]
    payload = _scenario_payload(name)
    assert len(payload) == golden["bytes"]
    assert _digest(payload) == golden["sha256"]


def test_fixture_covers_everything_registered():
    keys = set(_golden())
    expected = ({f"exp:{e}" for e in ENTRY_POINTS}
                | {f"scenario:{s}" for s in available_scenarios()})
    assert keys == expected


def _regenerate() -> None:
    out = {}
    for exp_id in sorted(ENTRY_POINTS):
        payload = _experiment_payload(exp_id)
        out[f"exp:{exp_id}"] = {"sha256": _digest(payload),
                                "bytes": len(payload)}
    for name in sorted(available_scenarios()):
        payload = _scenario_payload(name)
        out[f"scenario:{name}"] = {"sha256": _digest(payload),
                                   "bytes": len(payload)}
    GOLDEN_PATH.write_text(json.dumps(out, indent=2, sort_keys=True)
                           + "\n")
    print(f"regenerated {GOLDEN_PATH} ({len(out)} entries)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
