"""Tests for the control-plane message types and experiment reports."""

import dataclasses

import pytest

from repro.core.messages import CircuitConfig, Grant, Request
from repro.experiments.base import ExperimentReport
from repro.schedulers.matching import Matching


class TestMessages:
    def test_grant_end(self):
        grant = Grant(Matching.empty(4), start_ps=100, duration_ps=50,
                      issued_ps=90)
        assert grant.end_ps == 150

    def test_messages_are_frozen(self):
        request = Request(0, 1, 1000, 5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.src = 2
        grant = Grant(Matching.empty(2), 0, 1, 0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            grant.start_ps = 9
        config = CircuitConfig(Matching.empty(2), 0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.issued_ps = 9

    def test_request_carries_voq_state(self):
        request = Request(src=2, dst=5, queued_bytes=3000, issued_ps=77)
        assert (request.src, request.dst) == (2, 5)
        assert request.queued_bytes == 3000
        assert request.issued_ps == 77


class TestExperimentReport:
    def test_render_contains_title_and_tables(self):
        report = ExperimentReport("e9", "made-up experiment")
        report.tables.append("col\n---\n1")
        report.expectations.append("something held")
        text = report.render()
        assert "E9" in text
        assert "made-up experiment" in text
        assert "col" in text
        assert "[ok] something held" in text

    def test_render_without_expectations(self):
        report = ExperimentReport("e1", "t")
        assert "Checks:" not in report.render()
