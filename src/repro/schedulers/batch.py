"""Cross-replica scheduler drivers for the replica-batched fabric.

The replica-batched cell fabric (:mod:`repro.fabric.replicas`) holds
the VOQ state of ``R`` independent replicas stacked as one
``(R, n, n)`` array and needs, once per slot, one matching *per
replica*.  A :class:`ReplicaMatcher` produces exactly that: an
``(R, n)`` int64 stack of output vectors (``-1`` = dark input), one row
per replica, bit-identical to calling each replica's own scheduler
alone.

Two drivers:

* :class:`SequentialReplicaMatcher` — the universal fallback: loops the
  replicas calling each scheduler's validation-free
  :meth:`~repro.schedulers.base.Scheduler.compute_trusted`.  Works for
  any scheduler (stateful, randomised, hybrid) because it *is* the solo
  path, just driven from stacked state.
* :class:`BatchedIslipMatcher` — iSLIP's request/grant/accept phases
  on uint64-packed request words (``n <= 64`` ports): the round-robin
  pick becomes rotate + lowest-set-bit on ``(R, n)`` words, replacing
  ``R`` separate compute calls *and* the per-replica O(n²) rank
  matrices.  Replicas are independent, so the lift is pure data
  parallelism; the matchings and the pointer evolution are
  **identical** to the per-replica vector code (fuzz-held by
  ``tests/test_fabric_replicas.py``).

:func:`make_replica_matcher` picks the widest applicable driver.  The
batched driver requires *exactly* :class:`IslipScheduler` instances
(subclasses — notably the scalar reference implementation — must keep
their own compute path) with equal port counts, equal iteration
budgets, and at most 64 ports (one word per request row).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.schedulers.base import Scheduler
from repro.schedulers.islip import IslipScheduler
from repro.sim.errors import SchedulingError


class ReplicaMatcher:
    """One scheduling decision per replica from stacked demand.

    ``compute(counts)`` consumes the fabric's ``(R, n, n)`` VOQ-count
    stack (the same trusted-caller contract as ``compute_trusted``:
    non-negative, zero diagonal, not mutated) and returns an ``(R, n)``
    int64 output-vector stack.  ``sync()`` writes any internally
    stacked scheduler state back to the wrapped instances so they can
    be inspected — or reused solo — after a batched run.
    """

    #: True when the driver can consume uint64-packed occupancy words
    #: via :meth:`compute_from_words` (bit ``i`` of word ``[r, o]`` is
    #: VOQ (i, o) occupancy) — lets the fabric kernel maintain the
    #: words incrementally instead of re-deriving them per slot.
    packed_occupancy = False

    def __init__(self, schedulers: Sequence[Scheduler]) -> None:
        if not schedulers:
            raise SchedulingError("replica batch needs >= 1 scheduler")
        n = schedulers[0].n_ports
        if any(s.n_ports != n for s in schedulers):
            raise SchedulingError(
                "replica batch needs equal port counts, got "
                f"{[s.n_ports for s in schedulers]}")
        self.schedulers = list(schedulers)
        self.n_ports = n
        self.n_replicas = len(self.schedulers)

    def compute(self, counts: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def sync(self) -> None:
        """Write stacked state back to the scheduler instances."""


class SequentialReplicaMatcher(ReplicaMatcher):
    """Per-replica ``compute_trusted`` loop — works for any scheduler."""

    def compute(self, counts: np.ndarray) -> np.ndarray:
        out_of = np.empty((self.n_replicas, self.n_ports), dtype=np.int64)
        for replica, scheduler in enumerate(self.schedulers):
            out_of[replica] = (
                scheduler.compute_trusted(counts[replica]).first.as_array())
        return out_of


#: De Bruijn multiplier + position table: index of the (single) set bit
#: of a power-of-two uint64, branch-free and exact in integer space.
_DEBRUIJN = np.uint64(0x03F79D71B4CA8B09)
_DEBRUIJN_POS = np.zeros(64, dtype=np.int64)
with np.errstate(over="ignore"):  # the multiply wraps mod 2^64 by design
    _DEBRUIJN_POS[
        ((np.uint64(1) << np.arange(64, dtype=np.uint64)) * _DEBRUIJN)
        >> np.uint64(58)] = np.arange(64)


class BatchedIslipMatcher(ReplicaMatcher):
    """All replicas' iSLIP rounds on packed ``(R, n)`` request words.

    For ``n <= 64`` ports each output's request row fits one uint64, so
    both round-robin phases collapse to word ops: rotate the request
    word right by the pointer, isolate the lowest set bit (``x & -x``),
    and read its index from a De Bruijn table — "first requester at or
    after the pointer, cyclically", the exact pick the solo kernel's
    rank-matrix argmin makes, in O(R·n) words instead of O(R·n²)
    elements.  Grants are scattered into per-*input* words the same
    way, so the accept phase is one more rotate-and-isolate pass.

    Matched (replica, output) pairs are unique within an iteration, so
    the pointer updates are plain fancy-indexed scatters.  Pointers
    live in ``(R, n)`` arrays during a batched run; :meth:`sync` copies
    them back to the wrapped instances' lists.  The matchings and the
    pointer evolution are **identical** to the per-replica vector code.
    """

    def __init__(self, schedulers: Sequence[IslipScheduler]) -> None:
        super().__init__(schedulers)
        if any(type(s) is not IslipScheduler for s in schedulers):
            raise SchedulingError(
                "batched iSLIP drives exactly IslipScheduler instances")
        iterations = {s.iterations for s in schedulers}
        if len(iterations) != 1:
            raise SchedulingError(
                f"batched iSLIP needs equal iteration budgets, "
                f"got {sorted(iterations)}")
        if self.n_ports > 64:
            raise SchedulingError(
                "batched iSLIP packs request rows into uint64 words; "
                f"{self.n_ports} ports does not fit")
        self.iterations = iterations.pop()
        self._grant_ptr = np.array([s.grant_ptr for s in schedulers],
                                   dtype=np.uint64)
        self._accept_ptr = np.array([s.accept_ptr for s in schedulers],
                                    dtype=np.uint64)
        n = self.n_ports
        self._packed = np.zeros((self.n_replicas, n, 8), dtype=np.uint8)
        self._packed_words = self._packed.view(np.uint64)[:, :, 0] \
            if np.little_endian else None

    def sync(self) -> None:
        for replica, scheduler in enumerate(self.schedulers):
            scheduler.grant_ptr = [
                int(p) for p in self._grant_ptr[replica]]
            scheduler.accept_ptr = [
                int(p) for p in self._accept_ptr[replica]]

    def _request_words(self, counts: np.ndarray) -> np.ndarray:
        """(R, n) uint64: bit ``i`` of word ``[r, o]`` = VOQ (i, o) > 0."""
        # (R, out, in) orientation so each word collects one output's
        # requesting inputs; the transpose is a view, `> 0` materialises
        # it, packbits collapses it 8:1.
        pos = counts.transpose(0, 2, 1) > 0
        packed = np.packbits(pos, axis=2, bitorder="little")
        self._packed[:, :, :packed.shape[2]] = packed
        if self._packed_words is not None:
            return self._packed_words
        return (self._packed.astype(np.uint64)
                * (np.uint64(1) << (np.arange(8, dtype=np.uint64)
                                    * np.uint64(8)))).sum(
            axis=2, dtype=np.uint64)

    def _rotate_right(self, words: np.ndarray,
                      ptr: np.ndarray) -> np.ndarray:
        """Each n-bit word rotated right by its own pointer."""
        n = self.n_ports
        right = words >> ptr
        if n == 64:
            # `x << 64` is undefined; split the shift so ptr == 0 works.
            left = (words << (np.uint64(63) - ptr)) << np.uint64(1)
            return right | left
        left = words << (np.uint64(n) - ptr)
        return (right | left) & np.uint64((1 << n) - 1)

    packed_occupancy = True

    def compute(self, counts: np.ndarray) -> np.ndarray:
        return self.compute_from_words(self._request_words(counts))

    def compute_from_words(self, pos_words: np.ndarray) -> np.ndarray:
        n = self.n_ports
        replicas = self.n_replicas
        out_of = np.full((replicas, n), -1, dtype=np.int64)
        in_unmatched = np.zeros((replicas, n), dtype=np.uint64)
        in_unmatched[:] = np.uint64(1) << np.arange(n, dtype=np.uint64)
        out_open = np.ones((replicas, n), dtype=bool)
        grant_ptr = self._grant_ptr
        accept_ptr = self._accept_ptr
        one = np.uint64(1)
        for iteration in range(self.iterations):
            if iteration == 0:
                req = pos_words
            else:
                # Matched inputs drop out of every word; matched
                # outputs drop their whole word.
                in_mask = np.bitwise_or.reduce(in_unmatched, axis=1)
                req = np.where(out_open, pos_words & in_mask[:, None],
                               np.uint64(0))
            # Grant: first requesting input at or after the grant
            # pointer, cyclically == lowest set bit of the rotated word.
            rot = self._rotate_right(req, grant_ptr)
            granted = rot != 0
            if not granted.any():
                break
            rep_idx, out_idx = np.nonzero(granted)
            rot_hit = rot[rep_idx, out_idx]
            low = rot_hit & (~rot_hit + one)
            rank = _DEBRUIJN_POS[
                ((low * _DEBRUIJN) >> np.uint64(58)).astype(np.int64)]
            grant_in = (grant_ptr[rep_idx, out_idx].astype(np.int64)
                        + rank) % n
            # Accept: scatter each grant as bit `out` of its input's
            # word (distinct outputs -> distinct bits, so duplicate
            # targets just accumulate), then pick the first granting
            # output at or after the accept pointer the same way.
            grant_words = np.zeros((replicas, n), dtype=np.uint64)
            np.bitwise_or.at(grant_words.reshape(-1),
                             rep_idx * n + grant_in,
                             one << out_idx.astype(np.uint64))
            rot2 = self._rotate_right(grant_words, accept_ptr)
            acc_rep, acc_in = np.nonzero(rot2)
            rot2_hit = rot2[acc_rep, acc_in]
            low2 = rot2_hit & (~rot2_hit + one)
            rank2 = _DEBRUIJN_POS[
                ((low2 * _DEBRUIJN) >> np.uint64(58)).astype(np.int64)]
            new_out = (accept_ptr[acc_rep, acc_in].astype(np.int64)
                       + rank2) % n
            out_of[acc_rep, acc_in] = new_out
            if iteration + 1 < self.iterations:
                in_unmatched[acc_rep, acc_in] = 0
                out_open[acc_rep, new_out] = False
            if iteration == 0:
                # Pointer update rule: one past the matched partner,
                # first-iteration matches only.  (replica, output) and
                # (replica, input) pairs are unique within an
                # iteration, so no scatter collisions.
                grant_ptr[acc_rep, new_out] = \
                    ((acc_in + 1) % n).astype(np.uint64)
                accept_ptr[acc_rep, acc_in] = \
                    ((new_out + 1) % n).astype(np.uint64)
        return out_of


def make_replica_matcher(
        schedulers: Sequence[Scheduler]) -> ReplicaMatcher:
    """The widest applicable driver for this replica set.

    Exactly-``IslipScheduler`` sets with one shared iteration budget
    get the cross-replica batched driver; anything else (mixed types,
    subclasses, randomised or hybrid schedulers) falls back to the
    sequential driver, which is bit-identical by construction.
    """
    if (schedulers
            and all(type(s) is IslipScheduler for s in schedulers)
            and schedulers[0].n_ports <= 64
            and len({s.iterations for s in schedulers}) == 1):
        return BatchedIslipMatcher(schedulers)  # type: ignore[arg-type]
    return SequentialReplicaMatcher(schedulers)


__all__: List[str] = [
    "ReplicaMatcher",
    "SequentialReplicaMatcher",
    "BatchedIslipMatcher",
    "make_replica_matcher",
]
