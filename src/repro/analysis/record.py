"""Columnar packet telemetry: the structure-of-arrays delivery log.

Retaining one :class:`~repro.net.packet.Packet` object per delivered
frame is the reference path's biggest memory and collection cost: a
10-million-packet run holds 10 million Python objects alive just so the
analysis stage can walk their attributes once.  :class:`PacketLog` is
the fast lane's sink — hosts append each delivery into preallocated,
growable ``int64`` columns (emit/arrival timestamps, size, endpoints,
priority, flow id, queueing stamps, fabric code), and the analysis
pipeline consumes the columns directly as NumPy views, no copies.

``Packet`` stays available as a *lazy view*: :meth:`PacketLog.packet`
materialises one row back into a full ``Packet`` (and
:meth:`PacketLog.packets` a whole list) with every field bit-equal to
what the reference path would have retained — which is exactly how the
equivalence tests compare the two paths.

Timestamps that the reference path leaves as ``None`` (a packet that
never crossed a queue) are stored as the sentinel :data:`UNSET`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.net.packet import Packet

#: Column value standing in for ``None`` timestamps.
UNSET = -1

#: ``Packet.via`` is interned to an int8-sized code in column storage.
VIA_CODES = {None: 0, "ocs": 1, "eps": 2}
VIA_NAMES: List[Optional[str]] = [None, "ocs", "eps"]

#: Column names, in materialisation order.
COLUMNS = ("src", "dst", "size", "created_ps", "flow_id", "priority",
           "packet_id", "enqueued_ps", "dequeued_ps", "delivered_ps",
           "via_code")


class PacketLog:
    """Growable structure-of-arrays record of delivered packets.

    Parameters
    ----------
    capacity:
        Initial row preallocation; the log doubles when full, so append
        stays amortised O(1).
    """

    __slots__ = ("_cols", "_n")

    def __init__(self, capacity: int = 1024) -> None:
        capacity = max(1, int(capacity))
        self._cols = {name: np.empty(capacity, dtype=np.int64)
                      for name in COLUMNS}
        self._n = 0

    # -- writing ---------------------------------------------------------------

    def append(self, src: int, dst: int, size: int, created_ps: int,
               flow_id: int, priority: int, packet_id: int,
               enqueued_ps: Optional[int], dequeued_ps: Optional[int],
               delivered_ps: int, via_code: int) -> None:
        """Record one delivery (``None`` queue stamps become UNSET)."""
        i = self._n
        cols = self._cols
        if i == len(cols["src"]):
            self._grow()
            cols = self._cols
        cols["src"][i] = src
        cols["dst"][i] = dst
        cols["size"][i] = size
        cols["created_ps"][i] = created_ps
        cols["flow_id"][i] = flow_id
        cols["priority"][i] = priority
        cols["packet_id"][i] = packet_id
        cols["enqueued_ps"][i] = UNSET if enqueued_ps is None else enqueued_ps
        cols["dequeued_ps"][i] = UNSET if dequeued_ps is None else dequeued_ps
        cols["delivered_ps"][i] = delivered_ps
        cols["via_code"][i] = via_code
        self._n = i + 1

    def append_packet(self, packet: Packet, delivered_ps: int) -> None:
        """Record ``packet`` as delivered at ``delivered_ps``."""
        self.append(packet.src, packet.dst, packet.size,
                    packet.created_ps, packet.flow_id, packet.priority,
                    packet.packet_id, packet.enqueued_ps,
                    packet.dequeued_ps, delivered_ps,
                    VIA_CODES[packet.via])

    def _grow(self) -> None:
        new_cap = 2 * len(self._cols["src"])
        for name, arr in self._cols.items():
            grown = np.empty(new_cap, dtype=np.int64)
            grown[:self._n] = arr[:self._n]
            self._cols[name] = grown

    @classmethod
    def concatenate(cls, logs: Sequence["PacketLog"]) -> "PacketLog":
        """One log holding every row of ``logs``, in the given order."""
        total = sum(len(log) for log in logs)
        merged = cls(capacity=max(1, total))
        if total:
            for name in COLUMNS:
                merged._cols[name] = np.concatenate(
                    [log._cols[name][:len(log)] for log in logs])
        merged._n = total
        return merged

    # -- column views (no copies) ----------------------------------------------

    def __len__(self) -> int:
        return self._n

    def column(self, name: str) -> np.ndarray:
        """Trimmed view of one column (shares the log's storage)."""
        return self._cols[name][:self._n]

    @property
    def src(self) -> np.ndarray:
        return self.column("src")

    @property
    def dst(self) -> np.ndarray:
        return self.column("dst")

    @property
    def size(self) -> np.ndarray:
        return self.column("size")

    @property
    def created_ps(self) -> np.ndarray:
        return self.column("created_ps")

    @property
    def flow_id(self) -> np.ndarray:
        return self.column("flow_id")

    @property
    def priority(self) -> np.ndarray:
        return self.column("priority")

    @property
    def delivered_ps(self) -> np.ndarray:
        return self.column("delivered_ps")

    @property
    def via_code(self) -> np.ndarray:
        return self.column("via_code")

    # -- derived columns ---------------------------------------------------------

    def latency_ps(self) -> np.ndarray:
        """End-to-end latency per row (delivery − creation)."""
        return self.delivered_ps - self.created_ps

    def via_bytes(self, via: Optional[str]) -> int:
        """Total delivered bytes that rode fabric ``via``."""
        mask = self.via_code == VIA_CODES[via]
        return int(self.size[mask].sum())

    def total_bytes(self) -> int:
        """Total delivered bytes."""
        return int(self.size.sum())

    # -- lazy Packet views --------------------------------------------------------

    def packet(self, index: int) -> Packet:
        """Materialise row ``index`` back into a full :class:`Packet`."""
        if not 0 <= index < self._n:
            raise IndexError(f"row {index} out of range ({self._n} rows)")
        cols = self._cols

        def _opt(name: str) -> Optional[int]:
            value = int(cols[name][index])
            return None if value == UNSET else value

        return Packet(
            src=int(cols["src"][index]),
            dst=int(cols["dst"][index]),
            size=int(cols["size"][index]),
            created_ps=int(cols["created_ps"][index]),
            flow_id=int(cols["flow_id"][index]),
            priority=int(cols["priority"][index]),
            packet_id=int(cols["packet_id"][index]),
            enqueued_ps=_opt("enqueued_ps"),
            dequeued_ps=_opt("dequeued_ps"),
            delivered_ps=int(cols["delivered_ps"][index]),
            via=VIA_NAMES[int(cols["via_code"][index])],
        )

    def packets(self) -> Iterator[Packet]:
        """Materialise every row, in log order."""
        for index in range(self._n):
            yield self.packet(index)


__all__ = ["PacketLog", "UNSET", "VIA_CODES", "VIA_NAMES", "COLUMNS"]
