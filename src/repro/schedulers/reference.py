"""Scalar reference implementations of the vectorised schedulers.

The hot schedulers (iSLIP, greedy-MWM, Solstice) run numpy-vectorised
inner loops on the production path.  This module preserves the original
per-port Python loops — the seed implementations the vector code was
derived from — as executable specifications:

* the equivalence tests in ``tests/test_schedulers_vectorized.py``
  fuzz vector vs scalar and require **identical** matchings, pointer
  state and stats on every demand matrix;
* the ``repro perf`` fabric benchmarks run the reference stack
  (scalar fabric engine + scalar scheduler) against the vector stack,
  so the recorded speedup measures the whole hot-path overhaul rather
  than one layer;
* anyone modifying a vectorised algorithm can diff against code that
  reads like the pseudocode in the original papers.

These classes are deliberately **not** in the scheduler registry:
experiments and scenarios should never run them by accident.  They
subclass the production classes, so constructor validation and
:attr:`last_stats` semantics stay shared, and they override
``compute_trusted`` back to the checked scalar path — a reference
scheduler must never silently fall through to vector code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.schedulers.base import ScheduleResult
from repro.schedulers.bipartite import perfect_matching_on_support
from repro.schedulers.bvn import stuff_matrix
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.matching import Matching
from repro.schedulers.mwm import GreedyMwmScheduler
from repro.schedulers.solstice import SolsticeScheduler


class ReferenceIslipScheduler(IslipScheduler):
    """iSLIP with the original per-output/per-input scalar loops."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        matched_out: Dict[int, int] = {}
        matched_in: Dict[int, int] = {}
        rounds_used = 0
        for iteration in range(self.iterations):
            rounds_used += 1
            progress = False
            # Grant phase: each unmatched output picks the requesting
            # input nearest its pointer.
            grants: Dict[int, List[int]] = {}
            for out in range(n):
                if out in matched_in:
                    continue
                requesters = [
                    inp for inp in range(n)
                    if inp not in matched_out and demand[inp, out] > 0
                ]
                if not requesters:
                    continue
                chosen = self._round_robin_pick(
                    requesters, self.grant_ptr[out], n)
                grants.setdefault(chosen, []).append(out)
            # Accept phase: each input picks the granting output nearest
            # its pointer.
            for inp, granting in grants.items():
                accepted = self._round_robin_pick(
                    granting, self.accept_ptr[inp], n)
                matched_out[inp] = accepted
                matched_in[accepted] = inp
                progress = True
                if iteration == 0:
                    # Pointer update rule: one past the matched partner,
                    # only for first-iteration matches.
                    self.grant_ptr[accepted] = (inp + 1) % n
                    self.accept_ptr[inp] = (accepted + 1) % n
            if not progress:
                break
        out_of: List[Optional[int]] = [matched_out.get(i) for i in range(n)]
        self.last_stats = {"iterations": rounds_used, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


class ReferenceGreedyMwmScheduler(GreedyMwmScheduler):
    """Greedy MWM visiting edges one at a time in sorted order."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        src_idx, dst_idx = np.nonzero(demand > 0)
        weights = demand[src_idx, dst_idx]
        # Sort by weight descending, then (src, dst) ascending.
        order = np.lexsort((dst_idx, src_idx, -weights))
        out_of: List[Optional[int]] = [None] * n
        used_out = [False] * n
        added = 0
        for k in order.tolist():
            inp = int(src_idx[k])
            out = int(dst_idx[k])
            if out_of[inp] is None and not used_out[out]:
                out_of[inp] = out
                used_out[out] = True
                added += 1
                if added == n:
                    break
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


class ReferenceSolsticeScheduler(SolsticeScheduler):
    """Solstice with per-port Python loops in the peeling step."""

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        work = stuff_matrix(demand)
        plan: List[Tuple[Matching, int]] = []
        served = np.zeros_like(demand)
        min_slice = max(self._min_slice_bytes(), 1.0)
        iterations = 0
        max_entry = float(work.max())
        if max_entry > 0:
            threshold = 2.0 ** np.floor(np.log2(max_entry))
        else:
            threshold = 0.0
        while threshold >= min_slice:
            if (self.max_matchings is not None
                    and len(plan) >= self.max_matchings):
                break
            iterations += 1
            support = work >= threshold
            match = perfect_matching_on_support(support.tolist())
            if match is None:
                threshold /= 2.0
                continue
            slice_bytes = threshold
            real_pairs = [(i, match[i]) for i in range(n)
                          if demand[i, match[i]] - served[i, match[i]] > 0]
            for i in range(n):
                work[i, match[i]] -= slice_bytes
            if real_pairs:
                hold_ps = self._bytes_to_hold_ps(slice_bytes)
                plan.append(
                    (Matching.from_pairs(n, real_pairs), hold_ps))
                for i, j in real_pairs:
                    served[i, j] += slice_bytes
        residue = np.maximum(demand - served, 0.0)
        if not plan:
            plan = [(Matching.empty(n), 0)]
        self.last_stats = {"iterations": iterations, "matchings": len(plan)}
        return ScheduleResult(matchings=plan, eps_residue=residue)

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute(demand)


__all__ = [
    "ReferenceIslipScheduler",
    "ReferenceGreedyMwmScheduler",
    "ReferenceSolsticeScheduler",
]
