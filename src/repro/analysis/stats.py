"""Run statistics: confidence intervals and steady-state handling.

Simulation results without error bars invite over-reading.  This module
provides the two standard tools:

* :func:`batch_means_ci` — the method of batch means: chop a
  (correlated) output series into batches, treat batch averages as
  approximately independent, and build a Student-t confidence interval.
* :func:`truncate_warmup` — initial-transient deletion by the
  simple-and-robust MSER-lite rule: drop the prefix that minimises the
  standard error of the remainder.

Used by experiment code that reports a mean of anything measured over
simulated time (delays, occupancies, per-epoch utilisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats as sps

from repro.sim.errors import ConfigurationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n_batches: int

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    @property
    def relative_precision(self) -> float:
        """half_width / |mean| (inf when the mean is zero)."""
        if self.mean == 0:
            return float("inf")
        return self.half_width / abs(self.mean)

    def __str__(self) -> str:
        return (f"{self.mean:.6g} ± {self.half_width:.3g} "
                f"({self.confidence:.0%}, {self.n_batches} batches)")


def batch_means_ci(values: Sequence[float], n_batches: int = 10,
                   confidence: float = 0.95) -> ConfidenceInterval:
    """Batch-means confidence interval for a correlated series.

    ``values`` must be at least ``2 * n_batches`` long so every batch
    carries some information; trailing remainder samples are dropped.
    ``values`` may be any sequence or ndarray (a float64 array — e.g. a
    PacketLog-derived column — passes through without copying).
    """
    if n_batches < 2:
        raise ConfigurationError("need >= 2 batches")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    data = np.asarray(values, dtype=np.float64)
    if data.size < 2 * n_batches:
        raise ConfigurationError(
            f"need >= {2 * n_batches} samples for {n_batches} batches, "
            f"got {data.size}")
    batch_size = data.size // n_batches
    trimmed = data[:batch_size * n_batches]
    batches = trimmed.reshape(n_batches, batch_size).mean(axis=1)
    mean = float(batches.mean())
    if n_batches > 1:
        std_err = float(batches.std(ddof=1)) / np.sqrt(n_batches)
    else:
        std_err = 0.0
    t_crit = float(sps.t.ppf(0.5 + confidence / 2.0, df=n_batches - 1))
    return ConfidenceInterval(mean=mean, half_width=t_crit * std_err,
                              confidence=confidence,
                              n_batches=n_batches)


def truncate_warmup(values: Sequence[float],
                    max_fraction: float = 0.5) -> Tuple[int, List[float]]:
    """MSER-style warmup truncation.

    Returns ``(cut_index, values[cut_index:])`` where ``cut_index``
    minimises the standard error of the remaining mean, searched over
    prefixes up to ``max_fraction`` of the series.

    Every candidate tail's ``var / size`` score is evaluated at once
    from suffix cumulative sums — O(n) total instead of the literal
    O(n²) rescan (kept as
    :func:`repro.analysis.reference.reference_truncate_warmup` and
    fuzz-matched).  PacketLog columns pass through as arrays without
    per-cut copies.
    """
    if not 0.0 <= max_fraction < 1.0:
        raise ConfigurationError("max_fraction must be in [0, 1)")
    data = np.asarray(values, dtype=np.float64)
    n = data.size
    if n < 4:
        return 0, list(data)
    # Candidate cuts leave a tail of >= 2 samples (the reference scan
    # breaks there) and respect the max_fraction prefix bound.
    last_cut = min(int(n * max_fraction), n - 2)
    suffix_sum = np.cumsum(data[::-1])[::-1]
    suffix_sq = np.cumsum((data * data)[::-1])[::-1]
    sizes = (n - np.arange(last_cut + 1)).astype(np.float64)
    sums = suffix_sum[:last_cut + 1]
    squares = suffix_sq[:last_cut + 1]
    means = sums / sizes
    variances = squares / sizes - means * means
    # Cancellation can leave a tiny negative variance where the exact
    # value is ~0; clamp so the argmin ranks it like the reference's
    # non-negative var.
    np.maximum(variances, 0.0, out=variances)
    scores = variances / sizes
    best_cut = int(np.argmin(scores))
    return best_cut, list(data[best_cut:])


def compare_means(a: Sequence[float], b: Sequence[float],
                  confidence: float = 0.95) -> Tuple[float, bool]:
    """Difference of means with a Welch test.

    Returns ``(mean(a) - mean(b), significant)`` where ``significant``
    is True when the two-sided Welch t-test rejects equality at the
    given confidence.  Experiments use this before claiming "X beats Y".
    """
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.size < 2 or b_arr.size < 2:
        raise ConfigurationError("need >= 2 samples per side")
    diff = float(a_arr.mean() - b_arr.mean())
    if np.allclose(a_arr, a_arr[0]) and np.allclose(b_arr, b_arr[0]):
        # Degenerate zero-variance case: significance is exact equality.
        return diff, not np.isclose(diff, 0.0)
    __, p_value = sps.ttest_ind(a_arr, b_arr, equal_var=False)
    return diff, bool(p_value < (1.0 - confidence))


__all__ = [
    "ConfidenceInterval",
    "batch_means_ci",
    "truncate_warmup",
    "compare_means",
]
