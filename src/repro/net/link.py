"""Point-to-point link with serialisation and propagation delay.

The link is the only place in the model where bytes turn into time.  It
enforces FIFO ordering and non-overlapping serialisation: a packet
begins transmitting at ``max(now, previous packet's finish)``, occupies
the wire for ``wire_size/rate``, then arrives at the sink after the
propagation delay.

This matches the paper's accounting: propagation delay between host and
switch is one of the latency components that makes *software* scheduling
slow (§2), so it must be a first-class parameter.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet, wire_size
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.time import transmission_time_ps
from repro.sim.trace import Counter


class Link:
    """Unidirectional link.

    Parameters
    ----------
    sim:
        The simulator that owns time.
    name:
        Used in traces and error messages.
    rate_bps:
        Line rate in bits per second.
    propagation_ps:
        One-way propagation delay in picoseconds.  Intra-rack copper or
        fibre runs are a few metres: ~5 ns/m, so defaults elsewhere use
        tens of nanoseconds.
    sink:
        Callable invoked with each packet on arrival.  May be replaced
        after construction via :meth:`connect` (lets topologies wire
        rings of components without ordering headaches).
    """

    def __init__(self, sim: Simulator, name: str, rate_bps: float,
                 propagation_ps: int = 0,
                 sink: Optional[Callable[[Packet], None]] = None) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"link {name}: rate must be positive")
        if propagation_ps < 0:
            raise ConfigurationError(
                f"link {name}: propagation must be non-negative")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.propagation_ps = propagation_ps
        self._sink = sink
        self._free_at = 0
        self._down_until = 0
        self.accepted = Counter(f"{name}.accepted")
        self.delivered = Counter(f"{name}.delivered")
        self.fault_drops = Counter(f"{name}.fault_drops")
        self.busy_ps = 0
        # One label for the link's lifetime: send() schedules an event
        # per packet and must not allocate a fresh f-string each time.
        self._event_label = f"link:{name}"

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Set (or replace) the arrival sink."""
        self._sink = sink

    def send(self, packet: Packet) -> int:
        """Queue ``packet`` for transmission; returns its arrival time.

        The link has no internal buffer limit: back-pressure is the
        caller's job (hosts and switch logic gate what they hand to the
        wire).  Serialisation slots never overlap.
        """
        if self._sink is None:
            raise ConfigurationError(f"link {self.name} has no sink connected")
        if self.sim.now < self._down_until:
            # The wire is dark (fault injection): the frame is lost at
            # the transmitter, as a real PHY-down event would lose it.
            self.fault_drops.add(1, packet.size)
            return self._down_until
        self.accepted.add(1, packet.size)
        start = max(self.sim.now, self._free_at)
        tx_ps = transmission_time_ps(wire_size(packet.size), self.rate_bps)
        self._free_at = start + tx_ps
        self.busy_ps += tx_ps
        arrival = self._free_at + self.propagation_ps
        sink = self._sink

        def deliver() -> None:
            self.delivered.add(1, packet.size)
            sink(packet)

        self.sim.at(arrival, deliver, label=self._event_label)
        return arrival

    @property
    def free_at(self) -> int:
        """Earliest time the wire is idle again (== now when idle)."""
        return max(self._free_at, self.sim.now)

    @property
    def in_flight(self) -> int:
        """Packets accepted but not yet delivered (queued or on wire)."""
        return self.accepted.count - self.delivered.count

    def fail_until(self, up_at_ps: int) -> None:
        """Take the link down until ``up_at_ps`` (fault injection).

        Frames offered while down are dropped and counted in
        :attr:`fault_drops`.  Repeated calls extend the outage.
        """
        self._down_until = max(self._down_until, up_at_ps)

    @property
    def is_down(self) -> bool:
        """True while a fault outage is in effect."""
        return self.sim.now < self._down_until

    def utilisation(self, since_ps: int = 0) -> float:
        """Fraction of wall time the wire was busy since ``since_ps``."""
        window = self.sim.now - since_ps
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_ps / window)


__all__ = ["Link"]
