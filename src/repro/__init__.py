"""repro — hybrid electrical/optical data-center switch scheduling.

A full software reproduction of the framework proposed in *"Extreme
data-rate scheduling for the Data Center"* (Manihatty-Bojan, Zilberman,
Antichi, Moore — SIGCOMM 2015): a hybrid EPS/OCS top-of-rack switch
with pluggable scheduling logic, hardware and software scheduler timing
models, a library of scheduling algorithms, traffic generators, and the
analysis tooling to reproduce every quantitative claim in the paper.

Quickstart::

    from repro import FrameworkConfig, HybridSwitchFramework
    from repro.sim.time import MILLISECONDS, MICROSECONDS
    from repro.traffic import PoissonSource, UniformDestination

    config = FrameworkConfig(n_ports=8, scheduler="islip",
                             switching_time_ps=1 * MICROSECONDS)
    fw = HybridSwitchFramework(config)
    for host in fw.hosts:
        PoissonSource(fw.sim, host, rate_bps=4e9, n_ports=fw.n_ports,
                      rng=fw.sim.streams.stream(f"src{host.host_id}"))
    result = fw.run(2 * MILLISECONDS)
    print(result.latency().row(), result.utilisation())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.core.results import RunResult
from repro.net.host import HostBufferMode
from repro.schedulers import (
    Matching,
    Scheduler,
    ScheduleResult,
    available_schedulers,
    create_scheduler,
    register_scheduler,
)
from repro.sim.engine import Simulator

__version__ = "1.0.0"

__all__ = [
    "FrameworkConfig",
    "HybridSwitchFramework",
    "RunResult",
    "HostBufferMode",
    "Simulator",
    "Scheduler",
    "ScheduleResult",
    "Matching",
    "available_schedulers",
    "create_scheduler",
    "register_scheduler",
    "__version__",
]
