"""Tests for the control-plane package."""

import random

import numpy as np
import pytest

from repro.control.channel import ControlChannel
from repro.control.distributed import DistributedGreedyScheduler
from repro.schedulers.mwm import MwmScheduler
from repro.sim.errors import ConfigurationError


class TestControlChannel:
    def test_fixed_latency_delivery(self, sim):
        channel = ControlChannel(sim, "c", latency_ps=1000)
        seen = []
        channel.send("grant", lambda m: seen.append((m, sim.now)))
        sim.run()
        assert seen == [("grant", 1000)]

    def test_jitter_within_bounds(self, sim):
        channel = ControlChannel(sim, "c", latency_ps=1000,
                                 jitter_ps=500, rng=random.Random(1))
        times = []
        for __ in range(50):
            t = channel.send("m", lambda m: None)
            times.append(t - sim.now)
        assert all(1000 <= t <= 1500 for t in times)
        assert len(set(times)) > 1  # jitter actually varies

    def test_loss(self, sim):
        channel = ControlChannel(sim, "c", latency_ps=10,
                                 loss_rate=0.5, rng=random.Random(2))
        delivered = []
        for __ in range(200):
            channel.send("m", lambda m: delivered.append(m))
        sim.run()
        assert channel.lost.count > 50
        assert channel.sent.count == 200
        assert len(delivered) == 200 - channel.lost.count

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            ControlChannel(sim, "c", latency_ps=-1)
        with pytest.raises(ConfigurationError):
            ControlChannel(sim, "c", latency_ps=0, loss_rate=1.0)


class TestDistributedGreedy:
    def test_fresh_view_matches_heaviest_requests(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 100.0
        demand[2, 1] = 50.0   # loses the contention for output 1
        demand[1, 0] = 10.0
        sched = DistributedGreedyScheduler(3, staleness_epochs=0)
        matching = sched.compute(demand).first
        assert matching.output_for(0) == 1
        assert matching.output_for(1) == 0
        assert matching.output_for(2) is None  # one round only

    def test_stale_view_lags_demand_shift(self):
        sched = DistributedGreedyScheduler(3, staleness_epochs=2)
        old = np.zeros((3, 3))
        old[0, 1] = 100.0
        new = np.zeros((3, 3))
        new[0, 2] = 100.0
        # Two epochs of old demand fill the staleness window.
        sched.compute(old)
        sched.compute(old)
        # Demand has shifted, but the acting view is still `old`.
        matching = sched.compute(new).first
        assert matching.output_for(0) == 1

    def test_zero_staleness_tracks_immediately(self):
        sched = DistributedGreedyScheduler(3, staleness_epochs=0)
        new = np.zeros((3, 3))
        new[0, 2] = 100.0
        assert sched.compute(new).first.output_for(0) == 2

    def test_quality_below_centralized_mwm_under_contention(self):
        rng = np.random.default_rng(4)
        demand = rng.exponential(100, (6, 6))
        np.fill_diagonal(demand, 0.0)
        distributed = DistributedGreedyScheduler(6).compute(demand).first
        central = MwmScheduler(6).compute(demand).first
        assert distributed.weight(demand) <= central.weight(demand) + 1e-9

    def test_staleness_validation(self):
        with pytest.raises(ConfigurationError):
            DistributedGreedyScheduler(3, staleness_epochs=-1)

    def test_registered(self):
        from repro.schedulers.registry import create_scheduler
        sched = create_scheduler("distributed-greedy", n_ports=4,
                                 staleness_epochs=3)
        assert sched.staleness_epochs == 3
