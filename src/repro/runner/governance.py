"""Resource governance: per-job deadlines, memory ceilings, taxonomy.

A production sweep service fails by *overload and resource exhaustion*
at least as often as by crashing: one infinite loop at a pathological
sweep point, one memory-exploding config, and a campaign stalls
forever while every other job waits behind it.  This module is the
shared vocabulary the runner, the daemon and the remote workers use to
bound that blast radius:

* :class:`ResourceLimits` — the per-job ceilings (wall-clock deadline,
  RSS/address-space budget) a caller binds onto an executor.  The
  limits are *enforced in the worker process* (``resource.setrlimit``
  for memory, a ``SIGALRM`` interval timer for the deadline) and
  *backstopped by the supervisor*: a worker that stops producing
  results past ``deadline × grace`` is killed outright and its chunk
  requeued, so even a job hung inside a C extension — where Python
  signal delivery is deferred indefinitely — cannot stall the stream.
* The **failure taxonomy** — ``CRASH`` / ``TIMEOUT`` / ``OOM`` /
  ``QUARANTINED`` / ``ERROR`` — the typed FAIL kinds every manifest
  row, ``result`` frame and ``upload`` frame carries, so automation
  can tell "the entry point raised" from "the governor shot it".
* :class:`GovernedFailure` — the in-band value a governed worker
  returns *instead of* a result when a limit trips.  It travels the
  normal result path (pipe or shared memory), so a TIMEOUT costs one
  job, not the batch, and the pool machinery needs no new channels.

Everything here is dependency-free and picklable: limits ride task
queues into pool workers and JSON payloads over the service protocol.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

#: The worker process died (segfault, ``os._exit``, OOM-killer) and the
#: isolation retry pinned the death on this job.
FAIL_CRASH = "CRASH"
#: The job overran its wall-clock deadline — either the in-worker alarm
#: fired, or the supervisor's hang watchdog killed a silent worker.
FAIL_TIMEOUT = "TIMEOUT"
#: The job hit its memory ceiling (``RLIMIT_AS``) and allocation failed.
FAIL_OOM = "OOM"
#: The daemon refused to run a spec that already failed the same way
#: twice (poison-job quarantine; see ``repro.service.daemon``).
FAIL_QUARANTINED = "QUARANTINED"
#: The entry point raised an ordinary exception.
FAIL_ERROR = "ERROR"

FAILURE_KINDS = frozenset({FAIL_CRASH, FAIL_TIMEOUT, FAIL_OOM,
                           FAIL_QUARANTINED, FAIL_ERROR})

#: Fixed slack the supervisor-side watchdog adds on top of
#: ``deadline × grace`` per chunk: dispatch latency, queue round-trips
#: and result pickling are not the job's fault.
WATCHDOG_SLACK_S = 1.0


class JobTimeoutError(Exception):
    """Raised *inside a governed worker* when the deadline alarm fires."""


@dataclass(frozen=True)
class ResourceLimits:
    """Per-job execution ceilings (both optional; ``None`` = unbounded).

    ``timeout_s`` bounds one job's wall clock.  ``memory_mb`` bounds
    the worker's address space while a governed job runs (the soft
    ``RLIMIT_AS`` is lowered around the call and restored after).
    ``grace`` scales the supervisor watchdog: a worker silent for
    longer than ``timeout_s × items × grace`` (+ fixed slack) is
    presumed hung beyond signal reach and killed.
    """

    timeout_s: Optional[float] = None
    memory_mb: Optional[int] = None
    grace: float = 1.5

    def __post_init__(self) -> None:
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError(
                f"timeout_s must be > 0, got {self.timeout_s}")
        if self.memory_mb is not None and self.memory_mb < 1:
            raise ValueError(
                f"memory_mb must be >= 1, got {self.memory_mb}")
        if self.grace < 1.0:
            raise ValueError(f"grace must be >= 1.0, got {self.grace}")

    @property
    def enabled(self) -> bool:
        """Whether any ceiling is actually set."""
        return self.timeout_s is not None or self.memory_mb is not None

    @property
    def memory_bytes(self) -> Optional[int]:
        if self.memory_mb is None:
            return None
        return self.memory_mb * 1024 * 1024

    def watchdog_deadline_s(self, n_items: int) -> Optional[float]:
        """Supervisor patience for a chunk of ``n_items`` jobs.

        The in-worker alarm bounds each item at ``timeout_s``, so a
        healthy chunk finishes within ``timeout_s × n_items``; a
        worker silent past that times grace is hung where signals
        cannot reach it (a C inner loop) and must be shot.
        """
        if self.timeout_s is None:
            return None
        return (self.timeout_s * max(1, n_items) * self.grace
                + WATCHDOG_SLACK_S)

    def to_payload(self) -> Dict[str, Any]:
        """Plain JSON types (CLI plumbing, protocol frames)."""
        return {"timeout_s": self.timeout_s,
                "memory_mb": self.memory_mb,
                "grace": self.grace}

    @classmethod
    def from_payload(
            cls, payload: Optional[Dict[str, Any]],
    ) -> "Optional[ResourceLimits]":
        """Inverse of :meth:`to_payload`; ``None`` passes through."""
        if payload is None:
            return None
        return cls(
            timeout_s=payload.get("timeout_s"),
            memory_mb=payload.get("memory_mb"),
            grace=float(payload.get("grace", 1.5)),
        )


@dataclass
class GovernedFailure:
    """A typed failure value standing in for a governed job's result.

    Returned (not raised) by :func:`governed_call` so it streams back
    through the ordinary result path; the executor converts it into a
    failed :class:`~repro.runner.executor.RunOutcome` with ``kind``.
    """

    kind: str
    message: str


def _alarm(signum, frame):  # noqa: ARG001 — signal handler shape
    raise JobTimeoutError("wall-clock deadline expired")


def _lower_memory_ceiling(limit_bytes: int) -> Callable[[], None]:
    """Lower the soft ``RLIMIT_AS``; returns a restore callable.

    Best-effort by design: platforms without the ``resource`` module
    (or where the hard limit already denies the request) keep the old
    behaviour — the supervisor watchdog still bounds the damage.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover — non-POSIX
        return lambda: None
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    target = limit_bytes if hard == resource.RLIM_INFINITY \
        else min(limit_bytes, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (target, hard))
    except (ValueError, OSError):  # pragma: no cover — denied
        return lambda: None

    def restore() -> None:
        try:
            resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
        except (ValueError, OSError):  # pragma: no cover
            pass

    return restore


def governed_call(fn: Callable, item: Any,
                  limits: ResourceLimits) -> Any:
    """``fn(item)`` under ``limits``; limit trips return typed values.

    Runs in a worker process's main thread (``SIGALRM`` delivery
    requires it).  A deadline overrun returns
    ``GovernedFailure(TIMEOUT)``, an allocation failure under the
    ceiling returns ``GovernedFailure(OOM)``; any other exception
    propagates unchanged so the pool's existing error forwarding still
    applies.  Both limits are scoped to the call: the alarm is cleared
    and the address-space limit restored on every exit path, so
    ungoverned work on the same worker runs unbounded as before.
    """
    restore: Optional[Callable[[], None]] = None
    memory_bytes = limits.memory_bytes
    if memory_bytes is not None:
        restore = _lower_memory_ceiling(memory_bytes)
    armed = limits.timeout_s is not None
    if armed:
        signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, limits.timeout_s)
    try:
        return fn(item)
    except JobTimeoutError:
        return GovernedFailure(
            FAIL_TIMEOUT,
            f"job exceeded its {limits.timeout_s:g}s wall-clock "
            "deadline")
    except MemoryError:
        return GovernedFailure(
            FAIL_OOM,
            f"job exceeded its {limits.memory_mb}MB memory ceiling")
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        if restore is not None:
            restore()


__all__ = [
    "ResourceLimits",
    "GovernedFailure",
    "JobTimeoutError",
    "governed_call",
    "FAIL_CRASH",
    "FAIL_TIMEOUT",
    "FAIL_OOM",
    "FAIL_QUARANTINED",
    "FAIL_ERROR",
    "FAILURE_KINDS",
    "WATCHDOG_SLACK_S",
]
