"""Tests for the processing logic block."""

import numpy as np
import pytest

from repro.core.messages import Grant
from repro.core.processing import ProcessingLogic
from repro.net.classifier import ClassifierRule, FlowClassifier
from repro.net.host import HostBufferMode
from repro.net.packet import Packet
from repro.schedulers.matching import Matching
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, MICROSECONDS


def _logic(sim, n=4, mode=HostBufferMode.SWITCH_BUFFERED,
           classifier=None):
    to_ocs, to_eps = [], []
    logic = ProcessingLogic(
        sim, n, port_rate_bps=10 * GIGABIT, mode=mode,
        classifier=classifier,
        ocs_sink=to_ocs.append, eps_sink=to_eps.append)
    return logic, to_ocs, to_eps


def _packet(src=0, dst=1, size=1500, priority=0):
    return Packet(src=src, dst=dst, size=size, created_ps=0,
                  priority=priority)


class TestIngress:
    def test_default_path_is_voq(self, sim):
        logic, to_ocs, to_eps = _logic(sim)
        logic.ingress(_packet())
        assert not to_ocs and not to_eps
        assert logic.voqs.demand_bytes()[0, 1] == 1500

    def test_eps_rule_bypasses_voq(self, sim):
        classifier = FlowClassifier([ClassifierRule(action="eps",
                                                    priority_class=1)])
        logic, __, to_eps = _logic(sim, classifier=classifier)
        logic.ingress(_packet(priority=1))
        assert len(to_eps) == 1
        assert logic.voqs.total_bytes == 0

    def test_drop_rule(self, sim):
        classifier = FlowClassifier([ClassifierRule(action="drop", src=0)])
        logic, to_ocs, to_eps = _logic(sim, classifier=classifier)
        logic.ingress(_packet())
        assert logic.classified_drops.count == 1
        assert not to_ocs and not to_eps

    def test_redirect_changes_voq(self, sim):
        classifier = FlowClassifier([
            ClassifierRule(action="voq", src=0, redirect_dst=3)])
        logic, __, __e = _logic(sim, classifier=classifier)
        logic.ingress(_packet(dst=1))
        assert logic.voqs.demand_bytes()[0, 3] == 1500

    def test_host_buffered_mode_forwards_straight_to_ocs(self, sim):
        logic, to_ocs, __ = _logic(sim, mode=HostBufferMode.HOST_BUFFERED)
        logic.ingress(_packet())
        assert len(to_ocs) == 1
        assert logic.voqs.total_bytes == 0

    def test_requests_generated_on_status_change(self, sim):
        logic, __, __e = _logic(sim)
        requests = []
        logic.on_request = requests.append
        logic.ingress(_packet())
        assert len(requests) == 1
        assert requests[0].src == 0 and requests[0].dst == 1
        assert requests[0].queued_bytes == 1500


class TestGrantExecution:
    def test_drains_granted_voq_during_window(self, sim):
        logic, to_ocs, __ = _logic(sim)
        for __i in range(3):
            logic.ingress(_packet())
        grant = Grant(Matching.from_dict(4, {0: 1}),
                      start_ps=0, duration_ps=100 * MICROSECONDS,
                      issued_ps=0)
        logic.apply_grant(grant)
        sim.run()
        assert len(to_ocs) == 3
        assert logic.voqs.is_empty(0, 1)

    def test_window_respects_end(self, sim):
        logic, to_ocs, __ = _logic(sim)
        for __i in range(10):
            logic.ingress(_packet())
        # Window fits roughly two 1518B serialisations at 10G (~2.4us).
        grant = Grant(Matching.from_dict(4, {0: 1}),
                      start_ps=0, duration_ps=2_500_000, issued_ps=0)
        logic.apply_grant(grant)
        sim.run()
        assert len(to_ocs) == 2
        assert logic.voqs.demand_packets()[0, 1] == 8

    def test_future_window_waits_for_start(self, sim):
        logic, to_ocs, __ = _logic(sim)
        logic.ingress(_packet())
        grant = Grant(Matching.from_dict(4, {0: 1}),
                      start_ps=50 * MICROSECONDS,
                      duration_ps=50 * MICROSECONDS, issued_ps=0)
        logic.apply_grant(grant)
        sim.run(until=40 * MICROSECONDS)
        assert not to_ocs  # blackout still in progress
        sim.run()
        assert len(to_ocs) == 1

    def test_packet_arriving_mid_window_is_drained(self, sim):
        logic, to_ocs, __ = _logic(sim)
        grant = Grant(Matching.from_dict(4, {0: 1}),
                      start_ps=0, duration_ps=100 * MICROSECONDS,
                      issued_ps=0)
        logic.apply_grant(grant)
        sim.at(10 * MICROSECONDS, lambda: logic.ingress(_packet()))
        sim.run()
        assert len(to_ocs) == 1

    def test_packet_arriving_before_window_start_not_sent_early(self, sim):
        logic, to_ocs, __ = _logic(sim)
        grant = Grant(Matching.from_dict(4, {0: 1}),
                      start_ps=20 * MICROSECONDS,
                      duration_ps=10 * MICROSECONDS, issued_ps=0)
        logic.apply_grant(grant)
        # Arrives during the blackout: must wait for the window.
        sim.at(5 * MICROSECONDS, lambda: logic.ingress(_packet()))
        sim.run(until=19 * MICROSECONDS)
        assert not to_ocs
        sim.run()
        assert len(to_ocs) == 1

    def test_ungranted_voq_not_drained(self, sim):
        logic, to_ocs, __ = _logic(sim)
        logic.ingress(_packet(src=2, dst=3))
        grant = Grant(Matching.from_dict(4, {0: 1}),
                      start_ps=0, duration_ps=100 * MICROSECONDS,
                      issued_ps=0)
        logic.apply_grant(grant)
        sim.run()
        assert not to_ocs

    def test_port_count_mismatch_rejected(self, sim):
        logic, __, __e = _logic(sim, n=4)
        grant = Grant(Matching.empty(5), 0, 10, 0)
        with pytest.raises(ConfigurationError):
            logic.apply_grant(grant)

    def test_close_windows(self, sim):
        logic, to_ocs, __ = _logic(sim)
        grant = Grant(Matching.from_dict(4, {0: 1}),
                      start_ps=0, duration_ps=100 * MICROSECONDS,
                      issued_ps=0)
        logic.apply_grant(grant)
        logic.close_windows()
        logic.ingress(_packet())
        sim.run()
        assert not to_ocs


class TestEpsDivert:
    def test_diverts_up_to_budget(self, sim):
        logic, __, to_eps = _logic(sim)
        for __i in range(4):
            logic.ingress(_packet(size=1000))
        residue = np.zeros((4, 4))
        residue[0, 1] = 2500.0  # fits two 1000B packets
        diverted = logic.divert_to_eps(residue)
        assert diverted == 2000
        assert len(to_eps) == 2
        assert logic.voqs.demand_packets()[0, 1] == 2

    def test_zero_residue_diverts_nothing(self, sim):
        logic, __, to_eps = _logic(sim)
        logic.ingress(_packet())
        assert logic.divert_to_eps(np.zeros((4, 4))) == 0
        assert not to_eps

    def test_divert_skips_diagonal(self, sim):
        logic, __, to_eps = _logic(sim)
        residue = np.zeros((4, 4))
        residue[2, 2] = 1e9
        assert logic.divert_to_eps(residue) == 0
