"""Tests for the ``repro`` CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_quick(self):
        args = build_parser().parse_args(["run", "e2", "--quick"])
        assert args.experiment == ["e2"]
        assert args.quick
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_run_accepts_multiple_experiments(self):
        args = build_parser().parse_args(
            ["run", "e1", "e3", "--jobs", "4"])
        assert args.experiment == ["e1", "e3"]
        assert args.jobs == 4

    def test_sweep_command(self):
        args = build_parser().parse_args(
            ["sweep", "e5", "--replicas", "3", "--base-seed", "7",
             "--set", "n_ports=8,16"])
        assert args.experiment == ["e5"]
        assert args.replicas == 3
        assert args.base_seed == 7
        assert args.set == ["n_ports=8,16"]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "islip" in out
        assert "netfpga_sume" in out

    def test_list_shows_one_line_docs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Experiments and schedulers both carry descriptions now.
        assert "Figure 1" in out
        assert "iSLIP" in out
        assert "incast" in out

    def test_run_e2_quick(self, capsys):
        assert main(["run", "e2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "cpu_helios" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_override_surfaces_as_warning(self, capsys):
        assert main(["run", "e2", "--quick",
                     "--set", "port_countz=[8]"]) == 0
        out = capsys.readouterr().out
        assert "Warnings:" in out
        assert "port_countz" in out

    def test_known_override_warns_nothing(self, capsys):
        assert main(["run", "e2", "--quick",
                     "--set", "port_counts=[8]"]) == 0
        assert "Warnings:" not in capsys.readouterr().out


class TestScenarioCommands:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("uniform", "incast", "failure-storm", "diurnal"):
            assert name in out

    def test_scenario_show_is_canonical_json(self, capsys):
        assert main(["scenario", "show", "incast"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "incast"
        assert payload["traffic"][0]["pattern"] == "incast"

    def test_scenario_show_applies_overrides(self, capsys):
        assert main(["scenario", "show", "uniform", "--quick",
                     "--set", "n_ports=4",
                     "--set", "traffic.0.load=0.9"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_ports"] == 4
        assert payload["traffic"][0]["load"] == 0.9
        assert payload["duration_ps"] == payload["quick_duration_ps"]

    def test_scenario_show_unknown_name(self, capsys):
        assert main(["scenario", "show", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenario_show_bad_override_path(self, capsys):
        assert main(["scenario", "show", "uniform",
                     "--set", "n_portz=4"]) == 2
        assert "n_portz" in capsys.readouterr().err

    def test_scenario_run_quick(self, capsys):
        assert main(["scenario", "run", "uniform", "--quick",
                     "--set", "duration_ps=600000000"]) == 0
        out = capsys.readouterr().out
        assert "SCENARIO:UNIFORM" in out
        assert "utilisation" in out

    def test_scenario_run_unknown_name(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenario_run_bad_override_path_exits_cleanly(self, capsys):
        assert main(["scenario", "run", "uniform",
                     "--set", "n_portz=4"]) == 2
        err = capsys.readouterr().err
        assert "n_portz" in err
        assert "Traceback" not in err

    def test_sweep_accepts_scenario_ids(self, capsys):
        assert main(["sweep", "scenario:uniform", "--quick",
                     "--replicas", "2", "--base-seed", "5",
                     "--set", "traffic.0.load=0.2,0.4",
                     "--set", "duration_ps=400000000"]) == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out
        assert "scenario:uniform" in out

    def test_run_rejects_unknown_scenario_id(self, capsys):
        assert main(["run", "scenario:nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_scenario_id_bad_override_exits_cleanly(self, capsys):
        assert main(["run", "scenario:uniform",
                     "--set", "n_portz=4"]) == 2
        assert "n_portz" in capsys.readouterr().err

    def test_sweep_scenario_id_bad_override_exits_cleanly(self, capsys):
        assert main(["sweep", "scenario:uniform",
                     "--set", "n_portz=4,8"]) == 2
        assert "n_portz" in capsys.readouterr().err

    def test_scenario_run_json_out(self, tmp_path, capsys):
        out_path = tmp_path / "scenario.json"
        assert main(["scenario", "run", "uniform", "--quick",
                     "--set", "duration_ps=600000000",
                     "--json-out", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["manifest"]["jobs"] == 1
        (report,) = payload["reports"].values()
        assert report["spec"]["experiment_id"] == "scenario:uniform"
