"""Run results: everything an experiment needs to report.

:class:`RunResult` is a passive record assembled by the framework after
``run()``: delivered packets with full timestamps, byte/drop accounting
per fabric, buffering peaks for the Figure 1 measurements, and the
scheduling-loop latency record for E2/E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.metrics import (
    LatencySummary,
    interarrival_jitter_ps,
    latency_summary,
    throughput_bps,
    utilisation,
)
from repro.net.packet import Packet


@dataclass
class RunResult:
    """Outcome of one framework run.

    All byte counters are L2 frame bytes (the quantity buffers store).
    """

    duration_ps: int
    n_ports: int
    port_rate_bps: float
    #: Every packet delivered to a host, in delivery order per host.
    delivered: List[Packet] = field(default_factory=list)
    offered_packets: int = 0
    offered_bytes: int = 0
    delivered_bytes: int = 0
    ocs_bytes: int = 0
    eps_bytes: int = 0
    #: Drop accounting by cause.
    drops: Dict[str, int] = field(default_factory=dict)
    #: Peak simultaneous VOQ occupancy at the switch (Figure 1, fast).
    switch_peak_buffer_bytes: int = 0
    #: Peak simultaneous occupancy summed across host queues (slow).
    host_peak_buffer_bytes: int = 0
    #: Peak single EPS output queue.
    eps_peak_buffer_bytes: int = 0
    epochs_run: int = 0
    grants_issued: int = 0
    mean_loop_latency_ps: float = 0.0
    ocs_reconfigurations: int = 0
    ocs_blackout_ps: int = 0

    # -- derived metrics ---------------------------------------------------------

    @property
    def delivered_count(self) -> int:
        """Number of packets that reached their destination."""
        return len(self.delivered)

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered packets (1.0 when nothing was offered)."""
        if self.offered_packets == 0:
            return 1.0
        return self.delivered_count / self.offered_packets

    @property
    def ocs_fraction(self) -> float:
        """Fraction of delivered bytes that rode the optical fabric."""
        total = self.ocs_bytes + self.eps_bytes
        return self.ocs_bytes / total if total else 0.0

    def goodput_bps(self) -> float:
        """Aggregate delivered rate over the run."""
        return throughput_bps(self.delivered_bytes, self.duration_ps)

    def utilisation(self) -> float:
        """Goodput as a fraction of aggregate port capacity."""
        return utilisation(self.delivered_bytes, self.duration_ps,
                           self.n_ports * self.port_rate_bps)

    def offered_load(self) -> float:
        """Offered bytes as a fraction of aggregate capacity."""
        return utilisation(self.offered_bytes, self.duration_ps,
                           self.n_ports * self.port_rate_bps)

    def latency(self, priority: Optional[int] = None) -> LatencySummary:
        """Latency summary, optionally restricted to one priority class."""
        return latency_summary(self.delivered, priority=priority)

    def flow_packets(self, flow_id: int) -> List[Packet]:
        """Delivered packets of one flow, ordered by delivery time."""
        packets = [p for p in self.delivered if p.flow_id == flow_id]
        packets.sort(key=lambda p: p.delivered_ps or 0)
        return packets

    def flow_jitter_ps(self, flow_id: int, period_ps: int) -> float:
        """RFC 3550 interarrival jitter for a nominally periodic flow."""
        arrivals = [p.delivered_ps for p in self.flow_packets(flow_id)
                    if p.delivered_ps is not None]
        return interarrival_jitter_ps(arrivals, period_ps)

    @property
    def total_drops(self) -> int:
        """Sum over all drop causes."""
        return sum(self.drops.values())


__all__ = ["RunResult"]
