"""Lightweight observability primitives: counters, probes, time series.

Experiments attach these to model hooks instead of the models printing
or accumulating ad hoc state.  Everything is plain Python so overhead is
negligible next to event dispatch.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple


def _noop_add(count: int = 1, nbytes: int = 0) -> None:
    return None


class Counter:
    """Monotonic named counter with an optional byte dimension.

    Used for packet/byte accounting throughout the switch models.
    ``disable()`` swaps :meth:`add` for a module-level no-op on the
    instance, so a disabled counter costs one failed instance-dict
    lookup less than even the two integer adds — untraced hot loops
    skip the bookkeeping entirely.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.bytes = 0

    def add(self, count: int = 1, nbytes: int = 0) -> None:
        """Increment by ``count`` events and ``nbytes`` bytes."""
        self.count += count
        self.bytes += nbytes

    def disable(self) -> None:
        """Stop counting: subsequent :meth:`add` calls are no-ops."""
        self.add = _noop_add  # type: ignore[method-assign]

    def enable(self) -> None:
        """Resume counting after :meth:`disable` (idempotent)."""
        self.__dict__.pop("add", None)

    @property
    def enabled(self) -> bool:
        """False while :meth:`disable` is in effect."""
        return "add" not in self.__dict__

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, count={self.count}, bytes={self.bytes})"


class TimeSeries:
    """Append-only ``(time_ps, value)`` series with summary helpers.

    Construct with ``enabled=False`` (or call :meth:`disable`) for a
    no-op recorder: per-packet occupancy tracks are pure diagnostics,
    and untraced runs should pay neither the two list appends nor the
    unbounded memory growth.
    """

    def __init__(self, name: str, enabled: bool = True) -> None:
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []
        if not enabled:
            self.disable()

    def record(self, time_ps: int, value: float) -> None:
        """Append one sample."""
        self.times.append(time_ps)
        self.values.append(value)

    def disable(self) -> None:
        """Stop recording: subsequent :meth:`record` calls are no-ops."""
        self.record = _noop_record  # type: ignore[method-assign]

    def enable(self) -> None:
        """Resume recording after :meth:`disable` (idempotent)."""
        self.__dict__.pop("record", None)

    @property
    def enabled(self) -> bool:
        """False while :meth:`disable` is in effect."""
        return "record" not in self.__dict__

    def __len__(self) -> int:
        return len(self.values)

    def max(self) -> float:
        """Largest recorded value (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def min(self) -> float:
        """Smallest recorded value (0.0 when empty)."""
        return min(self.values) if self.values else 0.0

    def mean(self) -> float:
        """Arithmetic mean of recorded values (0.0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def last(self) -> Optional[float]:
        """Most recent value, or ``None`` when empty."""
        return self.values[-1] if self.values else None

    def time_weighted_mean(self, end_time: Optional[int] = None) -> float:
        """Mean weighted by how long each value was held.

        Treats the series as a step function: value ``v[i]`` holds from
        ``t[i]`` until ``t[i+1]`` (or ``end_time`` for the last sample).
        This is the right average for queue occupancies.
        """
        if not self.values:
            return 0.0
        if len(self.values) == 1:
            return self.values[0]
        horizon = end_time if end_time is not None else self.times[-1]
        total = 0.0
        duration = 0
        for i in range(len(self.values)):
            start = self.times[i]
            stop = self.times[i + 1] if i + 1 < len(self.times) else horizon
            if stop <= start:
                continue
            total += self.values[i] * (stop - start)
            duration += stop - start
        return total / duration if duration else self.values[-1]


@dataclass
class Probe:
    """A sampling probe: periodically calls ``sample()`` into a series.

    Attach with :meth:`install`; the probe re-arms itself until the
    simulator run ends.
    """

    name: str
    period_ps: int
    sample: Callable[[], float]
    series: TimeSeries = field(init=False)

    def __post_init__(self) -> None:
        self.series = TimeSeries(self.name)

    def install(self, sim) -> None:
        """Begin periodic sampling on ``sim`` (first sample after one period)."""
        # One label string for the probe's lifetime — re-arming happens
        # once per period and must not allocate a fresh f-string per
        # event.
        label = f"probe:{self.name}"

        def fire() -> None:
            self.series.record(sim.now, float(self.sample()))
            sim.schedule(self.period_ps, fire, label=label)

        sim.schedule(self.period_ps, fire, label=label)


def _noop_record(time_ps: int, value: float) -> None:
    return None


@contextmanager
def untraced(*instruments: "Counter | TimeSeries") -> Iterator[None]:
    """Disable ``instruments`` for the duration of the block.

    The no-op fast path means code under the block skips per-event
    bookkeeping entirely; previously accumulated state is preserved and
    recording resumes on exit (only for instruments that were enabled
    when the block was entered).
    """
    was_enabled = [inst for inst in instruments if inst.enabled]
    for inst in was_enabled:
        inst.disable()
    try:
        yield
    finally:
        for inst in was_enabled:
            inst.enable()


__all__ = ["Counter", "TimeSeries", "Probe", "untraced"]


def merge_step_max(series_list: List[TimeSeries]) -> float:
    """Peak of the sum of step-function series (upper bound via sample sum).

    Computes the maximum over all sample instants of the sum of the most
    recent value of each series.  Exact when all series share sample
    instants (our probes do); a tight upper bound otherwise.
    """
    events: List[Tuple[int, int, float]] = []
    for idx, series in enumerate(series_list):
        for t, v in zip(series.times, series.values):
            events.append((t, idx, v))
    events.sort()
    current = [0.0] * len(series_list)
    best = 0.0
    for __, idx, value in events:
        current[idx] = value
        total = sum(current)
        if total > best:
            best = total
    return best
