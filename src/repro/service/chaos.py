"""Protocol chaos proxy: seeded fault injection for the sweep service.

:class:`ChaosProxy` sits between any client or worker and a ``repro
serve`` daemon and misbehaves on purpose, frame by frame: it forwards,
delays, truncates mid-frame, or drops the connection according to a
seeded schedule.  It exists to *prove* the durability claims of the
service layer (journal replay, reconnect-without-requeue, client
backoff, cache transport) rather than assert them — the chaos tests
run whole campaigns through the proxy and require byte-identical
manifests on the far side.

The proxy is frame-aware (it parses the 4-byte length prefix of
:mod:`repro.service.protocol`) so its faults land on protocol
boundaries deliberately chosen to be nasty:

* ``drop``      — the frame is swallowed and both directions of the
                  connection are closed.  Over TCP a silently dropped
                  frame is indistinguishable from corruption, so a
                  drop *is* a disconnect; peers must treat it as one.
* ``truncate``  — the header and a prefix of the payload are
                  forwarded, then the connection dies mid-frame.  The
                  receiver sees exactly the ``truncated-frame`` case
                  its framing layer claims to handle.
* ``delay``     — the frame arrives whole but late (bounded by
                  ``delay_s``), reordering nothing (per-direction
                  order is preserved) but stressing every timeout.

Faults are decided by ``random.Random(f"{seed}:{conn}:{dir}")`` so a
failing schedule replays exactly from its seed, and the first
``min_frames`` frames of every direction pass untouched so handshakes
can be kept clean when a test wants faults only mid-campaign.

``repro chaos --listen ... --upstream ...`` wraps this class for CI
drills; the class itself is threading-based and embeds in tests.
"""

from __future__ import annotations

import contextlib
import random
import socket
import struct
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.protocol import MAX_FRAME_BYTES, connect, parse_address

_HEADER = struct.Struct(">I")


@dataclass(frozen=True)
class ChaosConfig:
    """Per-frame fault probabilities (evaluated in this order)."""

    p_disconnect: float = 0.0   # swallow the frame, kill the connection
    p_truncate: float = 0.0    # forward a partial frame, then kill
    p_delay: float = 0.0       # forward whole, but late
    delay_s: float = 0.05      # max injected delay per delayed frame
    #: frames per direction forwarded untouched before faults start
    #: (2 covers a register/registered or hello/welcome handshake).
    min_frames: int = 0


@dataclass
class ChaosCounters:
    """What the proxy actually did, for assertions and logs.

    ``forwarded`` totals both directions; the per-direction split
    (``forwarded_up`` = client→daemon, ``forwarded_down`` =
    daemon→client) lets a drill assert that traffic actually flowed
    the way it claims — a failover test where ``forwarded_down``
    stays 0 never received a single result.
    """

    connections: int = 0
    forwarded: int = 0
    forwarded_up: int = 0
    forwarded_down: int = 0
    dropped: int = 0
    truncated: int = 0
    delayed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def bump(self, name: str) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + 1)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {k: v for k, v in vars(self).items()
                    if not k.startswith("_")}


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            return None
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


class ChaosProxy:
    """A fault-injecting TCP proxy in front of a service daemon.

    ``upstream`` is anything :func:`parse_address` accepts (the
    daemon's address); ``listen`` must be TCP (``host:port``, port 0
    for kernel-assigned).  :meth:`start` returns the bound address to
    point clients and workers at; :meth:`stop` tears everything down.
    """

    def __init__(self, upstream: str, *, listen: str = "127.0.0.1:0",
                 seed: int = 0,
                 config: Optional[ChaosConfig] = None,
                 quiet: bool = True) -> None:
        kind, target = parse_address(listen)
        if kind != "tcp":
            raise ValueError(
                f"chaos proxy must listen on host:port, got {listen!r}")
        self.upstream = upstream
        self._listen_target: Tuple[str, int] = target
        self.seed = seed
        self.config = config if config is not None else ChaosConfig()
        self.quiet = quiet
        self.counters = ChaosCounters()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._pumps: List[threading.Thread] = []
        self._pairs: List[Tuple[socket.socket, socket.socket]] = []
        self._lock = threading.Lock()
        self._stopping = False
        self._conn_ids = 0

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro-chaos] {message}", file=sys.stderr,
                  flush=True)

    @property
    def bound_address(self) -> str:
        assert self._listener is not None, "start() first"
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def start(self) -> str:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._listen_target)
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True)
        self._accept_thread.start()
        self.log(f"listening on {self.bound_address} -> "
                 f"{self.upstream} (seed={self.seed})")
        return self.bound_address

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        with self._lock:
            pairs = list(self._pairs)
        for a, b in pairs:
            self._kill_pair(a, b)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for pump in self._pumps:
            pump.join(timeout=2.0)

    # -- internals -----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                downstream, peer = self._listener.accept()
            except OSError:
                return
            try:
                upstream = connect(self.upstream, timeout=10.0)
                upstream.settimeout(None)
            except OSError as exc:
                self.log(f"upstream {self.upstream} unreachable: {exc}")
                with contextlib.suppress(OSError):
                    downstream.close()
                continue
            conn = self._conn_ids
            self._conn_ids += 1
            self.counters.bump("connections")
            with self._lock:
                self._pairs.append((downstream, upstream))
            self.log(f"conn {conn}: {peer} <-> {self.upstream}")
            for direction, (src, dst) in enumerate(
                    [(downstream, upstream), (upstream, downstream)]):
                rng = random.Random(f"{self.seed}:{conn}:{direction}")
                label = "forwarded_up" if direction == 0 \
                    else "forwarded_down"
                pump = threading.Thread(
                    target=self._pump, name=f"chaos-{conn}-{direction}",
                    args=(src, dst, rng, downstream, upstream, label),
                    daemon=True)
                pump.start()
                self._pumps.append(pump)

    def _kill_pair(self, a: socket.socket, b: socket.socket) -> None:
        for sock in (a, b):
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()

    def _pump(self, src: socket.socket, dst: socket.socket,
              rng: random.Random, downstream: socket.socket,
              upstream: socket.socket,
              direction_label: str = "forwarded_up") -> None:
        """Forward frames src -> dst, injecting scheduled faults."""
        cfg = self.config
        frames = 0
        try:
            while not self._stopping:
                header = _recv_exactly(src, _HEADER.size)
                if header is None:
                    break
                (length,) = _HEADER.unpack(header)
                if length == 0 or length > MAX_FRAME_BYTES:
                    # Not our protocol — shovel it and stop parsing.
                    dst.sendall(header)
                    break
                payload = _recv_exactly(src, length)
                if payload is None:
                    break
                frames += 1
                roll = rng.random()
                if frames <= cfg.min_frames:
                    roll = 1.0  # handshake grace: always forward
                if roll < cfg.p_disconnect:
                    self.counters.bump("dropped")
                    self._kill_pair(downstream, upstream)
                    return
                if roll < cfg.p_disconnect + cfg.p_truncate:
                    self.counters.bump("truncated")
                    with contextlib.suppress(OSError):
                        dst.sendall(header + payload[:max(1, length // 2)])
                    self._kill_pair(downstream, upstream)
                    return
                if roll < (cfg.p_disconnect + cfg.p_truncate
                           + cfg.p_delay):
                    self.counters.bump("delayed")
                    time.sleep(rng.uniform(0.0, cfg.delay_s))
                dst.sendall(header + payload)
                self.counters.bump("forwarded")
                self.counters.bump(direction_label)
        except OSError:
            pass
        finally:
            self._kill_pair(downstream, upstream)

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["ChaosProxy", "ChaosConfig", "ChaosCounters"]
