"""End-to-end behavioural tests of framework knobs.

Each test turns one configuration knob and checks the physically
expected consequence — the knobs are only worth their complexity if
they observably do what their docstrings claim.
"""

import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.net.classifier import ClassifierRule, FlowClassifier
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import PermutationDestination
from repro.traffic.sources import PoissonSource


def _framework(classifier=None, **overrides):
    defaults = dict(n_ports=4, switching_time_ps=2 * MICROSECONDS,
                    scheduler="islip", timing_preset="ideal",
                    default_slot_ps=10 * MICROSECONDS, seed=6)
    defaults.update(overrides)
    return HybridSwitchFramework(FrameworkConfig(**defaults),
                                 classifier=classifier)


def _drive(fw, load=0.3, duration=2 * MILLISECONDS):
    for host in fw.hosts:
        PoissonSource(
            fw.sim, host, rate_bps=load * fw.config.port_rate_bps,
            chooser=PermutationDestination(fw.n_ports, host.host_id),
            rng=fw.sim.streams.stream(f"s{host.host_id}"))
    return fw.run(duration)


class TestVoqCapacity:
    def test_tiny_voqs_tail_drop(self):
        result = _drive(_framework(voq_capacity_bytes=3_000), load=0.5)
        assert result.drops["voq_tail"] > 0
        # And the peak respects the cap (per-VOQ × active VOQs bound).
        assert result.switch_peak_buffer_bytes <= 3_000 * 12

    def test_unbounded_voqs_never_drop(self):
        result = _drive(_framework(), load=0.5)
        assert result.drops["voq_tail"] == 0


class TestClassifierIntegration:
    def test_eps_pinned_class_uses_electrical_path(self):
        classifier = FlowClassifier([
            ClassifierRule(action="eps", src=0)])
        result = _drive(_framework(classifier=classifier))
        # Host 0's traffic went electrical; everyone else optical.
        eps_packets = [p for p in result.delivered if p.via == "eps"]
        assert eps_packets
        assert all(p.src == 0 for p in eps_packets)

    def test_drop_rule_counts(self):
        classifier = FlowClassifier([
            ClassifierRule(action="drop", src=1)])
        result = _drive(_framework(classifier=classifier))
        assert result.drops["classifier"] > 0
        assert not any(p.src == 1 for p in result.delivered)


class TestBlackoutAccounting:
    def test_blackout_time_tracks_reconfigurations(self):
        fw = _framework(switching_time_ps=2 * MICROSECONDS)
        result = _drive(fw)
        assert result.ocs_reconfigurations > 0
        assert result.ocs_blackout_ps == \
            result.ocs_reconfigurations * 2 * MICROSECONDS

    def test_zero_switching_time_has_no_blackout(self):
        fw = _framework(switching_time_ps=0)
        result = _drive(fw)
        assert result.ocs_blackout_ps == 0
        assert result.drops["ocs_dark"] == 0


class TestEstimatorKnob:
    @pytest.mark.parametrize("estimator", ["instant", "ewma", "sketch"])
    def test_all_estimators_serve_traffic(self, estimator):
        result = _drive(_framework(estimator=estimator))
        assert result.delivered_count > 0
        assert result.delivery_ratio > 0.5


class TestEpsProvisioning:
    def test_thin_eps_with_bounded_queue_drops(self):
        classifier = FlowClassifier([ClassifierRule(action="eps")])
        fw = _framework(classifier=classifier,
                        eps_rate_bps=0.5 * GIGABIT,
                        eps_queue_bytes=10_000)
        result = _drive(fw, load=0.4)
        # Everything is pinned to a 0.5G path with a 10KB queue at
        # 0.4*10G offered: drops are inevitable.
        assert result.drops["eps_tail"] > 0
        assert result.eps_peak_buffer_bytes <= 10_000
