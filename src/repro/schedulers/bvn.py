"""Birkhoff–von Neumann (BvN) decomposition scheduling.

BvN is the classical way to turn a demand matrix into a circuit
schedule: any doubly-stochastic matrix is a convex combination of at
most n² − 2n + 2 permutation matrices (Birkhoff's theorem), so serving
each permutation for time proportional to its coefficient serves the
whole demand exactly.  Helios-class software schedulers compute exactly
this kind of schedule over measured demand.

Pipeline
--------

1. **Stuff** the demand matrix into a non-negative matrix with all row
   and column sums equal (:func:`stuff_matrix`) — the standard trick to
   make Birkhoff applicable to arbitrary demand.
2. **Decompose** (:func:`birkhoff_von_neumann`): repeatedly find a
   perfect matching on the positive support (Hopcroft–Karp), peel off
   the minimum matched entry as the coefficient, subtract, repeat.
3. **Convert** coefficients (bytes) into circuit hold times at the line
   rate, dropping slots shorter than a configurable floor (circuits
   shorter than the reconfiguration blackout are pure waste — this is
   the fundamental tension Solstice later optimised).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.bipartite import perfect_matching_on_support
from repro.schedulers.matching import Matching
from repro.sim.errors import SchedulingError
from repro.sim.time import GIGABIT, SECONDS


def stuff_matrix(demand: np.ndarray) -> np.ndarray:
    """Pad ``demand`` so every row and column sums to the same total.

    Greedy quickstuff: walk cells in row-major order adding
    ``min(row deficit, column deficit)``.  A counting argument shows the
    greedy pass always lands every row and column exactly at the target
    (the max row/col sum).  Diagonal cells may receive stuffing; the
    resulting self-circuits carry no real traffic and are stripped when
    matchings are emitted.
    """
    demand = np.asarray(demand, dtype=np.float64)
    n = demand.shape[0]
    stuffed = demand.copy()
    target = max(stuffed.sum(axis=1).max(), stuffed.sum(axis=0).max())
    if target <= 0:
        return stuffed
    row_deficit = target - stuffed.sum(axis=1)
    col_deficit = target - stuffed.sum(axis=0)
    for i in range(n):
        if row_deficit[i] <= 0:
            continue
        for j in range(n):
            if row_deficit[i] <= 0:
                break
            add = min(row_deficit[i], col_deficit[j])
            if add > 0:
                stuffed[i, j] += add
                row_deficit[i] -= add
                col_deficit[j] -= add
    return stuffed


def birkhoff_von_neumann(
        matrix: np.ndarray,
        tolerance: float = 1e-9,
        max_terms: Optional[int] = None) -> List[Tuple[Matching, float]]:
    """Decompose a balanced non-negative matrix into weighted permutations.

    Parameters
    ----------
    matrix:
        Square, non-negative, with (approximately) equal row and column
        sums — produce one with :func:`stuff_matrix`.
    tolerance:
        Entries below this are treated as zero.
    max_terms:
        Stop after this many permutations (None = run to exhaustion;
        Birkhoff guarantees termination within n²−2n+2 terms).

    Returns
    -------
    List of ``(matching, weight)`` pairs, weights in the matrix's own
    units (bytes here), summing to ~the common row sum.
    """
    work = np.asarray(matrix, dtype=np.float64).copy()
    n = work.shape[0]
    if work.shape != (n, n):
        raise SchedulingError("BvN needs a square matrix")
    if (work < -tolerance).any():
        raise SchedulingError("BvN needs a non-negative matrix")
    row_sums = work.sum(axis=1)
    col_sums = work.sum(axis=0)
    spread = max(row_sums.max() - row_sums.min(),
                 col_sums.max() - col_sums.min())
    scale = max(row_sums.max(), 1.0)
    if spread > 1e-6 * scale:
        raise SchedulingError(
            "BvN needs equal row/column sums; stuff the matrix first "
            f"(spread={spread:.3g} on scale {scale:.3g})")
    terms: List[Tuple[Matching, float]] = []
    ports = np.arange(n)
    while work.max() > tolerance:
        if max_terms is not None and len(terms) >= max_terms:
            break
        support = work > tolerance
        match = perfect_matching_on_support(support)
        if match is None:
            # Numerically ragged remainder: no perfect matching on the
            # support even though mass remains.  Stop; the residue is
            # below meaningful precision or the input was unbalanced.
            break
        # Peel: one gather for the minimum matched entry, one scatter
        # for the subtraction (the scalar per-port loop survives in
        # repro.schedulers.reference as the executable spec).
        matched = np.asarray(match, dtype=np.int64)
        weight = float(work[ports, matched].min())
        if weight <= tolerance:
            break
        terms.append((Matching(list(match)), weight))
        work[ports, matched] -= weight
    return terms


class BvnScheduler(Scheduler):
    """Full BvN schedule over the estimated demand.

    Parameters
    ----------
    n_ports:
        Port count.
    link_rate_bps:
        Converts byte weights into circuit hold times.
    min_hold_ps:
        Slots shorter than this are diverted to the EPS residue instead
        of being scheduled (reconfiguration would dominate them).
    max_matchings:
        Cap on schedule length (None = Birkhoff bound).
    """

    name = "bvn"

    def __init__(self, n_ports: int, link_rate_bps: float = 10 * GIGABIT,
                 min_hold_ps: int = 0,
                 max_matchings: Optional[int] = None) -> None:
        super().__init__(n_ports)
        if link_rate_bps <= 0:
            raise SchedulingError("link rate must be positive")
        self.link_rate_bps = link_rate_bps
        self.min_hold_ps = min_hold_ps
        self.max_matchings = max_matchings

    def _bytes_to_hold_ps(self, nbytes: float) -> int:
        return round(nbytes * 8 * SECONDS / self.link_rate_bps)

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        return self._schedule(self._check_demand(demand))

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        """Validation-free entry; see the base-class contract.

        Decomposition arithmetic is float; integer demand is widened
        here so both paths run on the exact float64 matrix
        :meth:`compute` would.
        """
        return self._schedule(np.asarray(demand, dtype=np.float64))

    def _schedule(self, demand: np.ndarray) -> ScheduleResult:
        ports = np.arange(self.n_ports)
        stuffed = stuff_matrix(demand)
        terms = birkhoff_von_neumann(stuffed, max_terms=self.max_matchings)
        plan: List[Tuple[Matching, int]] = []
        residue = demand.copy()
        for matching, weight in terms:
            hold_ps = self._bytes_to_hold_ps(weight)
            if hold_ps < self.min_hold_ps:
                continue  # too short to pay for a reconfiguration
            # Strip pairs that only exist because of stuffing.  BvN
            # matchings are full permutations, so the real pairs are a
            # mask over one gathered row — no per-pair Python loop
            # (scalar original: repro.schedulers.reference).
            matched = matching.as_array()
            real = demand[ports, matched] > 0
            if not real.any():
                continue
            real_src = ports[real]
            real_dst = matched[real]
            plan.append((Matching.from_output_array(
                np.where(real, matched, -1)), hold_ps))
            residue[real_src, real_dst] = np.maximum(
                0.0, residue[real_src, real_dst] - weight)
        if not plan:
            plan = [(Matching.empty(self.n_ports), 0)]
        self.last_stats = {
            "iterations": len(terms),
            "matchings": len(plan),
        }
        return ScheduleResult(matchings=plan, eps_residue=residue)


__all__ = ["BvnScheduler", "birkhoff_von_neumann", "stuff_matrix"]
