"""Host model with both buffering disciplines from Figure 1.

The paper contrasts two regimes:

* **Slow Scheduling / host buffering** — the ToR cannot afford the
  gigabytes needed to absorb bursts across millisecond reconfigurations,
  so "packets stored in the host can be passed to the switch only at
  appropriate times, upon a grant from the scheduler".  The host keeps
  per-destination queues and transmits only inside granted windows; it
  must stay tightly synchronised with the switch, and any clock skew
  sends packets into a closed circuit.
* **Fast Scheduling / switch buffering** — nanosecond switching shrinks
  the requirement to kilobytes, packets are buffered "directly in the
  ToR switch", and the host just transmits at will.

:class:`Host` implements both; :class:`HostBufferMode` selects one.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.net.link import Link
from repro.net.packet import Packet, wire_size
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.time import transmission_time_ps
from repro.sim.trace import Counter, TimeSeries

if TYPE_CHECKING:  # import cycle: analysis.record materialises Packets
    from repro.analysis.record import PacketLog


class HostBufferMode(enum.Enum):
    """Which side of Figure 1 the host operates on."""

    #: Fast scheduling: transmit immediately; the switch buffers.
    SWITCH_BUFFERED = "switch_buffered"
    #: Slow scheduling: buffer at the host; transmit only on grant.
    HOST_BUFFERED = "host_buffered"


class Host:
    """One server attached to a hybrid-switch port.

    Parameters
    ----------
    sim:
        Owning simulator.
    host_id:
        Port index on the hybrid switch (0-based).
    uplink:
        Host-to-switch :class:`~repro.net.link.Link`.
    mode:
        Buffering discipline (see module docstring).
    clock_skew_ps:
        Host-clock offset relative to the switch, applied to grant start
        times in host-buffered mode.  Positive skew means the host is
        *late*.  Models the paper's "tight synchronization" hazard.
    """

    def __init__(self, sim: Simulator, host_id: int, uplink: Link,
                 mode: HostBufferMode = HostBufferMode.SWITCH_BUFFERED,
                 clock_skew_ps: int = 0,
                 trace_occupancy: bool = False) -> None:
        self.sim = sim
        self.host_id = host_id
        self.uplink = uplink
        self.mode = mode
        self.clock_skew_ps = clock_skew_ps
        self._queues: Dict[int, Deque[Packet]] = {}
        self._queued_bytes = 0
        self.occupancy = TimeSeries(f"host{host_id}.occupancy",
                                    enabled=trace_occupancy)
        self.peak_queued_bytes = 0
        self._grant_label = f"host{host_id}.grant"
        self.emitted = Counter(f"host{host_id}.emitted")
        self.received = Counter(f"host{host_id}.received")
        self.sent_on_grant = Counter(f"host{host_id}.sent_on_grant")
        self.delivered_packets: List[Packet] = []
        self.on_deliver: Optional[Callable[[Packet], None]] = None
        #: Columnar fast-lane sink; when set, deliveries append into the
        #: log instead of retaining ``Packet`` objects.
        self.packet_log: Optional["PacketLog"] = None
        #: Sources attached to this host (see :meth:`register_emitter`).
        self.emitter_count = 0

    # -- fast-lane wiring -------------------------------------------------------

    def register_emitter(self, source: object) -> None:
        """Declare one traffic source driving this host.

        Chunked sources may pre-serialise a whole chunk through the
        uplink only when they are the host's *sole* emitter — otherwise
        another source's packets could interleave on the wire inside
        the chunk window and the pre-computed serialisation would lie.
        """
        self.emitter_count += 1

    def use_packet_log(self, log: "PacketLog") -> None:
        """Switch delivery telemetry to columnar mode.

        Deliveries append into ``log`` instead of retaining ``Packet``
        objects in :attr:`delivered_packets`.
        """
        self.packet_log = log

    def can_presend(self) -> bool:
        """True when chunk pre-serialisation through the uplink is exact.

        Requires switch-buffered mode (host-buffered emission lands in
        the grant queues, whose state the scheduler polls *between* the
        chunk's emission instants), a sole emitter, and an uplink with
        no armed fault injector.
        """
        return (self.mode is HostBufferMode.SWITCH_BUFFERED
                and self.emitter_count == 1
                and self.uplink.can_presend())

    def emit_presend(self, packets: List[Packet],
                     times: List[int]) -> None:
        """Accept a chunk of future emissions (``times`` ascending).

        Semantically identical to calling :meth:`emit` at each
        ``times[i]``; the caller must have checked :meth:`can_presend`.
        """
        count = 0
        nbytes = 0
        for packet in packets:
            count += 1
            nbytes += packet.size
        self.emitted.add(count, nbytes)
        self.uplink.send_presend(packets, times)

    # -- traffic source side ---------------------------------------------------

    def emit(self, packet: Packet) -> None:
        """Accept a packet from the application layer.

        Switch-buffered mode hands it straight to the uplink;
        host-buffered mode parks it in the per-destination queue until a
        grant opens a window.
        """
        if packet.src != self.host_id:
            raise ConfigurationError(
                f"host {self.host_id} asked to emit packet with "
                f"src={packet.src}")
        self.emitted.add(1, packet.size)
        if self.mode is HostBufferMode.SWITCH_BUFFERED:
            self.uplink.send(packet)
            return
        queue = self._queues.setdefault(packet.dst, deque())
        queue.append(packet)
        packet.enqueued_ps = self.sim.now
        self._change_occupancy(packet.size)

    # -- scheduler side (host-buffered mode) ------------------------------------

    def queued_bytes_to(self, dst: int) -> int:
        """Bytes currently queued for destination ``dst`` (demand report)."""
        queue = self._queues.get(dst)
        return sum(p.size for p in queue) if queue else 0

    def demand_vector(self, n_ports: int) -> List[int]:
        """Bytes queued per destination — what a Helios-style software
        scheduler polls from each host."""
        return [self.queued_bytes_to(dst) for dst in range(n_ports)]

    @property
    def queued_bytes(self) -> int:
        """Total bytes parked at this host across all destinations."""
        return self._queued_bytes

    def grant(self, dst: int, start_ps: int, duration_ps: int) -> None:
        """Open a transmission window toward ``dst``.

        The window is ``[start_ps, start_ps + duration_ps)`` in *switch*
        time; the host acts at ``start_ps + clock_skew_ps`` in its own
        (skewed) perception.  Packets whose serialisation would overrun
        the perceived window stay queued for the next grant.
        """
        if self.mode is not HostBufferMode.HOST_BUFFERED:
            raise ConfigurationError(
                f"host {self.host_id} is switch-buffered; grants are "
                "only meaningful in host-buffered mode")
        perceived_start = max(self.sim.now, start_ps + self.clock_skew_ps)
        deadline = start_ps + self.clock_skew_ps + duration_ps

        def open_window() -> None:
            self._drain_window(dst, deadline)

        self.sim.at(perceived_start, open_window,
                    label=self._grant_label)

    def _drain_window(self, dst: int, deadline_ps: int) -> None:
        """Send queued packets toward ``dst`` until the window closes."""
        queue = self._queues.get(dst)
        if not queue:
            return
        while queue:
            packet = queue[0]
            tx_ps = transmission_time_ps(wire_size(packet.size),
                                         self.uplink.rate_bps)
            start = max(self.sim.now, self.uplink.free_at)
            if start + tx_ps > deadline_ps:
                break
            queue.popleft()
            packet.dequeued_ps = self.sim.now
            self._change_occupancy(-packet.size)
            self.sent_on_grant.add(1, packet.size)
            self.uplink.send(packet)

    # -- receive side -------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Accept a delivered packet from the switch's egress link."""
        packet.delivered_ps = self.sim.now
        self.received.add(1, packet.size)
        if self.packet_log is not None:
            self.packet_log.append_packet(packet, packet.delivered_ps)
        else:
            self.delivered_packets.append(packet)
        if self.on_deliver is not None:
            self.on_deliver(packet)

    def receive_at(self, packet: Packet, arrival_ps: int) -> None:
        """Eager delivery: record an arrival known to happen later.

        The egress link calls this at *send* time with the exact
        arrival instant it would otherwise have delivered the packet at
        via an event.  Only valid while :attr:`on_deliver` is unset
        (the link's eager guard checks) — a delivery hook must observe
        simulator state at true delivery time.
        """
        packet.delivered_ps = arrival_ps
        self.received.add(1, packet.size)
        if self.packet_log is not None:
            self.packet_log.append_packet(packet, arrival_ps)
        else:
            self.delivered_packets.append(packet)

    # -- internals ------------------------------------------------------------------

    def _change_occupancy(self, delta: int) -> None:
        self._queued_bytes += delta
        if self._queued_bytes > self.peak_queued_bytes:
            self.peak_queued_bytes = self._queued_bytes
        self.occupancy.record(self.sim.now, self._queued_bytes)


__all__ = ["Host", "HostBufferMode"]
