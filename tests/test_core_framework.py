"""End-to-end framework tests."""

import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.net.host import HostBufferMode
from repro.schedulers.islip import IslipScheduler
from repro.sim.errors import ConfigurationError
from repro.sim.time import MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import PermutationDestination
from repro.traffic.sources import CbrSource, PoissonSource


def _framework(**overrides):
    defaults = dict(n_ports=4, switching_time_ps=1 * MICROSECONDS,
                    scheduler="islip", timing_preset="ideal",
                    default_slot_ps=10 * MICROSECONDS, seed=5)
    defaults.update(overrides)
    return HybridSwitchFramework(FrameworkConfig(**defaults))


def _attach_poisson(fw, load=0.3):
    for host in fw.hosts:
        PoissonSource(
            fw.sim, host,
            rate_bps=load * fw.config.port_rate_bps,
            chooser=PermutationDestination(fw.n_ports, host.host_id),
            rng=fw.sim.streams.stream(f"src{host.host_id}"))


class TestLifecycle:
    def test_single_shot(self):
        fw = _framework()
        _attach_poisson(fw)
        fw.run(1 * MILLISECONDS)
        with pytest.raises(ConfigurationError, match="single-shot"):
            fw.run(1 * MILLISECONDS)

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            _framework().run(0)

    def test_scheduler_instance_override(self):
        scheduler = IslipScheduler(4, iterations=3)
        fw = HybridSwitchFramework(
            FrameworkConfig(n_ports=4, timing_preset="ideal"),
            scheduler=scheduler)
        assert fw.scheduler is scheduler


class TestConservation:
    def test_no_packet_invented_or_lost_silently(self):
        fw = _framework()
        _attach_poisson(fw, load=0.3)
        result = fw.run(2 * MILLISECONDS)
        in_flight = result.offered_packets - result.delivered_count \
            - result.total_drops
        # Whatever is neither delivered nor dropped must still be queued
        # somewhere (VOQ/EPS/links) — it cannot be negative.
        assert in_flight >= 0
        assert result.delivered_count > 0

    def test_byte_accounting(self):
        fw = _framework()
        _attach_poisson(fw)
        result = fw.run(2 * MILLISECONDS)
        assert result.delivered_bytes == \
            sum(p.size for p in result.delivered)
        assert result.ocs_bytes + result.eps_bytes == \
            result.delivered_bytes


class TestModes:
    def test_fast_mode_buffers_at_switch(self):
        fw = _framework()
        _attach_poisson(fw)
        result = fw.run(2 * MILLISECONDS)
        assert result.switch_peak_buffer_bytes > 0
        assert result.host_peak_buffer_bytes == 0

    def test_slow_mode_buffers_at_host(self):
        fw = _framework(
            buffer_mode=HostBufferMode.HOST_BUFFERED,
            scheduler="hotspot",
            switching_time_ps=10 * MICROSECONDS,
            epoch_ps=200 * MICROSECONDS,
            default_slot_ps=150 * MICROSECONDS)
        _attach_poisson(fw)
        result = fw.run(4 * MILLISECONDS)
        assert result.host_peak_buffer_bytes > 0
        assert result.switch_peak_buffer_bytes == 0
        assert result.delivered_count > 0

    def test_all_delivered_traffic_uses_ocs_without_residue(self):
        fw = _framework()
        _attach_poisson(fw)
        result = fw.run(2 * MILLISECONDS)
        assert result.ocs_fraction == 1.0


class TestDeterminism:
    def test_same_seed_same_result(self):
        results = []
        for __ in range(2):
            fw = _framework(seed=123)
            _attach_poisson(fw)
            result = fw.run(1 * MILLISECONDS)
            results.append((result.delivered_count,
                            result.delivered_bytes,
                            result.switch_peak_buffer_bytes))
        assert results[0] == results[1]

    def test_different_seed_differs(self):
        counts = []
        for seed in (1, 2):
            fw = _framework(seed=seed)
            _attach_poisson(fw)
            counts.append(fw.run(1 * MILLISECONDS).delivered_count)
        assert counts[0] != counts[1]


class TestLatency:
    def test_cbr_stream_measurable(self):
        fw = _framework()
        cbr = CbrSource(fw.sim, fw.hosts[0], dst=1, packet_bytes=200,
                        period_ps=100 * MICROSECONDS)
        result = fw.run(2 * MILLISECONDS)
        stream = result.flow_packets(cbr.flow_id)
        assert len(stream) >= 10
        summary = result.latency(priority=1)
        assert summary.count == len(stream)
        assert summary.p50_ps > 0

    def test_jitter_computable(self):
        fw = _framework()
        cbr = CbrSource(fw.sim, fw.hosts[0], dst=1,
                        period_ps=100 * MICROSECONDS)
        result = fw.run(2 * MILLISECONDS)
        jitter = result.flow_jitter_ps(cbr.flow_id, 100 * MICROSECONDS)
        assert jitter >= 0.0


class TestConfigValidation:
    def test_bad_estimator(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(estimator="magic")

    def test_bad_ports(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(n_ports=1)

    def test_long_blackout_requires_epoch(self):
        with pytest.raises(ConfigurationError, match="epoch_ps"):
            FrameworkConfig(switching_time_ps=20 * MILLISECONDS)

    def test_control_delay_defaults_to_propagation(self):
        config = FrameworkConfig(propagation_ps=777)
        assert config.control_delay_ps == 777
        config2 = FrameworkConfig(propagation_ps=777,
                                  control_latency_ps=5)
        assert config2.control_delay_ps == 5

    def test_estimator_kwargs_forwarded(self):
        fw = HybridSwitchFramework(FrameworkConfig(
            n_ports=4, estimator="ewma",
            estimator_kwargs={"alpha": 0.5},
            timing_preset="ideal"))
        assert fw.estimator.alpha == 0.5
