"""Tests for the Simulator engine."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_schedule_advances_clock(self, sim):
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100]
        assert sim.now == 100

    def test_at_absolute(self, sim):
        seen = []
        sim.at(250, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [250]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_at_in_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_zero_delay_fires_after_earlier_same_time_events(self, sim):
        order = []
        sim.schedule(10, lambda: order.append("first"))

        def second_scheduler():
            sim.schedule(0, lambda: order.append("zero-delay"))
            order.append("second")

        sim.schedule(10, second_scheduler)
        sim.run()
        assert order == ["first", "second", "zero-delay"]

    def test_cancel(self, sim):
        seen = []
        event = sim.schedule(10, lambda: seen.append(1))
        sim.cancel(event)
        sim.run()
        assert seen == []


class TestRun:
    def test_run_until_stops_clock_at_until(self, sim):
        sim.schedule(1_000, lambda: None)
        dispatched = sim.run(until=500)
        assert dispatched == 0
        assert sim.now == 500
        # The event is still pending and fires on the next run.
        assert sim.run() == 1
        assert sim.now == 1_000

    def test_event_exactly_at_until_fires(self, sim):
        seen = []
        sim.schedule(500, lambda: seen.append(1))
        sim.run(until=500)
        assert seen == [1]

    def test_run_empty_advances_to_until(self, sim):
        sim.run(until=123)
        assert sim.now == 123

    def test_cascading_events(self, sim):
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth:
                sim.schedule(10, lambda: chain(depth - 1))

        sim.schedule(0, lambda: chain(3))
        sim.run()
        assert seen == [0, 10, 20, 30]

    def test_stop_inside_callback(self, sim):
        seen = []

        def stopper():
            seen.append("stop")
            sim.stop()

        sim.schedule(1, stopper)
        sim.schedule(2, lambda: seen.append("late"))
        sim.run()
        assert seen == ["stop"]
        assert sim.pending_events() == 1

    def test_max_events_guard(self, sim):
        def loop():
            sim.schedule(1, loop)

        sim.schedule(0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_run_not_reentrant(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1, reenter)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run()

    def test_events_dispatched_counter(self, sim):
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_dispatched == 5


class TestDeterminism:
    def test_same_seed_same_stream_draws(self):
        a = Simulator(seed=7).streams.stream("x").random()
        b = Simulator(seed=7).streams.stream("x").random()
        assert a == b

    def test_different_seed_differs(self):
        a = Simulator(seed=7).streams.stream("x").random()
        b = Simulator(seed=8).streams.stream("x").random()
        assert a != b


class TestBatchDispatch:
    """Simulator.run's same-timestamp batch fast path."""

    @pytest.fixture
    def sim(self):
        return Simulator()

    def test_fifo_within_dense_burst(self, sim):
        seen = []
        for i in range(50):
            sim.schedule(10, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(50))

    def test_callback_scheduling_at_now_fires_after_batch(self, sim):
        seen = []

        def first():
            seen.append("first")
            sim.schedule(0, lambda: seen.append("injected"))

        sim.schedule(5, first)
        sim.schedule(5, lambda: seen.append("second"))
        sim.run()
        assert seen == ["first", "second", "injected"]

    def test_cancel_within_batch_skips_peer(self, sim):
        # The killer fires first and cancels an event already popped
        # into the same batch; the victim must be skipped, with no
        # live-count drift.
        seen = []

        def killer():
            seen.append("killer")
            sim.cancel(victim)

        sim.schedule(7, killer)
        victim = sim.schedule(7, lambda: seen.append("victim"))
        sim.run()
        assert seen == ["killer"]
        assert sim.pending_events() == 0

    def test_stop_mid_batch_requeues_tail(self, sim):
        seen = []
        sim.schedule(3, lambda: (seen.append("a"), sim.stop()))
        sim.schedule(3, lambda: seen.append("b"))
        sim.schedule(3, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a"]
        assert sim.pending_events() == 2
        # Resuming dispatches the requeued tail in original order.
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.pending_events() == 0

    def test_max_events_mid_batch_requeues_tail(self, sim):
        seen = []
        for i in range(5):
            sim.schedule(1, lambda i=i: seen.append(i))
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=2)
        assert seen == [0, 1]
        assert sim.pending_events() == 3
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_raising_callback_requeues_tail(self, sim):
        seen = []

        def boom():
            raise RuntimeError("model bug")

        sim.schedule(2, lambda: seen.append("ok"))
        sim.schedule(2, boom)
        sim.schedule(2, lambda: seen.append("after"))
        with pytest.raises(RuntimeError, match="model bug"):
            sim.run()
        assert seen == ["ok"]
        assert sim.pending_events() == 1
        sim.run()
        assert seen == ["ok", "after"]

    def test_cancel_interleaved_with_stop_keeps_count(self, sim):
        cancelled = sim.schedule(9, lambda: None)

        def stop_and_cancel():
            sim.cancel(cancelled)
            sim.stop()

        sim.schedule(9, stop_and_cancel)
        tail = sim.schedule(9, lambda: None)
        sim.run()
        assert sim.pending_events() == 1  # only the tail survives
        sim.cancel(tail)
        assert sim.pending_events() == 0
