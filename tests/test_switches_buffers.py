"""Tests for the bounded packet queue."""

import pytest

from repro.net.packet import Packet
from repro.sim.errors import CapacityError, ConfigurationError
from repro.switches.buffers import DropPolicy, PacketQueue


def _packet(size=100):
    return Packet(src=0, dst=1, size=size, created_ps=0)


class TestBasics:
    def test_fifo_order(self, sim):
        q = PacketQueue(sim, "q")
        first, second = _packet(), _packet()
        q.enqueue(first)
        q.enqueue(second)
        assert q.dequeue() is first
        assert q.dequeue() is second

    def test_len_and_bytes(self, sim):
        q = PacketQueue(sim, "q")
        q.enqueue(_packet(100))
        q.enqueue(_packet(250))
        assert len(q) == 2
        assert q.bytes == 350

    def test_head_peeks_without_removal(self, sim):
        q = PacketQueue(sim, "q")
        p = _packet()
        q.enqueue(p)
        assert q.head() is p
        assert len(q) == 1

    def test_head_empty(self, sim):
        assert PacketQueue(sim, "q").head() is None

    def test_dequeue_empty_raises(self, sim):
        with pytest.raises(IndexError):
            PacketQueue(sim, "q").dequeue()

    def test_timestamps_stamped(self, sim):
        q = PacketQueue(sim, "q")
        p = _packet()
        sim.schedule(10, lambda: q.enqueue(p))
        sim.schedule(25, lambda: q.dequeue())
        sim.run()
        assert p.enqueued_ps == 10
        assert p.dequeued_ps == 25

    def test_drain(self, sim):
        q = PacketQueue(sim, "q")
        for __ in range(3):
            q.enqueue(_packet())
        drained = q.drain()
        assert len(drained) == 3
        assert q.is_empty and q.bytes == 0


class TestCapacity:
    def test_byte_cap_tail_drop(self, sim):
        q = PacketQueue(sim, "q", capacity_bytes=150)
        assert q.enqueue(_packet(100))
        assert not q.enqueue(_packet(100))   # would exceed 150
        assert q.drops.count == 1
        assert q.bytes == 100

    def test_packet_cap(self, sim):
        q = PacketQueue(sim, "q", capacity_packets=1)
        assert q.enqueue(_packet())
        assert not q.enqueue(_packet())

    def test_error_policy_raises(self, sim):
        q = PacketQueue(sim, "q", capacity_bytes=50,
                        policy=DropPolicy.ERROR)
        with pytest.raises(CapacityError):
            q.enqueue(_packet(100))

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            PacketQueue(sim, "q", capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            PacketQueue(sim, "q", capacity_packets=-1)

    def test_capacity_frees_after_dequeue(self, sim):
        q = PacketQueue(sim, "q", capacity_bytes=100)
        q.enqueue(_packet(100))
        q.dequeue()
        assert q.enqueue(_packet(100))


class TestAccounting:
    def test_peaks(self, sim):
        q = PacketQueue(sim, "q")
        q.enqueue(_packet(100))
        q.enqueue(_packet(100))
        q.dequeue()
        q.enqueue(_packet(50))
        assert q.peak_bytes == 200
        assert q.peak_packets == 2

    def test_counters(self, sim):
        q = PacketQueue(sim, "q")
        q.enqueue(_packet(10))
        q.enqueue(_packet(20))
        q.dequeue()
        assert q.enqueues.count == 2
        assert q.enqueues.bytes == 30
        assert q.dequeues.count == 1

    def test_occupancy_series_records_changes(self, sim):
        q = PacketQueue(sim, "q", trace_occupancy=True)
        q.enqueue(_packet(10))
        q.dequeue()
        assert q.occupancy.values == [10, 0]

    def test_occupancy_series_disabled_by_default(self, sim):
        q = PacketQueue(sim, "q")
        q.enqueue(_packet(10))
        q.dequeue()
        # Untraced runs skip the per-packet series entirely; peaks and
        # counters still track.
        assert q.occupancy.values == []
        assert not q.occupancy.enabled
        assert q.peak_bytes == 10

    def test_on_change_hook(self, sim):
        q = PacketQueue(sim, "q")
        seen = []
        q.on_change = seen.append
        q.enqueue(_packet(10))
        q.enqueue(_packet(5))
        q.dequeue()
        assert seen == [10, 15, 5]

    def test_dropped_packet_does_not_fire_hooks(self, sim):
        q = PacketQueue(sim, "q", capacity_bytes=5)
        seen = []
        q.on_change = seen.append
        q.enqueue(_packet(10))
        assert seen == []
