"""Tests for latency/jitter/throughput metrics."""

import pytest

from repro.analysis.metrics import (
    interarrival_jitter_ps,
    latency_std_ps,
    latency_summary,
    percentile,
    throughput_bps,
    utilisation,
)
from repro.net.packet import Packet
from repro.sim.time import SECONDS


def _delivered(latency_ps, priority=0):
    p = Packet(src=0, dst=1, size=100, created_ps=0, priority=priority)
    p.delivered_ps = latency_ps
    return p


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_empty(self):
        assert percentile([], 99) == 0.0

    def test_extremes(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100


class TestJitter:
    def test_perfectly_periodic_stream_has_zero_jitter(self):
        arrivals = [i * 1000 for i in range(50)]
        assert interarrival_jitter_ps(arrivals, 1000) == 0.0

    def test_constant_offset_has_zero_jitter(self):
        # A uniform shift changes latency, not jitter.
        arrivals = [500 + i * 1000 for i in range(50)]
        assert interarrival_jitter_ps(arrivals, 1000) == 0.0

    def test_variance_creates_jitter(self):
        arrivals = []
        t = 0
        for i in range(50):
            t += 1000 + (200 if i % 2 else -200)
            arrivals.append(t)
        assert interarrival_jitter_ps(arrivals, 1000) > 50

    def test_short_streams(self):
        assert interarrival_jitter_ps([], 1000) == 0.0
        assert interarrival_jitter_ps([5], 1000) == 0.0

    def test_smoothing_gain(self):
        # One outlier in an otherwise perfect stream: jitter bounded by
        # deviation/16 after the first update.
        arrivals = [0, 1000, 2000, 3000, 4800]
        jitter = interarrival_jitter_ps(arrivals, 1000)
        assert 0 < jitter <= 800 / 16 + 1e-9


class TestLatencySummary:
    def test_summary_statistics(self):
        packets = [_delivered(lat) for lat in (100, 200, 300, 400)]
        summary = latency_summary(packets)
        assert summary.count == 4
        assert summary.mean_ps == 250
        assert summary.p50_ps == 250
        assert summary.max_ps == 400

    def test_priority_filter(self):
        packets = [_delivered(100, priority=0), _delivered(9000, priority=1)]
        assert latency_summary(packets, priority=1).count == 1
        assert latency_summary(packets, priority=1).mean_ps == 9000

    def test_undelivered_ignored(self):
        undelivered = Packet(src=0, dst=1, size=10, created_ps=0)
        summary = latency_summary([undelivered, _delivered(100)])
        assert summary.count == 1

    def test_empty(self):
        summary = latency_summary([])
        assert summary.count == 0
        assert summary.mean_ps == 0.0

    def test_row_renders(self):
        row = latency_summary([_delivered(1_000_000)]).row()
        assert row[0] == "1"
        assert "us" in row[1]

    def test_latency_std(self):
        assert latency_std_ps([5, 5, 5]) == 0.0
        assert latency_std_ps([1]) == 0.0
        assert latency_std_ps([0, 10]) == 5.0


class TestThroughput:
    def test_throughput_simple(self):
        # 1250 bytes in 1 us = 10 Gbps.
        assert throughput_bps(1250, SECONDS // 1_000_000) \
            == pytest.approx(10e9)

    def test_zero_duration(self):
        assert throughput_bps(100, 0) == 0.0

    def test_utilisation_clamped(self):
        assert utilisation(10 ** 12, SECONDS, 1e9) == 1.0

    def test_utilisation_fraction(self):
        # 5 Gbps over a 10 Gbps capacity.
        nbytes = int(5e9 // 8)
        assert utilisation(nbytes, SECONDS, 10e9) == pytest.approx(0.5)
