"""Packet-level traffic sources.

Each source drives one host: it schedules its own emission events on the
simulator and calls ``host.emit(packet)``.  Sources are self-arming —
constructing one starts it (at ``start_ps``) and it stops at
``until_ps`` (or runs as long as the simulation does, when ``None``).

All randomness comes from an injected ``random.Random`` so experiments
stay reproducible under the named-stream discipline.

Chunked generation (the packet-path fast lane)
----------------------------------------------

With ``chunk_packets > 0`` a source generates in chunks: it draws the
next ``chunk_packets`` inter-arrival gaps and destinations from its RNG
stream up front — calling the *same* RNG methods in the *same* order as
the per-packet path, so the streams stay draw-for-draw identical — and
self-schedules **one event per chunk** instead of one per packet.  The
whole chunk is pre-serialised through the host uplink
(:meth:`~repro.net.host.Host.emit_presend`), which computes every
wire-start and arrival instant in one vectorized pass.

The chunk lane engages only where it is provably exact: switch-buffered
hosts with a single attached source, a fault-free uplink, and a bounded
run (:meth:`Host.can_presend`).  Everywhere else — and always with the
default ``chunk_packets=0`` — the original per-packet code runs; it is
kept intact below as the executable spec the equivalence tests compare
against.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional

from repro.net.host import Host
from repro.net.packet import MAX_FRAME_BYTES, Packet, wire_size
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.time import SECONDS, transmission_time_ps
from repro.traffic.patterns import DestinationChooser, UniformDestination

_flow_ids = itertools.count(1)


def next_flow_id() -> int:
    """Process-globally unique flow id.

    .. deprecated::
        Use :meth:`repro.sim.engine.Simulator.next_flow_id`, which is
        scoped to one simulator so equal-seed runs allocate identical
        ids no matter how many ran earlier in the process.  This shim
        remains for external callers that want a process-unique id.
    """
    return next(_flow_ids)


class PoissonSource:
    """Memoryless packet arrivals at a target offered rate.

    Parameters
    ----------
    sim, host:
        Simulator and the host to drive.
    rate_bps:
        Offered load in bits/s of L2 frame bytes.
    packet_bytes:
        Frame size (default full-size frames).
    chooser:
        Destination pattern (uniform when None).
    rng:
        Randomness for inter-arrival draws and uniform destinations.
    start_ps / until_ps:
        Active window.
    priority:
        Packet priority class.
    chunk_packets:
        Fast-lane chunk size (0 = per-packet reference path).
    """

    def __init__(self, sim: Simulator, host: Host, rate_bps: float,
                 packet_bytes: int = MAX_FRAME_BYTES,
                 chooser: Optional[DestinationChooser] = None,
                 n_ports: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 start_ps: int = 0, until_ps: Optional[int] = None,
                 priority: int = 0,
                 chunk_packets: int = 0) -> None:
        if rate_bps <= 0:
            raise ConfigurationError("rate must be positive")
        if packet_bytes <= 0:
            raise ConfigurationError("packet size must be positive")
        self.sim = sim
        self.host = host
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.rng = rng or random.Random(host.host_id)
        self.chooser = chooser or _default_chooser(
            host, n_ports, self.rng)
        self.until_ps = until_ps
        self.priority = priority
        self.chunk_packets = chunk_packets
        self.flow_id = sim.next_flow_id()
        self.packets_emitted = 0
        # Mean inter-arrival so that rate_bps of frame bits are offered.
        self._mean_gap_ps = packet_bytes * 8 * SECONDS / rate_bps
        host.register_emitter(self)
        if chunk_packets > 0:
            self.sim.at(start_ps, self._chunk_arm, label="poisson.start")
        else:
            self.sim.at(start_ps, self._arm, label="poisson.start")

    # -- per-packet reference path (executable spec) -------------------------

    def _arm(self) -> None:
        gap = round(self.rng.expovariate(1.0) * self._mean_gap_ps)
        self.sim.schedule(gap, self._fire, label="poisson.fire")

    def _fire(self) -> None:
        if self.until_ps is not None and self.sim.now >= self.until_ps:
            return
        packet = Packet(
            src=self.host.host_id,
            dst=self.chooser.choose(),
            size=self.packet_bytes,
            created_ps=self.sim.now,
            flow_id=self.flow_id,
            priority=self.priority,
        )
        self.host.emit(packet)
        self.packets_emitted += 1
        self._arm()

    # -- chunked fast lane ------------------------------------------------------

    def _chunk_arm(self) -> None:
        gap = round(self.rng.expovariate(1.0) * self._mean_gap_ps)
        self.sim.at(self.sim.now + gap, self._chunk_fire,
                    label="poisson.chunk")

    def _chunk_fire(self) -> None:
        """Emit up to a chunk of packets, starting at this instant.

        RNG draw order per packet is ``choose()`` then ``expovariate``,
        exactly as :meth:`_fire` + :meth:`_arm` interleave them.
        """
        if self.until_ps is not None and self.sim.now >= self.until_ps:
            return
        horizon = self.sim.run_until
        if horizon is None or not self.host.can_presend():
            # Conditions for exact pre-serialisation don't hold here;
            # continue on the reference path from this very instant.
            self._fire()
            return
        until = self.until_ps
        src = self.host.host_id
        size = self.packet_bytes
        flow_id = self.flow_id
        priority = self.priority
        choose = self.chooser.choose
        expovariate = self.rng.expovariate
        mean_gap = self._mean_gap_ps
        times: List[int] = []
        packets: List[Packet] = []
        t = self.sim.now
        alive = True
        for __ in range(self.chunk_packets):
            if until is not None and t >= until:
                alive = False
                break
            if t > horizon:
                break
            packets.append(Packet(src=src, dst=choose(), size=size,
                                  created_ps=t, flow_id=flow_id,
                                  priority=priority))
            times.append(t)
            t += round(expovariate(1.0) * mean_gap)
        if packets:
            self.host.emit_presend(packets, times)
            self.packets_emitted += len(packets)
        if alive:
            self.sim.at(t, self._chunk_fire, label="poisson.chunk")


class CbrSource:
    """Constant-bit-rate periodic stream — the VOIP/gaming model.

    Defaults approximate a G.711-ish stream scaled for simulation:
    small frames at a fixed period toward one destination, tagged with
    elevated priority so latency metrics can isolate it.
    """

    def __init__(self, sim: Simulator, host: Host, dst: int,
                 packet_bytes: int = 200, period_ps: int = 20_000_000,
                 start_ps: int = 0, until_ps: Optional[int] = None,
                 priority: int = 1,
                 chunk_packets: int = 0) -> None:
        if dst == host.host_id:
            raise ConfigurationError("CBR destination equals source")
        if period_ps <= 0:
            raise ConfigurationError("period must be positive")
        self.sim = sim
        self.host = host
        self.dst = dst
        self.packet_bytes = packet_bytes
        self.period_ps = period_ps
        self.until_ps = until_ps
        self.priority = priority
        self.chunk_packets = chunk_packets
        self.flow_id = sim.next_flow_id()
        self.packets_emitted = 0
        host.register_emitter(self)
        if chunk_packets > 0:
            self.sim.at(start_ps, self._chunk_fire, label="cbr.start")
        else:
            self.sim.at(start_ps, self._fire, label="cbr.start")

    # -- per-packet reference path (executable spec) -------------------------

    def _fire(self) -> None:
        if self.until_ps is not None and self.sim.now >= self.until_ps:
            return
        packet = Packet(
            src=self.host.host_id, dst=self.dst,
            size=self.packet_bytes, created_ps=self.sim.now,
            flow_id=self.flow_id, priority=self.priority,
        )
        self.host.emit(packet)
        self.packets_emitted += 1
        self.sim.schedule(self.period_ps, self._fire, label="cbr.fire")

    # -- chunked fast lane ------------------------------------------------------

    def _chunk_fire(self) -> None:
        if self.until_ps is not None and self.sim.now >= self.until_ps:
            return
        horizon = self.sim.run_until
        if horizon is None or not self.host.can_presend():
            self._fire()
            return
        until = self.until_ps
        src = self.host.host_id
        times: List[int] = []
        packets: List[Packet] = []
        t = self.sim.now
        alive = True
        for __ in range(self.chunk_packets):
            if until is not None and t >= until:
                alive = False
                break
            if t > horizon:
                break
            packets.append(Packet(src=src, dst=self.dst,
                                  size=self.packet_bytes, created_ps=t,
                                  flow_id=self.flow_id,
                                  priority=self.priority))
            times.append(t)
            t += self.period_ps
        if packets:
            self.host.emit_presend(packets, times)
            self.packets_emitted += len(packets)
        if alive:
            self.sim.at(t, self._chunk_fire, label="cbr.chunk")


class OnOffSource:
    """Bursty source: Pareto ON periods at line rate, exponential OFF.

    During ON, full-size frames are emitted back to back at
    ``burst_rate_bps`` toward a single destination per burst — the
    "long bursts of traffic" the OCS exists for.  Heavy-tailed ON
    durations (Pareto, shape ``alpha`` ≤ 2) produce the elephant/mice
    mix measured in production data centers.

    Parameters
    ----------
    mean_on_ps / mean_off_ps:
        Mean burst and gap durations; offered load ≈
        ``burst_rate * on / (on + off)``.
    alpha:
        Pareto shape for ON durations (1 < alpha; 1.5 default gives
        infinite-variance bursts).
    chunk_packets:
        Fast-lane chunk size (0 = per-packet reference path).  Bursts
        are emitted in pre-serialised slices of at most this many
        packets.
    """

    def __init__(self, sim: Simulator, host: Host,
                 burst_rate_bps: float,
                 mean_on_ps: int, mean_off_ps: int,
                 packet_bytes: int = MAX_FRAME_BYTES,
                 alpha: float = 1.5,
                 chooser: Optional[DestinationChooser] = None,
                 n_ports: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 start_ps: int = 0, until_ps: Optional[int] = None,
                 priority: int = 0,
                 chunk_packets: int = 0) -> None:
        if burst_rate_bps <= 0:
            raise ConfigurationError("burst rate must be positive")
        if mean_on_ps <= 0 or mean_off_ps < 0:
            raise ConfigurationError("ON mean must be > 0, OFF >= 0")
        if alpha <= 1.0:
            raise ConfigurationError(
                f"Pareto shape must be > 1 for a finite mean, got {alpha}")
        self.sim = sim
        self.host = host
        self.burst_rate_bps = burst_rate_bps
        self.mean_on_ps = mean_on_ps
        self.mean_off_ps = mean_off_ps
        self.packet_bytes = packet_bytes
        self.alpha = alpha
        self.rng = rng or random.Random(host.host_id)
        self.chooser = chooser or _default_chooser(
            host, n_ports, self.rng)
        self.until_ps = until_ps
        self.priority = priority
        self.chunk_packets = chunk_packets
        self.packets_emitted = 0
        self.bursts_started = 0
        self._gap_ps = transmission_time_ps(wire_size(packet_bytes),
                                            burst_rate_bps)
        host.register_emitter(self)
        self.sim.at(start_ps, self._start_off, label="onoff.start")

    def _pareto_on_ps(self) -> int:
        # Pareto with mean m: x_m * alpha/(alpha-1) = m.
        x_m = self.mean_on_ps * (self.alpha - 1.0) / self.alpha
        draw = x_m * (1.0 - self.rng.random()) ** (-1.0 / self.alpha)
        return max(1, round(draw))

    def _start_off(self) -> None:
        if self._done():
            return
        if self.mean_off_ps == 0:
            self._start_burst()
            return
        gap = round(self.rng.expovariate(1.0) * self.mean_off_ps)
        self.sim.schedule(gap, self._start_burst, label="onoff.off")

    def _start_burst(self) -> None:
        if self._done():
            return
        self.bursts_started += 1
        flow_id = self.sim.next_flow_id()
        dst = self.chooser.choose()
        end_ps = self.sim.now + self._pareto_on_ps()
        if self.chunk_packets > 0:
            self._burst_chunk(dst, flow_id, end_ps)
        else:
            self._burst_packet(dst, flow_id, end_ps)

    # -- per-packet reference path (executable spec) -------------------------

    def _burst_packet(self, dst: int, flow_id: int, end_ps: int) -> None:
        if self._done() or self.sim.now >= end_ps:
            self._start_off()
            return
        packet = Packet(
            src=self.host.host_id, dst=dst,
            size=self.packet_bytes, created_ps=self.sim.now,
            flow_id=flow_id, priority=self.priority,
        )
        self.host.emit(packet)
        self.packets_emitted += 1
        self.sim.schedule(
            self._gap_ps,
            lambda: self._burst_packet(dst, flow_id, end_ps),
            label="onoff.pkt")

    # -- chunked fast lane ------------------------------------------------------

    def _burst_chunk(self, dst: int, flow_id: int, end_ps: int) -> None:
        """Pre-serialise one slice of the burst starting at this instant.

        Burst emission instants form a deterministic grid (one frame
        serialisation apart), so a whole slice is known at its first
        instant.  The terminal checks mirror :meth:`_burst_packet`: the
        first grid point at/after the burst end (or the source's
        ``until``) runs the OFF transition at exactly that time.
        """
        if self._done() or self.sim.now >= end_ps:
            self._start_off()
            return
        horizon = self.sim.run_until
        if horizon is None or not self.host.can_presend():
            self._burst_packet(dst, flow_id, end_ps)
            return
        until = self.until_ps
        stop = end_ps if until is None else min(end_ps, until)
        src = self.host.host_id
        size = self.packet_bytes
        gap = self._gap_ps
        times: List[int] = []
        packets: List[Packet] = []
        t = self.sim.now
        for __ in range(self.chunk_packets):
            if t >= stop or t > horizon:
                break
            packets.append(Packet(src=src, dst=dst, size=size,
                                  created_ps=t, flow_id=flow_id,
                                  priority=self.priority))
            times.append(t)
            t += gap
        if packets:
            self.host.emit_presend(packets, times)
            self.packets_emitted += len(packets)
        # The next grid point either continues the burst or performs
        # the terminal off-transition at the exact reference instant.
        self.sim.at(t, lambda: self._burst_chunk(dst, flow_id, end_ps),
                    label="onoff.chunk")

    def _done(self) -> bool:
        return self.until_ps is not None and self.sim.now >= self.until_ps


def _default_chooser(host: Host, n_ports: Optional[int],
                     rng: random.Random) -> DestinationChooser:
    """Uniform chooser over ``n_ports``; hosts don't know the rack size,
    so one of ``chooser`` / ``n_ports`` must be provided explicitly."""
    if n_ports is None:
        raise ConfigurationError(
            "pass either a chooser or n_ports so the source knows the "
            "rack size")
    return UniformDestination(n_ports, host.host_id, rng)


__all__ = ["PoissonSource", "CbrSource", "OnOffSource", "next_flow_id"]
