"""Bench E1 — regenerates Figure 1 (buffering vs switching time).

Run with ``pytest benchmarks/bench_fig1_buffering.py --benchmark-only -s``.
Set ``REPRO_BENCH_QUICK=1`` for reduced problem sizes.
"""

from conftest import run_and_report

from repro.experiments.e1_buffering import run_e1


def test_bench_e1_figure1(benchmark):
    report = run_and_report(benchmark, run_e1)
    # Paper shape: GB at ms, KB at ns, monotone in switching time.
    ideal = report.data["analytic_ideal_total_bytes"]
    assert ideal[0] <= 100_000
    assert max(ideal) >= 1_000_000_000
    assert ideal == sorted(ideal)
    peaks = report.data["simulated_peak_bytes"]
    assert peaks == sorted(peaks)
