"""Tests for the declarative scenario API (``repro.scenario``)."""

import json

import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.experiments.base import ExperimentConfig
from repro.experiments.e3_utilization import _scenario as e3_scenario
from repro.net.packet import reset_packet_ids
from repro.runner import ResultCache, RunSpec, execute
from repro.runner.cache import report_to_payload
from repro.runner.spec import SCENARIO_PREFIX
from repro.scenario import (
    FaultEvent,
    Scenario,
    TrafficPhase,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_summaries,
    unregister_scenario,
)
from repro.sim.errors import ConfigurationError
from repro.sim.time import MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import (
    RoundRobinDestination,
    UniformDestination,
    ZipfDestination,
)
from repro.traffic.sources import OnOffSource

QUICK_PS = 800 * MICROSECONDS


def tiny(scenario: Scenario) -> Scenario:
    """A sub-millisecond rendition for unit-test speed."""
    return scenario.quicken().derive(duration_ps=QUICK_PS)


class TestSpecSerialization:
    def test_json_round_trip(self):
        scenario = get_scenario("failure-storm")
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert again.canonical() == scenario.canonical()

    def test_canonical_round_trip_every_library_entry(self):
        for name in available_scenarios():
            scenario = get_scenario(name)
            assert Scenario.from_canonical(
                scenario.canonical()) == scenario

    def test_key_stable_across_key_ordering(self):
        scenario = get_scenario("diurnal")
        payload = scenario.canonical()
        scrambled = json.loads(json.dumps(payload, sort_keys=True))
        reversed_order = dict(reversed(list(scrambled.items())))
        assert Scenario.from_canonical(
            reversed_order).key() == scenario.key()

    def test_key_changes_with_content(self):
        scenario = get_scenario("uniform")
        assert scenario.derive(seed=99).key() != scenario.key()

    def test_from_canonical_rejects_unknown_fields(self):
        payload = get_scenario("uniform").canonical()
        payload["n_portz"] = 4
        with pytest.raises(ConfigurationError, match="n_portz"):
            Scenario.from_canonical(payload)

    def test_from_canonical_rejects_future_format(self):
        payload = get_scenario("uniform").canonical()
        payload["format"] = 999
        with pytest.raises(ConfigurationError, match="format"):
            Scenario.from_canonical(payload)


class TestOverrides:
    def test_top_level_override(self):
        scenario = get_scenario("uniform").with_overrides(
            {"n_ports": 4, "seed": 7})
        assert scenario.n_ports == 4
        assert scenario.seed == 7

    def test_dotted_traffic_override(self):
        scenario = get_scenario("uniform").with_overrides(
            {"traffic.0.load": 0.9})
        assert scenario.traffic[0].load == 0.9

    def test_star_fans_out_over_phases(self):
        scenario = get_scenario("diurnal").with_overrides(
            {"traffic.*.load": 0.2})
        assert all(p.load == 0.2 for p in scenario.traffic)

    def test_kwargs_dicts_accept_new_keys(self):
        scenario = get_scenario("uniform").with_overrides(
            {"scheduler_kwargs.iterations": 3})
        assert scenario.scheduler_kwargs["iterations"] == 3

    def test_kwargs_dicts_reject_descent_through_missing_key(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            get_scenario("uniform").with_overrides(
                {"scheduler_kwargs.a.b": 1})

    def test_unknown_field_raises(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            get_scenario("uniform").with_overrides({"n_portz": 4})

    def test_bad_index_raises(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            get_scenario("uniform").with_overrides(
                {"traffic.5.load": 0.5})

    def test_format_cannot_be_overridden(self):
        with pytest.raises(ConfigurationError):
            get_scenario("uniform").with_overrides({"format": 999})

    def test_invalid_value_fails_validation(self):
        with pytest.raises(ConfigurationError):
            get_scenario("uniform").with_overrides(
                {"traffic.0.load": -1.0})


class TestQuicken:
    def test_quicken_scales_phases_and_faults(self):
        storm = get_scenario("failure-storm")
        quick = storm.quicken()
        factor = quick.duration_ps / storm.duration_ps
        assert quick.duration_ps < storm.duration_ps
        for original, scaled in zip(storm.faults, quick.faults):
            assert scaled.at_ps == round(original.at_ps * factor)
        diurnal = get_scenario("diurnal").quicken()
        assert diurnal.traffic[1].start_ps < diurnal.duration_ps

    def test_quicken_is_noop_when_already_quick(self):
        scenario = get_scenario("uniform").quicken()
        assert scenario.quicken() == scenario


class TestRegistry:
    def test_library_covers_required_workloads(self):
        required = {"uniform", "hotspot", "permutation", "incast",
                    "all-to-all-shuffle", "diurnal", "failure-storm",
                    "skewed-zipf"}
        assert required <= set(available_scenarios())

    def test_summaries_are_one_liners(self):
        for name, doc in scenario_summaries().items():
            assert doc, f"{name} has no description"
            assert "\n" not in doc

    def test_register_unregister(self):
        scenario = get_scenario("uniform").derive(name="test-reg")
        register_scenario(scenario)
        assert get_scenario("test-reg") == scenario
        with pytest.raises(ConfigurationError, match="already"):
            register_scenario(scenario)
        assert unregister_scenario("test-reg")
        assert not unregister_scenario("test-reg")

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_scenario("no-such-workload")


class TestBuild:
    @pytest.mark.parametrize("name", [
        "uniform", "hotspot", "permutation", "incast",
        "all-to-all-shuffle", "diurnal", "failure-storm",
        "skewed-zipf", "datacenter-mix",
    ])
    def test_every_library_scenario_runs(self, name):
        result = tiny(get_scenario(name)).build().run()
        assert result.delivered_count > 0

    def test_build_is_deterministic(self):
        scenario = tiny(get_scenario("skewed-zipf"))
        results = []
        for _ in range(2):
            reset_packet_ids()
            results.append(scenario.build().run())
        assert results[0].delivered_count == results[1].delivered_count
        assert results[0].delivered_bytes == results[1].delivered_bytes
        assert results[0].drops == results[1].drops

    def test_incast_excludes_target(self):
        run = tiny(get_scenario("incast")).build()
        sending = {s.host_id for s in run.sources}
        assert 0 not in sending
        assert len(sending) == run.framework.n_ports - 1

    def test_faults_are_armed(self):
        run = tiny(get_scenario("failure-storm")).build()
        assert len(run.injectors) == 4

    def test_phase_windows_limit_emission(self):
        scenario = Scenario(
            name="windowed",
            epoch_ps=100 * MICROSECONDS,
            default_slot_ps=80 * MICROSECONDS,
            duration_ps=2 * MILLISECONDS,
            traffic=(TrafficPhase(pattern="uniform", source="poisson",
                                  load=0.4,
                                  until_ps=200 * MICROSECONDS),),
        )
        run = scenario.build()
        result = run.run()
        late = [p for p in result.delivered
                if p.created_ps > 200 * MICROSECONDS]
        assert not late


class TestLegacyEquivalence:
    """A scenario run is byte-identical to the hand-wired construction
    it replaced — the guarantee the experiment reroute rests on."""

    def _legacy_e3_point(self, epoch_ps, duration_ps, load, seed):
        switching = 20 * MICROSECONDS
        config = FrameworkConfig(
            n_ports=8,
            switching_time_ps=switching,
            scheduler="hotspot",
            timing_preset="netfpga_sume",
            epoch_ps=epoch_ps,
            default_slot_ps=max(epoch_ps - switching,
                                10 * MICROSECONDS),
            seed=seed,
        )
        fw = HybridSwitchFramework(config)
        for host in fw.hosts:
            OnOffSource(
                fw.sim, host,
                burst_rate_bps=load * config.port_rate_bps / 0.5,
                mean_on_ps=150 * MICROSECONDS,
                mean_off_ps=150 * MICROSECONDS,
                chooser=UniformDestination(
                    8, host.host_id,
                    fw.sim.streams.stream(f"dst{host.host_id}")),
                rng=fw.sim.streams.stream(f"src{host.host_id}"))
        return fw.run(duration_ps)

    def test_e3_point_identical_through_scenario(self):
        epoch = 300 * MICROSECONDS
        duration = 3 * MILLISECONDS
        reset_packet_ids()
        legacy = self._legacy_e3_point(epoch, duration, 0.35, seed=3)
        reset_packet_ids()
        scenario = e3_scenario(epoch, duration, 0.35,
                               optimistic=False, seed=3)
        # Reference lane: packet_id equality requires identical packet
        # *construction* order, and the legacy hand-wired build above
        # is per-packet.  (Chunked-vs-reference identity on packet
        # fields is covered by tests/test_packet_fast_lane.py.)
        routed = scenario.build(packet_lane="reference").run()
        assert routed.delivered_count == legacy.delivered_count
        assert routed.delivered_bytes == legacy.delivered_bytes
        assert routed.drops == legacy.drops
        assert routed.utilisation() == legacy.utilisation()
        assert ([p.packet_id for p in routed.delivered]
                == [p.packet_id for p in legacy.delivered])


class TestRunnerIntegration:
    def _spec(self, **overrides):
        return RunSpec(
            experiment_id=f"{SCENARIO_PREFIX}uniform", quick=True,
            overrides={"duration_ps": QUICK_PS, **overrides}).validate()

    def test_validate_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError, match="available"):
            RunSpec(experiment_id=f"{SCENARIO_PREFIX}nope").validate()

    def test_key_is_filesystem_safe(self):
        assert ":" not in self._spec().key()

    def test_cache_key_equal_across_override_ordering(self):
        ordered = self._spec(seed=1, n_ports=4)
        scrambled = RunSpec(
            experiment_id=f"{SCENARIO_PREFIX}uniform", quick=True,
            overrides=dict(reversed(list(
                {"duration_ps": QUICK_PS, "seed": 1,
                 "n_ports": 4}.items())))).validate()
        assert ordered.key() == scrambled.key()

    def test_scenario_jobs_cache_and_replay(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._spec(n_ports=4)
        cold = execute([spec], cache=cache)
        assert not cold[0].cached
        warm = execute([spec], cache=cache)
        assert warm[0].cached
        assert (report_to_payload(warm[0].report)
                == report_to_payload(cold[0].report))

    def test_scenario_and_experiment_share_cache_layout(self, tmp_path):
        """Cache-key discipline is identical across job families: the
        same content-addressing serves a scenario run and a legacy
        experiment run side by side."""
        cache = ResultCache(tmp_path)
        scenario_spec = self._spec(n_ports=4)
        experiment_spec = RunSpec(
            experiment_id="e3", quick=True,
            overrides={"epochs_ps": [200 * MICROSECONDS],
                       "duration_ps": 1 * MILLISECONDS}).validate()
        execute([scenario_spec, experiment_spec], cache=cache)
        assert cache.path_for(scenario_spec).exists()
        assert cache.path_for(experiment_spec).exists()
        assert len(cache) == 2
        warm = execute([scenario_spec, experiment_spec], cache=cache)
        assert all(outcome.cached for outcome in warm)

    def test_run_scenario_applies_config_axes(self):
        report = run_scenario(
            get_scenario("uniform"),
            ExperimentConfig(quick=True, seed=5, scheduler="tdma",
                             overrides={"duration_ps": QUICK_PS,
                                        "n_ports": 4}))
        assert report.experiment_id == "scenario:uniform"
        recorded = report.data["scenario"]
        assert recorded["seed"] == 5
        assert recorded["scheduler"] == "tdma"
        assert recorded["n_ports"] == 4
        assert recorded["duration_ps"] == QUICK_PS

    def test_run_scenario_rejects_unknown_override(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            run_scenario(get_scenario("uniform"),
                         ExperimentConfig(overrides={"n_portz": 4}))


class TestPatterns:
    def test_round_robin_cycles_all_partners(self):
        chooser = RoundRobinDestination(4, src=1)
        seen = [chooser.choose() for _ in range(6)]
        assert 1 not in seen
        assert set(seen[:3]) == {0, 2, 3}
        assert seen[:3] == seen[3:]

    def test_zipf_prefers_low_ranks(self):
        import random

        chooser = ZipfDestination(8, src=0, exponent=1.5,
                                  rng=random.Random(1))
        draws = [chooser.choose() for _ in range(4000)]
        assert 0 not in draws
        top = draws.count(1)  # rank-1 partner of host 0
        tail = draws.count(7)
        assert top > tail * 2

    def test_zipf_rejects_negative_exponent(self):
        with pytest.raises(ConfigurationError):
            ZipfDestination(8, src=0, exponent=-0.1)


class TestValidation:
    def test_unknown_pattern(self):
        with pytest.raises(ConfigurationError, match="pattern"):
            TrafficPhase(pattern="chaos")

    def test_unknown_source(self):
        with pytest.raises(ConfigurationError, match="source"):
            TrafficPhase(source="magic")

    def test_cbr_needs_fixed_pattern(self):
        with pytest.raises(ConfigurationError, match="fixed"):
            TrafficPhase(source="cbr", pattern="uniform")

    def test_fixed_pattern_needs_dst(self):
        with pytest.raises(ConfigurationError, match="dst"):
            TrafficPhase(pattern="fixed")

    def test_unknown_fault_kind(self):
        with pytest.raises(ConfigurationError, match="fault"):
            FaultEvent(kind="gremlin", at_ps=0)

    def test_flap_needs_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            FaultEvent(kind="link-flap", at_ps=0, duration_ps=0)

    def test_scenario_needs_traffic(self):
        with pytest.raises(ConfigurationError, match="traffic"):
            Scenario(name="empty", traffic=())

    def test_framework_validation_is_delegated(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad", n_ports=1)
