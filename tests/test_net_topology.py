"""Tests for rack topology construction."""

import pytest

from repro.net.host import HostBufferMode
from repro.net.packet import Packet
from repro.net.topology import build_rack
from repro.sim.errors import ConfigurationError


class TestBuildRack:
    def test_counts(self, sim):
        topo = build_rack(sim, 4)
        assert topo.n_ports == 4
        assert len(topo.hosts) == 4
        assert len(topo.uplinks) == 4
        assert len(topo.downlinks) == 4

    def test_minimum_two_hosts(self, sim):
        with pytest.raises(ConfigurationError):
            build_rack(sim, 1)

    def test_downlinks_preconnected_to_hosts(self, sim):
        topo = build_rack(sim, 3)
        packet = Packet(src=0, dst=2, size=100, created_ps=0)
        topo.downlinks[2].send(packet)
        sim.run()
        assert topo.hosts[2].delivered_packets == [packet]

    def test_uplinks_unconnected_by_default(self, sim):
        topo = build_rack(sim, 3)
        with pytest.raises(ConfigurationError):
            topo.uplinks[0].send(Packet(src=0, dst=1, size=64,
                                        created_ps=0))

    def test_mode_applied_to_all_hosts(self, sim):
        topo = build_rack(sim, 3, mode=HostBufferMode.HOST_BUFFERED)
        assert all(h.mode is HostBufferMode.HOST_BUFFERED
                   for h in topo.hosts)

    def test_skew_applied_and_adjustable(self, sim):
        topo = build_rack(sim, 3, clock_skew_ps=700)
        assert all(h.clock_skew_ps == 700 for h in topo.hosts)
        topo.set_clock_skew(1, 42)
        assert topo.hosts[1].clock_skew_ps == 42
        assert topo.hosts[0].clock_skew_ps == 700

    def test_host_ids_match_port_indices(self, sim):
        topo = build_rack(sim, 5)
        assert [h.host_id for h in topo.hosts] == list(range(5))
