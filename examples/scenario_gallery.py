#!/usr/bin/env python3
"""Three library scenarios end-to-end, plus a custom derivation.

The scenario API makes a workload a *value*: pick one from the library,
derive variations, run it, and every knob — topology, traffic,
scheduler, hardware timing, faults — lives in one serializable spec.
What used to be thirty lines of framework wiring per workload is now::

    result = get_scenario("incast").build().run()

    python examples/scenario_gallery.py
"""

from repro.scenario import get_scenario, register_scenario
from repro.sim.time import MILLISECONDS, format_time


def show(name: str, result) -> None:
    latency = result.latency()
    print(f"-- {name} --")
    print(f"  utilisation     : {result.utilisation():.3f}")
    print(f"  delivery ratio  : {result.delivery_ratio:.3f}")
    print(f"  OCS byte share  : {result.ocs_fraction:.1%}")
    print(f"  p99 latency     : {format_time(round(latency.p99_ps))}")
    print(f"  peak buffer     : {result.switch_peak_buffer_bytes} B")
    print(f"  drops           : {result.total_drops}")
    print()


def main() -> None:
    # 1. Incast: 7-to-1 fan-in.  The receiver's port saturates; the
    #    interesting number is how much buffering absorbs the collision.
    incast = get_scenario("incast").quicken()
    show("incast (7-to-1 fan-in)", incast.build().run())

    # 2. Diurnal: three load phases in one run — night, burst-heavy
    #    day, evening.  One spec, time-varying workload.
    diurnal = get_scenario("diurnal").quicken()
    show("diurnal (0.15 -> 0.65 -> 0.35 load)", diurnal.build().run())

    # 3. Failure storm: a healthy run hit by a link flap, a scheduler
    #    stall and an OCS config corruption.  Faults are part of the
    #    spec, so transient analysis is reproducible by construction.
    storm = get_scenario("failure-storm").quicken()
    run = storm.build()
    result = run.run()
    show("failure-storm (flap + stall + corruption)", result)
    print(f"  injectors armed : {len(run.injectors)}")
    print(f"  link-fault drops: {result.drops['link_fault']}")
    print()

    # Derivation: the same incast, twice the fabric, a different
    # scheduler — no new wiring, and the spec hash tracks the change.
    wider = incast.derive(name="incast-16", n_ports=16,
                          scheduler="islip",
                          duration_ps=2 * MILLISECONDS)
    register_scenario(wider)  # now addressable by name, CLI included
    show("incast-16 (derived: 16 ports, islip)", wider.build().run())
    print(f"spec key of the derived scenario: {wider.key()}")


if __name__ == "__main__":
    main()
