"""Tests for the persistent warm-worker pool (``repro.runner.pool``).

Covers the load-bearing properties: ordered streaming over chunked
dispatch, worker reuse across calls (the "warm" in warm pool), ordinary
exceptions propagating at their item's position, shared-memory result
transport, and crash isolation — a job that kills its worker is retried
once in isolation, surfaced with its index, and never hangs the run.

All job callables are module-level: tasks travel through queues and
must pickle.
"""

import os

import pytest

import repro.runner.pool as pool_mod
from repro.runner import RunSpec, execute
from repro.runner.manifest import RunManifest
from repro.runner.pool import (
    WorkerCrashError,
    get_pool,
    shutdown_pools,
)


def _square(value):
    return value * value


def _boom_on_seven(value):
    if value == 7:
        raise ValueError("seven is right out")
    return value


def _exit_on_three(value):
    if value == 3:
        os._exit(13)  # hard crash: no exception, no result
    return value + 100


def _big_payload(value):
    return bytes([value % 251]) * (512 * 1024)


@pytest.fixture
def fresh_pools():
    """Isolate pool state: fresh workers before, teardown after.

    Teardown matters for the tests that fork workers with patched
    module state — later tests must not inherit them.
    """
    shutdown_pools(force=True)
    yield
    shutdown_pools(force=True)


class TestWarmPool:
    def test_ordered_results_across_chunks(self, fresh_pools):
        pool = get_pool(3)
        items = list(range(53))
        assert list(pool.imap(_square, items)) \
            == [x * x for x in items]

    def test_workers_are_reused_across_calls(self, fresh_pools):
        pool = get_pool(2)
        pids_before = [p.pid for p in pool._procs]
        list(pool.imap(_square, range(10)))
        list(pool.imap(_square, range(10)))
        assert get_pool(2) is pool
        assert [p.pid for p in pool._procs] == pids_before
        assert all(p.is_alive() for p in pool._procs)

    def test_exception_raises_at_position_after_prior_yields(
            self, fresh_pools):
        pool = get_pool(2)
        seen = []
        with pytest.raises(ValueError, match="seven"):
            for value in pool.imap(_boom_on_seven, [1, 5, 7, 9],
                                   chunk_size=1):
                seen.append(value)
        assert seen == [1, 5]
        # The pool survives an exception and keeps serving.
        assert list(pool.imap(_square, [2, 3])) == [4, 9]

    def test_large_results_travel_shared_memory(self, fresh_pools):
        pool = get_pool(2)
        results = list(pool.imap(_big_payload, [1, 2, 3]))
        assert results == [_big_payload(v) for v in [1, 2, 3]]

    def test_shm_path_forced_by_low_threshold(self, fresh_pools,
                                              monkeypatch):
        # Workers fork after the patch, so every result — however
        # small — takes the shared-memory route.
        monkeypatch.setattr(pool_mod, "SHM_THRESHOLD_BYTES", 1)
        pool = get_pool(2)
        assert list(pool.imap(_square, range(20))) \
            == [x * x for x in range(20)]

    def test_crash_isolated_to_item_with_index(self, fresh_pools):
        pool = get_pool(2)
        seen = []
        with pytest.raises(WorkerCrashError) as info:
            for value in pool.imap(_exit_on_three, [0, 1, 2, 3, 4, 5]):
                seen.append(value)
        assert info.value.item_index == 3
        assert seen == [100, 101, 102]
        # Replacement workers serve subsequent calls.
        assert list(pool.imap(_square, [4])) == [16]

    def test_empty_items(self, fresh_pools):
        assert list(get_pool(2).imap(_square, [])) == []

    def test_pool_replaced_after_shutdown(self, fresh_pools):
        pool = get_pool(2)
        pool.shutdown(force=True)
        replacement = get_pool(2)
        assert replacement is not pool
        assert list(replacement.imap(_square, [3])) == [9]


class TestExecutorCrashHandling:
    def test_crashed_job_fails_visibly_and_rest_complete(
            self, fresh_pools, monkeypatch):
        # Poison one experiment entry point so its worker dies; forked
        # workers inherit the patched table.
        import repro.experiments as experiments

        def _poisoned(config):
            os._exit(13)

        monkeypatch.setitem(experiments.ENTRY_POINTS, "e7", _poisoned)
        good = RunSpec("e2", quick=True,
                       overrides={"port_counts": [16]})
        bad = RunSpec("e7", quick=True)
        outcomes = execute([good, bad, good], jobs=2)
        assert outcomes[0].error is None
        assert outcomes[2].error is None
        assert outcomes[1].error is not None
        assert bad.key() in outcomes[1].error
        manifest = RunManifest.from_outcomes(outcomes)
        assert manifest.n_failed == 1
        rendered = manifest.render()
        assert "FAIL" in rendered
        assert bad.key() in rendered

    def test_replica_batch_crash_fails_group_and_continues(
            self, fresh_pools, monkeypatch):
        import repro.experiments as experiments

        def _poisoned_batch(configs):
            os._exit(13)

        monkeypatch.setitem(experiments.BATCH_ENTRY_POINTS, "e5",
                            _poisoned_batch)
        replicas = [RunSpec("e5", quick=True, seed=s,
                            overrides={"loads": [0.5], "slots": 60,
                                       "warmup": 10, "n_ports": 4})
                    for s in (1, 2)]
        good = RunSpec("e7", quick=True,
                       overrides={"port_counts": [8]})
        outcomes = execute(replicas + [good], jobs=2,
                           replica_batch=True)
        assert outcomes[0].error is not None
        assert outcomes[1].error is not None
        assert outcomes[2].error is None
        manifest = RunManifest.from_outcomes(outcomes)
        assert manifest.n_failed == 2

    def test_cli_exits_nonzero_on_failed_jobs(self, fresh_pools,
                                              monkeypatch, capsys):
        import repro.experiments as experiments
        from repro.cli import main

        def _poisoned(config):
            os._exit(13)

        monkeypatch.setitem(experiments.ENTRY_POINTS, "e7", _poisoned)
        code = main(["run", "e7", "e2", "--quick", "--jobs", "2",
                     "--set", "port_counts=[16]"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.out
        assert "job(s) failed" in captured.err
