"""Tests that every experiment runs (quick mode) and reproduces the
paper's qualitative shapes.

These are the repository's acceptance tests: each asserts the
*direction* of the paper's claim, not absolute numbers.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.e1_buffering import run_e1
from repro.experiments.e2_latency import run_e2
from repro.experiments.e5_algorithms import run_e5
from repro.experiments.e6_offload import run_e6, skewed_demand
from repro.experiments.e7_scalability import run_e7
from repro.sim.time import MILLISECONDS


class TestRegistry:
    def test_all_eight_registered(self):
        assert sorted(EXPERIMENTS) == [f"e{i}" for i in range(1, 9)]


class TestE1:
    @pytest.fixture(scope="class")
    def report(self):
        return run_e1(quick=True)

    def test_gigabytes_at_ms(self, report):
        idx = report.data["switching_times_ps"].index(1 * MILLISECONDS)
        assert report.data["analytic_ideal_total_bytes"][idx] \
            >= 1_000_000_000

    def test_kilobytes_at_ns(self, report):
        assert report.data["analytic_ideal_total_bytes"][0] <= 100_000

    def test_software_scheduler_floor_dominates(self, report):
        ideal = report.data["analytic_ideal_total_bytes"]
        software = report.data["analytic_sw_total_bytes"]
        assert all(s >= i for s, i in zip(software, ideal))
        assert software[0] > 1_000_000_000  # GB even at 1ns optics

    def test_monotone_in_switching_time(self, report):
        ideal = report.data["analytic_ideal_total_bytes"]
        assert ideal == sorted(ideal)

    def test_simulated_peaks_grow(self, report):
        peaks = report.data["simulated_peak_bytes"]
        assert peaks == sorted(peaks)

    def test_expectations_all_satisfied(self, report):
        assert len(report.expectations) >= 4


class TestE2:
    @pytest.fixture(scope="class")
    def report(self):
        return run_e2(quick=True)

    def test_headline_claim_software_is_ms_class(self, report):
        # Deployment-representative software loops (64-port hotspot).
        assert report.data["sw_helios_ps"] > 500_000_000      # > 0.5 ms
        assert report.data["sw_cthrough_ps"] > 1_000_000_000  # > 1 ms
        assert report.data["sw_helios_ps"] / report.data["hw_fpga_ps"] \
            > 1_000

    def test_speedup_like_for_like(self, report):
        # totals are appended per (port count, algorithm) in the same
        # order for every preset, so elementwise ratios compare the
        # same loop on the two technologies.
        totals = report.data["totals_ps"]
        ratios = [sw / hw for sw, hw in
                  zip(totals["cpu_helios"], totals["netfpga_sume"])]
        assert min(ratios) > 50        # even exact MWM wins big in HW
        assert max(ratios) > 1_000     # iterative matchers win 3+ orders

    def test_tables_rendered(self, report):
        assert any("netfpga_sume" in t for t in report.tables)


class TestE5:
    @pytest.fixture(scope="class")
    def report(self):
        return run_e5(quick=True)

    def test_textbook_ordering_on_diagonal(self, report):
        curves = report.data["diagonal"]
        heaviest = -1
        assert curves["mwm"][heaviest][1] >= \
            curves["islip-4"][heaviest][1] - 0.05
        assert curves["islip-4"][heaviest][1] > curves["tdma"][heaviest][1]

    def test_pim_saturates_below_islip_uniform(self, report):
        curves = report.data["uniform"]
        assert curves["islip-1"][-1][1] > curves["pim-1"][-1][1]

    def test_delay_grows_with_load(self, report):
        for name, series in report.data["uniform"].items():
            delays = [delay for __, __t, delay in series]
            assert delays[-1] >= delays[0]


class TestE6:
    def test_skewed_demand_generator(self):
        demand = skewed_demand(8, 0.9, total_bytes=1e6, seed=1)
        assert demand.shape == (8, 8)
        assert (demand.diagonal() == 0).all()
        # The hot pair dominates its row.
        assert demand[0, 1] > demand[0, 2]

    def test_offload_grows_with_skew(self):
        report = run_e6(quick=True)
        fractions = report.data["hotspot_fraction"]
        assert fractions[-1] > fractions[0]


class TestE7:
    def test_hardware_islip_stays_fast(self):
        report = run_e7(quick=True)
        islip = report.data["model_compute_ps"]["islip"]
        assert islip[-1] < 1_000_000  # < 1 us at the largest port count
        mwm = report.data["model_compute_ps"]["mwm"]
        assert mwm[-1] > islip[-1]
