"""Named, reproducible random streams.

Every stochastic component (each traffic source, each scheduler that
randomises, each fault injector) draws from its *own* named stream.
Streams are derived from a master seed and the stream name, so:

* adding a new random consumer does not perturb existing streams
  (unlike sharing one global ``random.Random``), and
* two runs with the same master seed are identical regardless of the
  order in which components were constructed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 63-bit seed derived from ``(master_seed, name)``.

    Uses SHA-256 rather than ``hash()`` because the latter is salted per
    interpreter run.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RandomStreams:
    """Factory and cache of named random generators.

    ``stream(name)`` returns a ``random.Random``; ``numpy_stream(name)``
    returns a ``numpy.random.Generator``.  Repeated calls with the same
    name return the same object.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._py: Dict[str, random.Random] = {}
        self._np: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """Python ``random.Random`` for stream ``name`` (cached)."""
        if name not in self._py:
            self._py[name] = random.Random(derive_seed(self.master_seed, name))
        return self._py[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """NumPy ``Generator`` for stream ``name`` (cached).

        Kept separate from the Python stream of the same name so mixing
        APIs never interleaves draws.
        """
        if name not in self._np:
            seed = derive_seed(self.master_seed, "np:" + name)
            self._np[name] = np.random.default_rng(seed)
        return self._np[name]


__all__ = ["RandomStreams", "derive_seed"]
